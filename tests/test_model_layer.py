"""Tests for repro.model: config presets, WisdomModel, checkpoints, zoo cards,
throughput."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.model.checkpoints import load_checkpoint, restore_weights, save_checkpoint, snapshot_weights
from repro.model.config import CONTEXT_WINDOWS, SIZE_2_7B, SIZE_350M, SIZE_6B, transformer_config
from repro.model.lm import WisdomModel
from repro.model.throughput import measure_throughput, speedup
from repro.model.zoo import (
    CARDS_BY_NAME,
    DATASET_COLUMNS,
    MODEL_CARDS,
    PretrainingCorpora,
    table2_rows,
)
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM


class TestConfigPresets:
    def test_sizes_ordered(self):
        def params(preset):
            return preset.dim * preset.dim * preset.n_layers

        assert params(SIZE_350M) < params(SIZE_2_7B) < params(SIZE_6B)

    def test_context_window_mapping(self):
        config = transformer_config(100, "350M", context_window=1024)
        assert config.n_positions == CONTEXT_WINDOWS[1024]

    def test_context_windows_ordered(self):
        assert CONTEXT_WINDOWS[512] < CONTEXT_WINDOWS[1024] < CONTEXT_WINDOWS[2048]

    def test_unmapped_window_verbatim(self):
        config = transformer_config(100, "350M", context_window=48)
        assert config.n_positions == 48

    def test_preset_object_accepted(self):
        config = transformer_config(100, SIZE_2_7B)
        assert config.dim == SIZE_2_7B.dim


@pytest.fixture()
def wisdom_model(tiny_tokenizer, tiny_config):
    return WisdomModel("test-model", tiny_tokenizer, DecoderLM(tiny_config, numpy_rng(0)))


class TestWisdomModel:
    def test_complete_returns_text(self, wisdom_model):
        out = wisdom_model.complete("- name: Install nginx\n", max_new_tokens=8)
        assert isinstance(out, str)

    def test_empty_prompt_rejected(self, wisdom_model):
        with pytest.raises(GenerationError):
            wisdom_model.complete("")

    def test_long_prompt_left_truncated(self, wisdom_model):
        long_prompt = "- name: install\n" * 100
        out = wisdom_model.complete(long_prompt, max_new_tokens=4)
        assert isinstance(out, str)

    def test_loss_and_perplexity(self, wisdom_model):
        loss = wisdom_model.loss_on_text("- name: Install nginx\n  apt:\n    name: nginx\n")
        assert loss > 0
        assert wisdom_model.perplexity("- name: Install nginx\n") == pytest.approx(
            np.exp(wisdom_model.loss_on_text("- name: Install nginx\n")), rel=1e-5
        )

    def test_loss_too_short(self, wisdom_model):
        with pytest.raises(GenerationError):
            wisdom_model.loss_on_text("")

    def test_sampled_completion_deterministic_by_seed(self, wisdom_model):
        a = wisdom_model.complete("- name: x\n", max_new_tokens=6, temperature=1.0, seed=3)
        b = wisdom_model.complete("- name: x\n", max_new_tokens=6, temperature=1.0, seed=3)
        assert a == b


class TestCheckpoints:
    def test_save_load_roundtrip(self, wisdom_model, tmp_path):
        prompt = "- name: Install nginx\n"
        expected = wisdom_model.complete(prompt, max_new_tokens=6)
        save_checkpoint(wisdom_model, tmp_path / "ckpt")
        restored = load_checkpoint(tmp_path / "ckpt")
        assert restored.name == wisdom_model.name
        assert restored.complete(prompt, max_new_tokens=6) == expected

    def test_missing_checkpoint(self, tmp_path):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope")

    def test_snapshot_restore(self, wisdom_model):
        snapshot = snapshot_weights(wisdom_model.network)
        parameter = wisdom_model.network.parameters()[0]
        parameter.data += 1.0
        restore_weights(wisdom_model.network, snapshot)
        assert np.allclose(parameter.data, snapshot[parameter.name])

    def test_snapshot_is_a_copy(self, wisdom_model):
        snapshot = snapshot_weights(wisdom_model.network)
        parameter = wisdom_model.network.parameters()[0]
        parameter.data += 1.0
        assert not np.allclose(snapshot[parameter.name], parameter.data)


class TestZooCards:
    def test_seven_cards(self):
        assert len(MODEL_CARDS) == 7

    def test_table2_matrix_matches_paper(self):
        rows = {row[0]: row[1:] for row in table2_rows()}
        # columns: pile, bigquery, bigpython, ansible_yaml, generic_yaml
        assert rows["CodeGen-NL"] == ["x", "", "", "", ""]
        assert rows["CodeGen-Multi"] == ["x", "x", "", "", ""]
        assert rows["CodeGen-Mono"] == ["x", "x", "x", "", ""]
        assert rows["Wisdom-Ansible"] == ["", "", "", "x", ""]
        assert rows["Wisdom-Yaml"] == ["", "", "", "x", "x"]
        assert rows["Wisdom-Ansible-Multi"] == ["x", "x", "", "x", ""]
        assert rows["Wisdom-Yaml-Multi"] == ["x", "x", "", "x", "x"]

    def test_warm_start_bases(self):
        assert CARDS_BY_NAME["Wisdom-Ansible-Multi"].initialized_from == "CodeGen-Multi"
        assert CARDS_BY_NAME["Wisdom-Yaml-Multi"].initialized_from == "CodeGen-Multi"
        assert CARDS_BY_NAME["Wisdom-Ansible"].initialized_from is None

    def test_dataset_columns_count(self):
        assert len(DATASET_COLUMNS) == 5

    def test_for_card_warm_start_excludes_base_data(self, galaxy_corpus):
        from repro.dataset.corpus import Corpus, Document

        def mini(name):
            return Corpus(name, [Document(f"{name}/0", name, "x", f"content {name}")])

        corpora = PretrainingCorpora(
            pile=mini("pile"),
            bigquery=mini("bq"),
            bigpython=mini("bp"),
            ansible=mini("ans"),
            generic=mini("gen"),
        )
        card = CARDS_BY_NAME["Wisdom-Ansible-Multi"]
        cold = corpora.for_card(card, warm_start=False)
        warm = corpora.for_card(card, warm_start=True)
        assert len(cold) == 3  # pile + bigquery + ansible
        assert len(warm) == 1  # only the ansible extension


class TestThroughput:
    def test_measure(self, wisdom_model):
        result = measure_throughput(wisdom_model.network, prompt_length=4, new_tokens=6, runs=2)
        assert result.tokens_per_second > 0
        assert result.total_tokens >= 2

    def test_speedup_ratio(self, wisdom_model):
        result = measure_throughput(wisdom_model.network, prompt_length=4, new_tokens=4, runs=1)
        assert speedup(result, result) == pytest.approx(1.0)
