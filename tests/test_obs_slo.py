"""SLO specs, rolling windows and multi-window burn-rate alerting.

Timestamps are passed explicitly (or driven through a FakeClock), so
every assertion here is exact — burn rates are ratios of small integer
counts, never subject to wall-clock jitter.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.faults import FakeClock, use
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    DEFAULT_SLOS,
    BurnWindow,
    SloEvent,
    SloMonitor,
    SloSpec,
)


class TestSloSpec:
    def test_unknown_signal_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown signal"):
            SloSpec(name="x", signal="uptime", target=0.9)

    @pytest.mark.parametrize("target", [-0.1, 1.0, 1.5])
    def test_target_must_be_a_proper_fraction(self, target):
        with pytest.raises(ObservabilityError, match="target"):
            SloSpec(name="x", signal="shed", target=target)

    def test_latency_needs_threshold_outcome_signals_forbid_it(self):
        with pytest.raises(ObservabilityError, match="threshold_s"):
            SloSpec(name="x", signal="latency", target=0.9)
        with pytest.raises(ObservabilityError, match="no threshold_s"):
            SloSpec(name="x", signal="error", target=0.9, threshold_s=1.0)

    def test_error_budget(self):
        assert SloSpec(name="x", signal="shed", target=0.95).error_budget == pytest.approx(0.05)

    def test_is_good_per_signal(self):
        latency = SloSpec(name="l", signal="latency", target=0.9, threshold_s=1.0)
        ttft = SloSpec(name="t", signal="ttft", target=0.9, threshold_s=0.5)
        shed = SloSpec(name="s", signal="shed", target=0.9)
        error = SloSpec(name="e", signal="error", target=0.9)

        fast = SloEvent(at=0.0, latency_s=0.4, outcome="completed", ttft_s=0.2)
        slow = SloEvent(at=0.0, latency_s=3.0, outcome="completed", ttft_s=0.9)
        shed_event = SloEvent(at=0.0, latency_s=0.1, outcome="shed")
        expired = SloEvent(at=0.0, latency_s=0.9, outcome="deadline_exceeded")

        assert latency.is_good(fast) and not latency.is_good(slow)
        assert not latency.is_good(expired)  # in-budget latency but no answer
        assert ttft.is_good(fast) and not ttft.is_good(slow)
        assert not ttft.is_good(shed_event)  # never reached decode
        assert shed.is_good(fast) and not shed.is_good(shed_event)
        assert error.is_good(fast) and error.is_good(shed_event)
        assert not error.is_good(expired)


class TestBurnWindow:
    def test_short_must_be_shorter(self):
        with pytest.raises(ObservabilityError):
            BurnWindow(long_s=5.0, short_s=5.0, factor=2.0)

    def test_factor_positive(self):
        with pytest.raises(ObservabilityError):
            BurnWindow(long_s=5.0, short_s=1.0, factor=0.0)


class TestSloMonitor:
    def test_needs_specs_and_unique_names(self):
        with pytest.raises(ObservabilityError):
            SloMonitor(specs=())
        spec = SloSpec(name="x", signal="shed", target=0.9)
        with pytest.raises(ObservabilityError, match="duplicate"):
            SloMonitor(specs=(spec, spec))

    def test_horizon_must_cover_longest_window(self):
        with pytest.raises(ObservabilityError, match="horizon"):
            SloMonitor(horizon_s=100.0)  # DEFAULT_BURN_WINDOWS reach 360s

    def test_burn_rate_is_bad_fraction_over_budget(self):
        spec = SloSpec(name="shed", signal="shed", target=0.9)  # budget 0.1
        monitor = SloMonitor(specs=(spec,), windows=(), horizon_s=100.0)
        for index in range(10):
            monitor.observe(0.1, "shed" if index < 2 else "completed", at=float(index))
        # 2 bad / 10 total = 0.2 bad fraction; budget 0.1 -> burn 2.0
        assert monitor.burn_rate(spec, window_s=100.0, now=9.0) == pytest.approx(2.0)
        # the last 5 events (at >= 5) are all good -> burn 0
        assert monitor.burn_rate(spec, window_s=4.5, now=9.0) == 0.0

    def test_empty_window_burns_zero(self):
        spec = SloSpec(name="shed", signal="shed", target=0.9)
        monitor = SloMonitor(specs=(spec,), windows=(), horizon_s=10.0)
        assert monitor.burn_rate(spec, window_s=5.0, now=0.0) == 0.0

    def test_alert_needs_both_windows_burning(self):
        spec = SloSpec(name="err", signal="error", target=0.5)  # budget 0.5
        window = BurnWindow(long_s=10.0, short_s=2.0, factor=1.5)
        monitor = SloMonitor(specs=(spec,), windows=(window,), horizon_s=100.0)
        # bad burst early, then recovery: long window still burning, short clean
        for at in range(8):
            monitor.observe(0.1, "deadline_exceeded", at=float(at))
        for at in range(8, 10):
            monitor.observe(0.1, "completed", at=float(at))
        report = monitor.evaluate(now=9.0)
        (entry,) = report["slos"]
        (burn,) = entry["burn_windows"]
        assert burn["burn_long"] >= window.factor
        assert burn["burn_short"] < window.factor
        assert not burn["alerting"]
        # ongoing burn: bad events continue into the short window -> page
        for at in range(10, 13):
            monitor.observe(0.1, "deadline_exceeded", at=float(at))
        report = monitor.evaluate(now=12.0)
        assert report["slos"][0]["burn_windows"][0]["alerting"]
        assert report["any_alerting"]

    def test_horizon_trims_old_events(self):
        spec = SloSpec(name="shed", signal="shed", target=0.9)
        monitor = SloMonitor(specs=(spec,), windows=(), horizon_s=10.0)
        monitor.observe(0.1, "shed", at=0.0)
        monitor.observe(0.1, "completed", at=100.0)
        assert len(monitor) == 1
        assert monitor.total_observed == 2

    def test_observe_reads_the_fleet_clock(self):
        fake = FakeClock()
        with use(fake):
            monitor = SloMonitor(horizon_s=3600.0)
            monitor.observe(0.1, "completed")
            fake.advance(5.0)
            monitor.observe(0.1, "completed")
        first, second = monitor._events
        assert second.at - first.at == pytest.approx(5.0)

    def test_evaluate_report_shape_and_determinism(self):
        def build() -> dict:
            monitor = SloMonitor()
            for index in range(20):
                monitor.observe(
                    0.5 if index % 5 else 3.0,
                    "completed",
                    ttft_s=0.2,
                    at=float(index),
                )
            return monitor.evaluate(now=19.0)

        report = build()
        assert len(report["slos"]) == len(DEFAULT_SLOS)
        for entry in report["slos"]:
            assert entry["total"] == 20
            assert entry["good"] + entry["bad"] == entry["total"]
            assert 0.0 <= entry["compliance"] <= 1.0
            assert len(entry["burn_windows"]) == len(DEFAULT_BURN_WINDOWS)
        assert json.dumps(report, sort_keys=True) == json.dumps(build(), sort_keys=True)

    def test_default_slos_all_met_on_a_clean_stream(self):
        monitor = SloMonitor()
        for index in range(50):
            monitor.observe(0.3, "completed", ttft_s=0.1, at=float(index))
        report = monitor.evaluate(now=49.0)
        assert report["all_met"] and not report["any_alerting"]
