"""Tests for repro.metrics.edit_distance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.edit_distance import (
    correction_effort,
    levenshtein,
    line_diff,
    mean_correction_effort,
    token_edit_distance,
)


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein(["a", "b"], ["a", "b"]) == 0

    def test_empty_cases(self):
        assert levenshtein([], ["a", "b"]) == 2
        assert levenshtein(["a"], []) == 1
        assert levenshtein([], []) == 0

    def test_substitution(self):
        assert levenshtein(["a", "b", "c"], ["a", "x", "c"]) == 1

    def test_insertion_deletion(self):
        assert levenshtein(["a", "c"], ["a", "b", "c"]) == 1
        assert levenshtein(["a", "b", "c"], ["a", "c"]) == 1

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from("abc"), max_size=8), st.lists(st.sampled_from("abc"), max_size=8))
    def test_metric_properties(self, a, b):
        distance = levenshtein(a, b)
        assert distance == levenshtein(b, a)  # symmetry
        assert distance >= abs(len(a) - len(b))  # lower bound
        assert distance <= max(len(a), len(b))  # upper bound
        assert (distance == 0) == (a == b)


class TestCorrectionEffort:
    def test_zero_for_correct(self):
        assert correction_effort("a: 1", "a: 1") == 0.0

    def test_scaled_by_reference_length(self):
        reference = "name: nginx state: present"
        effort = correction_effort(reference, reference.replace("nginx", "httpd"))
        assert 0.0 < effort < 0.5

    def test_empty_reference(self):
        assert correction_effort("", "") == 0.0
        assert correction_effort("", "a b") == 2.0

    def test_token_edit_distance_on_yaml(self):
        ref = "- name: t\n  apt:\n    name: nginx\n"
        pred = ref.replace("nginx", "httpd")
        assert token_edit_distance(ref, pred) == 1

    def test_mean(self):
        assert mean_correction_effort(["a", "a"], ["a", "b"]) == pytest.approx(
            correction_effort("a", "b") / 2
        )

    def test_mean_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_correction_effort(["a"], [])


class TestLineDiff:
    def test_identical(self):
        diff = line_diff("a\nb\n", "a\nb\n")
        assert diff.matching_lines == 2
        assert diff.missing_lines == diff.extra_lines == diff.changed_lines == 0

    def test_missing_line(self):
        diff = line_diff("a\nb\nc\n", "a\nc\n")
        assert diff.matching_lines == 2
        assert diff.missing_lines == 1

    def test_extra_line(self):
        diff = line_diff("a\n", "a\nb\n")
        assert diff.extra_lines == 1

    def test_changed_line_pairs_unmatched(self):
        diff = line_diff("a\nb\n", "a\nx\n")
        assert diff.changed_lines == 1
        assert diff.missing_lines == 0 and diff.extra_lines == 0

    def test_empty_prediction(self):
        diff = line_diff("a\nb\n", "")
        assert diff.missing_lines == 2
        assert diff.total_reference_lines == 2

    def test_indentation_significant(self):
        diff = line_diff("  a: 1\n", "a: 1\n")
        assert diff.matching_lines == 0
