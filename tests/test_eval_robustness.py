"""Tests for repro.eval.robustness (the paper's future-work analysis)."""

from __future__ import annotations

from repro.dataset.prompt import NL_TO_T, T_NL_TO_T, build_task_sample
from repro.eval.robustness import (
    PERTURBATIONS,
    perturb_indentation,
    perturb_lowercase,
    perturb_quotes,
    perturb_synonym_swap,
    perturb_trailing_whitespace,
    robustness_report,
    summarize,
)
from repro.utils.rng import SeededRng

TASK = {"name": "Install nginx", "ansible.builtin.apt": {"name": "nginx", "state": "present"}}


def make_sample(generation_type=NL_TO_T, context=""):
    return build_task_sample(generation_type, "Install nginx", context, TASK, 0, "src")


class TestPerturbations:
    def test_lowercase(self):
        sample = perturb_lowercase(make_sample(), SeededRng(0))
        assert sample.input_text == "- name: install nginx\n"
        assert sample.reference_snippet == make_sample().reference_snippet

    def test_quotes(self):
        sample = perturb_quotes(make_sample(), SeededRng(0))
        assert sample.input_text == "- name: 'Install nginx'\n"

    def test_indentation_contextless_only(self):
        shifted = perturb_indentation(make_sample(), SeededRng(0))
        assert shifted.input_text == "  - name: Install nginx\n"
        assert shifted.indent == 2
        contextual = make_sample(T_NL_TO_T, context="- name: prev\n  ansible.builtin.debug:\n    msg: x\n")
        assert perturb_indentation(contextual, SeededRng(0)) is contextual

    def test_trailing_whitespace(self):
        sample = perturb_trailing_whitespace(make_sample(), SeededRng(0))
        assert sample.input_text.endswith("   \n")

    def test_synonym_swap_changes_input_only(self):
        sample = perturb_synonym_swap(make_sample(), SeededRng(0))
        assert "Install nginx" not in sample.input_text
        assert "nginx" in sample.input_text
        # recorded prompt stays original for comparable reconstruction
        assert sample.nl_prompt == "Install nginx"

    def test_synonym_noop_when_no_match(self):
        sample = build_task_sample(NL_TO_T, "Reboot the machine now", "", TASK, 0, "src")
        assert perturb_synonym_swap(sample, SeededRng(0)).input_text == sample.input_text

    def test_all_registered_perturbations_preserve_reference(self):
        base = make_sample()
        for name, perturbation in PERTURBATIONS.items():
            perturbed = perturbation(base, SeededRng(1))
            assert perturbed.reference_snippet == base.reference_snippet, name
            assert perturbed.generation_type == base.generation_type, name


class _PrefixSensitiveCompleter:
    """A fake model that only answers correctly on the exact clean prompt."""

    name = "fragile"

    def __init__(self, answers):
        self.answers = answers

    def complete(self, prompt, max_new_tokens=96):
        return self.answers.get(prompt, "  ansible.builtin.debug:\n    msg: wrong\n")


class TestRobustnessReport:
    def test_fragile_model_shows_gaps(self):
        samples = [make_sample()]
        completer = _PrefixSensitiveCompleter({samples[0].input_text: samples[0].target_text})
        rows = robustness_report(completer, samples, max_samples=1)
        assert len(rows) == len(PERTURBATIONS)
        by_name = {row.perturbation: row for row in rows}
        assert by_name["lowercase"].aware_gap > 0  # fragile under case change

    def test_robust_model_shows_no_gap(self):
        samples = [make_sample()]

        class Constant:
            name = "constant"

            def complete(self, prompt, max_new_tokens=96):
                return samples[0].target_text

        # The indentation perturbation legitimately changes the required
        # output indentation, so a constant completer is not "robust" to it;
        # check the purely textual perturbations.
        textual = {k: v for k, v in PERTURBATIONS.items() if k != "indentation"}
        rows = robustness_report(Constant(), samples, perturbations=textual, max_samples=1)
        assert all(row.bleu_gap == 0.0 for row in rows)

    def test_summarize(self):
        samples = [make_sample()]
        completer = _PrefixSensitiveCompleter({samples[0].input_text: samples[0].target_text})
        rows = robustness_report(completer, samples, max_samples=1)
        summary = summarize(rows)
        assert set(summary) == {"mean_bleu_gap", "mean_aware_gap", "worst"}
        assert summary["worst"] in PERTURBATIONS

    def test_summarize_empty(self):
        assert summarize([])["worst"] is None
