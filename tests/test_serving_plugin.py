"""Dedicated tests for repro.serving.plugin (the editor-session simulation).

The plugin protocol is the paper's VS Code flow: type a ``- name:`` prompt,
hit enter to trigger a prediction, then tab to accept or escape to reject.
These tests pin the keystroke state machine itself; the service behind it
is covered by test_serving.py / test_faults.py.
"""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving.plugin import ESCAPE, EditorSession, Suggestion, TAB
from repro.serving.service import PredictionService


class _ScriptedBackend:
    """Returns canned predict payloads and records the prompts it saw."""

    def __init__(self, completion="  ansible.builtin.apt:\n    name: nginx\n"):
        self.completion = completion
        self.prompts: list[str] = []

    def predict(self, prompt):
        self.prompts.append(prompt)
        return {"completion": self.completion, "latency_ms": 1.5, "cached": False}


class TestKeystrokeProtocol:
    def test_type_text_accumulates(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("---\n")
        session.type_text("- name: Install nginx")
        assert session.buffer == "---\n- name: Install nginx"

    def test_enter_triggers_prediction_with_whole_buffer(self):
        backend = _ScriptedBackend()
        session = EditorSession(backend=backend)
        session.type_text("- name: Install nginx")
        suggestion = session.press_enter()
        assert isinstance(suggestion, Suggestion)
        assert suggestion.text == backend.completion
        assert suggestion.latency_ms == 1.5 and suggestion.cached is False
        # The trigger sends the full buffer (context), newline-terminated.
        assert backend.prompts == ["- name: Install nginx\n"]

    def test_enter_requires_name_prompt_line(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("hosts: all")
        with pytest.raises(ServingError):
            session.press_enter()

    def test_enter_with_pending_suggestion_raises(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("- name: Install nginx")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press_enter()

    def test_tab_accepts_and_appends(self):
        session = EditorSession(backend=_ScriptedBackend(completion="  apt: {name: nginx}"))
        session.type_text("- name: Install nginx")
        session.press_enter()
        buffer = session.press(TAB)
        assert buffer.endswith("  apt: {name: nginx}\n")  # newline normalised
        assert session.accepted == 1 and session.rejected == 0

    def test_escape_rejects_and_leaves_buffer(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("- name: Install nginx")
        session.press_enter()
        before = session.buffer
        after = session.press(ESCAPE)
        assert after == before  # suggestion discarded, prompt kept
        assert session.accepted == 0 and session.rejected == 1

    def test_press_without_pending_raises(self):
        session = EditorSession(backend=_ScriptedBackend())
        with pytest.raises(ServingError):
            session.press(TAB)

    def test_unknown_key_raises(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("- name: Install nginx")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press("ctrl-z")

    def test_acceptance_rate(self):
        session = EditorSession(backend=_ScriptedBackend())
        assert session.acceptance_rate == 0.0
        for key in (TAB, TAB, ESCAPE, TAB):
            session.type_text("- name: another task")
            session.press_enter()
            session.press(key)
        assert session.acceptance_rate == pytest.approx(0.75)


class _StaticCompleter:
    name = "static"

    def complete(self, prompt, max_new_tokens=96):
        return "  ansible.builtin.service:\n    name: ssh\n    state: started\n"


class TestAgainstRealService:
    def test_session_round_trip_through_prediction_service(self):
        service = PredictionService(_StaticCompleter())
        session = EditorSession(backend=service)
        session.type_text("- name: Start SSH server")
        first = session.press_enter()
        assert first.cached is False
        session.press(TAB)
        assert "ansible.builtin.service" in session.buffer
        # Identical context in a new session hits the service cache.
        replay = EditorSession(backend=service)
        replay.type_text("- name: Start SSH server")
        assert replay.press_enter().cached is True

    def test_service_without_session_manager_falls_back_to_predict(self):
        # A PredictionService over a bare completer HAS session_create /
        # session_extend methods, but no manager behind them — the plugin
        # must detect that and stay on the stateless predict path.
        service = PredictionService(_StaticCompleter())
        session = EditorSession(backend=service)
        assert session.session_capable is False
        session.type_text("- name: Start SSH server")
        session.press_enter()
        assert session.session_id is None


@pytest.mark.streaming
class TestSessionBackedPlugin:
    """The keystroke flow rides server-side sessions: every enter after
    the first extends the warm KV slab instead of re-prefilling the file."""

    def _editor(self):
        from tests.test_streaming_equivalence import TRAIN_TEXTS, build_engine
        from repro.tokenizer.bpe import BpeTokenizer

        tokenizer = BpeTokenizer.train(TRAIN_TEXTS, vocab_size=300)
        engine = build_engine(tokenizer, 0)
        # max_new_tokens small enough that plan_prompt never left-truncates
        # the growing buffer (truncation would legitimately shrink the
        # common prefix and force a re-prefill, muddying the regression).
        service = PredictionService(
            engine, engine=engine, cache_capacity=1, max_new_tokens=12
        )
        return EditorSession(backend=service), service

    def test_no_reprefill_across_keystroke_extends(self):
        editor, service = self._editor()
        assert editor.session_capable is True
        engine = service.engine

        editor.type_text("- name: Install nginx")
        editor.press_enter()
        editor.press(TAB)
        prefill_after_first = engine.batcher.stats()["prefill_tokens"]
        buffer_tokens = len(engine.tokenizer.encode(editor.buffer))

        for step in range(3):
            editor.type_text(f"- name: Task number {step}")
            editor.press_enter()
            editor.press(TAB)

        # The regression surface: stateless keystrokes re-prefill the whole
        # growing buffer every enter (quadratic); sessions prefill only the
        # per-keystroke delta, so total prefill work stays BELOW even one
        # re-send of the final buffer on top of the first prefill.
        final_buffer_tokens = len(engine.tokenizer.encode(editor.buffer))
        prefill_total = engine.batcher.stats()["prefill_tokens"]
        session_stats = service.sessions.stats()
        delta_prefilled = session_stats["prefill_tokens"]
        assert editor.session_id is not None
        assert session_stats["extends"] == 3
        assert editor.reused_tokens > 0
        # batcher prefill counter is flat: sessions never go through the
        # batcher's admission prefill after the first enter
        assert prefill_total == prefill_after_first == 0  # sessions bypass batcher
        assert delta_prefilled < buffer_tokens + final_buffer_tokens
        editor.close()
        assert service.sessions.count == 0

    def test_session_prefill_is_delta_only(self):
        editor, service = self._editor()
        editor.type_text("- name: Install nginx")
        editor.press_enter()
        # Reject the suggestion: the buffer then grows ONLY by what the
        # user types, so BPE prefix-stability holds and the next extend's
        # prefill must be just the typed delta (± a boundary merge).
        editor.press(ESCAPE)
        before = service.sessions.stats()["prefill_tokens"]
        keystroke = "- name: One more"
        editor.type_text(keystroke)
        editor.press_enter()
        after = service.sessions.stats()["prefill_tokens"]
        engine = service.engine
        whole_buffer = len(engine.tokenizer.encode(editor.buffer))
        typed_delta = len(engine.tokenizer.encode(keystroke + "\n"))
        # the extend prefilled roughly the typed delta, not the whole file
        assert after - before < whole_buffer
        assert after - before <= typed_delta + 4  # BPE boundary slack

    def test_lost_session_degrades_to_fresh_create(self):
        editor, service = self._editor()
        editor.type_text("- name: Install nginx")
        editor.press_enter()
        editor.press(TAB)
        lost_id = editor.session_id
        service.sessions.close_all()  # server evicted / restarted
        editor.type_text("- name: Another")
        editor.press_enter()  # must not raise
        assert editor.session_id is not None
        assert editor.session_id != lost_id
        assert service.sessions.stats()["created"] == 2
