"""Dedicated tests for repro.serving.plugin (the editor-session simulation).

The plugin protocol is the paper's VS Code flow: type a ``- name:`` prompt,
hit enter to trigger a prediction, then tab to accept or escape to reject.
These tests pin the keystroke state machine itself; the service behind it
is covered by test_serving.py / test_faults.py.
"""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving.plugin import ESCAPE, EditorSession, Suggestion, TAB
from repro.serving.service import PredictionService


class _ScriptedBackend:
    """Returns canned predict payloads and records the prompts it saw."""

    def __init__(self, completion="  ansible.builtin.apt:\n    name: nginx\n"):
        self.completion = completion
        self.prompts: list[str] = []

    def predict(self, prompt):
        self.prompts.append(prompt)
        return {"completion": self.completion, "latency_ms": 1.5, "cached": False}


class TestKeystrokeProtocol:
    def test_type_text_accumulates(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("---\n")
        session.type_text("- name: Install nginx")
        assert session.buffer == "---\n- name: Install nginx"

    def test_enter_triggers_prediction_with_whole_buffer(self):
        backend = _ScriptedBackend()
        session = EditorSession(backend=backend)
        session.type_text("- name: Install nginx")
        suggestion = session.press_enter()
        assert isinstance(suggestion, Suggestion)
        assert suggestion.text == backend.completion
        assert suggestion.latency_ms == 1.5 and suggestion.cached is False
        # The trigger sends the full buffer (context), newline-terminated.
        assert backend.prompts == ["- name: Install nginx\n"]

    def test_enter_requires_name_prompt_line(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("hosts: all")
        with pytest.raises(ServingError):
            session.press_enter()

    def test_enter_with_pending_suggestion_raises(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("- name: Install nginx")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press_enter()

    def test_tab_accepts_and_appends(self):
        session = EditorSession(backend=_ScriptedBackend(completion="  apt: {name: nginx}"))
        session.type_text("- name: Install nginx")
        session.press_enter()
        buffer = session.press(TAB)
        assert buffer.endswith("  apt: {name: nginx}\n")  # newline normalised
        assert session.accepted == 1 and session.rejected == 0

    def test_escape_rejects_and_leaves_buffer(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("- name: Install nginx")
        session.press_enter()
        before = session.buffer
        after = session.press(ESCAPE)
        assert after == before  # suggestion discarded, prompt kept
        assert session.accepted == 0 and session.rejected == 1

    def test_press_without_pending_raises(self):
        session = EditorSession(backend=_ScriptedBackend())
        with pytest.raises(ServingError):
            session.press(TAB)

    def test_unknown_key_raises(self):
        session = EditorSession(backend=_ScriptedBackend())
        session.type_text("- name: Install nginx")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press("ctrl-z")

    def test_acceptance_rate(self):
        session = EditorSession(backend=_ScriptedBackend())
        assert session.acceptance_rate == 0.0
        for key in (TAB, TAB, ESCAPE, TAB):
            session.type_text("- name: another task")
            session.press_enter()
            session.press(key)
        assert session.acceptance_rate == pytest.approx(0.75)


class _StaticCompleter:
    name = "static"

    def complete(self, prompt, max_new_tokens=96):
        return "  ansible.builtin.service:\n    name: ssh\n    state: started\n"


class TestAgainstRealService:
    def test_session_round_trip_through_prediction_service(self):
        service = PredictionService(_StaticCompleter())
        session = EditorSession(backend=service)
        session.type_text("- name: Start SSH server")
        first = session.press_enter()
        assert first.cached is False
        session.press(TAB)
        assert "ansible.builtin.service" in session.buffer
        # Identical context in a new session hits the service cache.
        replay = EditorSession(backend=service)
        replay.type_text("- name: Start SSH server")
        assert replay.press_enter().cached is True
