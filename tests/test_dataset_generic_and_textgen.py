"""Tests for repro.dataset.generic_yaml and repro.dataset.textgen."""

from __future__ import annotations

from repro import yamlio
from repro.dataset.generic_yaml import (
    app_config,
    ci_workflow,
    docker_compose,
    generic_yaml_value,
    k8s_deployment,
    k8s_service,
)
from repro.dataset.textgen import (
    code_snippet,
    java_snippet,
    javascript_snippet,
    natural_paragraph,
    natural_sentence,
    python_snippet,
)
from repro.utils.rng import SeededRng


class TestGenericYaml:
    def test_k8s_deployment_shape(self):
        value = k8s_deployment(SeededRng(0))
        assert value["kind"] == "Deployment"
        assert value["spec"]["template"]["spec"]["containers"]

    def test_k8s_service_shape(self):
        value = k8s_service(SeededRng(0))
        assert value["kind"] == "Service"

    def test_docker_compose_services(self):
        value = docker_compose(SeededRng(1))
        assert value["services"]

    def test_ci_workflow_steps(self):
        value = ci_workflow(SeededRng(2))
        assert value["jobs"]["build"]["steps"]

    def test_app_config_keys(self):
        value = app_config(SeededRng(3))
        assert {"server", "logging", "features"} <= set(value)

    def test_all_emittable_and_parseable(self):
        rng = SeededRng(7)
        for _ in range(25):
            value = generic_yaml_value(rng)
            assert yamlio.loads(yamlio.dumps(value)) == value

    def test_not_ansible_shaped(self):
        """Generic YAML must not be mistaken for Ansible content."""
        from repro.ansible import classify_snippet

        rng = SeededRng(9)
        for _ in range(25):
            assert classify_snippet(generic_yaml_value(rng)) == "other"

    def test_deterministic(self):
        assert generic_yaml_value(SeededRng(4)) == generic_yaml_value(SeededRng(4))


class TestTextgen:
    def test_sentence_ends_with_period(self):
        assert natural_sentence(SeededRng(0)).endswith(".")

    def test_paragraph_sentence_count(self):
        text = natural_paragraph(SeededRng(0), n_sentences=3)
        assert text.count(".") >= 3

    def test_python_snippet_is_indented_code(self):
        text = python_snippet(SeededRng(1))
        assert text.startswith("def ")
        assert "\n    " in text

    def test_javascript_snippet(self):
        assert javascript_snippet(SeededRng(2)).startswith("function ")

    def test_java_snippet(self):
        assert java_snippet(SeededRng(3)).startswith("public class ")

    def test_code_snippet_mixes_languages(self):
        rng = SeededRng(5)
        starts = {code_snippet(rng).split(" ")[0] for _ in range(30)}
        assert len(starts) >= 2
