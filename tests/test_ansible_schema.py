"""Tests for repro.ansible.schema (the Schema Correct validator)."""

from __future__ import annotations

import pytest

from repro import yamlio
from repro.ansible import schema


def rules(violations):
    return {violation.rule for violation in violations}


GOOD_TASK = {
    "name": "Install nginx",
    "ansible.builtin.apt": {"name": "nginx", "state": "present"},
    "become": True,
}


class TestDocumentShape:
    def test_fig1_valid(self, fig1_text):
        assert schema.validate(yamlio.loads(fig1_text)) == []

    def test_non_list_document(self):
        assert "document-not-list" in rules(schema.validate({"a": 1}))

    def test_empty_document(self):
        assert "document-empty" in rules(schema.validate([]))

    def test_scalar_entries(self):
        assert "entry-not-mapping" in rules(schema.validate([1]))

    def test_mixed_plays_and_tasks(self):
        assert "mixed-plays-and-tasks" in rules(
            schema.validate([{"hosts": "all"}, GOOD_TASK])
        )


class TestPlayRules:
    def test_missing_hosts(self):
        assert "play-missing-hosts" in rules(schema.validate([{"name": "p", "tasks": [GOOD_TASK]}]))

    def test_unknown_play_keyword(self):
        violations = schema.validate([{"hosts": "all", "bogus_directive": 1, "tasks": [GOOD_TASK]}])
        assert "play-unknown-keyword" in rules(violations)

    def test_section_not_list(self):
        assert "section-not-list" in rules(schema.validate([{"hosts": "all", "tasks": "x"}]))

    def test_roles_validation(self):
        good = schema.validate([{"hosts": "all", "roles": ["common", {"role": "web"}]}])
        assert good == []
        bad = schema.validate([{"hosts": "all", "roles": [{"vars": {}}]}])
        assert "role-missing-name" in rules(bad)

    def test_gather_facts_type(self):
        assert "keyword-type" in rules(
            schema.validate([{"hosts": "all", "gather_facts": "sure", "tasks": [GOOD_TASK]}])
        )


class TestTaskRules:
    def test_good_task(self):
        assert schema.validate_task(GOOD_TASK) == []

    def test_unknown_module(self):
        assert "module-unknown" in rules(schema.validate_task({"name": "t", "frobnicate": {}}))

    def test_multiple_modules(self):
        assert "task-multiple-modules" in rules(schema.validate_task({"apt": None, "yum": None}))

    def test_missing_module(self):
        assert "task-missing-module" in rules(schema.validate_task({"name": "only a name"}))

    def test_name_type(self):
        assert "name-type" in rules(schema.validate_task({"name": 3, "ansible.builtin.debug": {"msg": "x"}}))

    def test_register_shape(self):
        bad = schema.validate_task({"ansible.builtin.stat": {"path": "/x"}, "register": "not valid!"})
        assert "register-invalid" in rules(bad)

    def test_boolean_keyword_type(self):
        bad = schema.validate_task({"ansible.builtin.debug": {"msg": "x"}, "become": "sudo"})
        assert "keyword-type" in rules(bad)

    def test_templated_keyword_allowed(self):
        ok = schema.validate_task({"ansible.builtin.debug": {"msg": "x"}, "become": "{{ use_become }}"})
        assert "keyword-type" not in rules(ok)

    def test_retries_type(self):
        bad = schema.validate_task({"ansible.builtin.debug": {"msg": "x"}, "retries": "three"})
        assert "keyword-type" in rules(bad)


class TestArgRules:
    def test_unknown_option_strict_only(self):
        task = {"ansible.builtin.apt": {"name": "x", "bogus_option": 1}}
        assert "args-unknown-option" in rules(schema.validate_task(task, schema.STRICT))
        assert "args-unknown-option" not in rules(schema.validate_task(task, schema.LENIENT))

    def test_bad_choice(self):
        task = {"ansible.builtin.apt": {"name": "x", "state": "sideways"}}
        assert "args-bad-choice" in rules(schema.validate_task(task))

    def test_alias_accepted(self):
        task = {"ansible.builtin.apt": {"pkg": "x", "state": "present"}}
        assert schema.validate_task(task) == []

    def test_missing_required_strict(self):
        task = {"ansible.builtin.copy": {"src": "a"}}  # dest required
        assert "args-missing-required" in rules(schema.validate_task(task, schema.STRICT))
        assert "args-missing-required" not in rules(schema.validate_task(task, schema.LENIENT))

    def test_bool_type(self):
        task = {"ansible.builtin.apt": {"name": "x", "update_cache": "maybe"}}
        assert "args-bad-type" in rules(schema.validate_task(task))

    def test_template_value_escapes_type_checks(self):
        task = {"ansible.builtin.apt": {"name": "x", "update_cache": "{{ cache }}"}}
        assert "args-bad-type" not in rules(schema.validate_task(task))

    def test_bool_choice_yaml11(self):
        # state choices on seboolean include booleans resolved by YAML
        task = {"ansible.builtin.seboolean": {"name": "httpd_can_network_connect", "state": True, "persistent": True}}
        assert schema.validate_task(task) == []


class TestHistoricalForms:
    """The paper: the linter schema rejects historical forms Ansible accepts."""

    def test_kv_args_strict_rejected_lenient_ok(self):
        task = {"name": "t", "apt": "name=nginx state=present"}
        assert "historical-kv-args" in rules(schema.validate_task(task, schema.STRICT))
        assert schema.validate_task(task, schema.LENIENT) == []

    def test_free_form_string_always_ok(self):
        task = {"name": "t", "ansible.builtin.shell": "echo hi"}
        assert schema.validate_task(task, schema.STRICT) == []

    def test_string_args_on_non_free_form(self):
        task = {"name": "t", "ansible.builtin.service": "restart it"}
        assert "args-not-mapping" in rules(schema.validate_task(task))

    def test_with_items_strict_flagged(self):
        task = {"ansible.builtin.apt": {"name": "{{ item }}"}, "with_items": ["a", "b"]}
        assert "deprecated-with-loop" in rules(schema.validate_task(task, schema.STRICT))
        assert schema.validate_task(task, schema.LENIENT) == []

    def test_perfect_em_zero_schema_possible(self):
        """The paper's caveat: training data is unfiltered, so ground truth
        can be schema-incorrect while being a perfect exact match."""
        text = "- name: t\n  apt: name=nginx state=present\n"
        data = yamlio.loads(text)
        assert schema.validate(data, schema.LENIENT) == []
        assert schema.validate(data, schema.STRICT) != []


class TestBlocks:
    def test_valid_block(self):
        block = {
            "block": [GOOD_TASK],
            "rescue": [{"ansible.builtin.debug": {"msg": "failed"}}],
            "when": "go",
        }
        assert schema.validate_task(block) == []

    def test_rescue_without_block(self):
        assert "block-missing-block" in rules(schema.validate_task({"rescue": [GOOD_TASK]}))

    def test_unknown_block_keyword(self):
        assert "block-unknown-keyword" in rules(
            schema.validate_task({"block": [GOOD_TASK], "frobnicate": 1})
        )

    def test_block_inside_play(self):
        play = [{"hosts": "all", "tasks": [{"block": [GOOD_TASK]}]}]
        assert schema.validate(play) == []


class TestIsSchemaCorrect:
    def test_predicate(self, fig1_text):
        assert schema.is_schema_correct(yamlio.loads(fig1_text))
        assert not schema.is_schema_correct([{"frobnicate": {}}])

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            schema.validate([], level="fuzzy")
