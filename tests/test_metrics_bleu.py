"""Tests for repro.metrics.bleu."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.bleu import (
    average_sentence_bleu,
    corpus_bleu,
    modified_precision,
    sentence_bleu,
    tokenize,
)


class TestTokenize:
    def test_yaml_line(self):
        assert tokenize("name: nginx") == ["name", ":", "nginx"]

    def test_punctuation_split(self):
        assert tokenize("ansible.builtin.apt") == ["ansible", ".", "builtin", ".", "apt"]

    def test_indentation_ignored(self):
        assert tokenize("  a: 1") == tokenize("a: 1")


class TestModifiedPrecision:
    def test_full_match(self):
        ref = tokenize("a b c d")
        assert modified_precision(ref, ref, 1) == (4, 4)

    def test_clipping(self):
        # prediction repeats a token more often than the reference has it
        ref = ["the", "cat"]
        pred = ["the", "the", "the"]
        matches, total = modified_precision(ref, pred, 1)
        assert (matches, total) == (1, 3)

    def test_empty_prediction(self):
        assert modified_precision(["a"], [], 1) == (0, 0)


class TestSentenceBleu:
    def test_perfect(self):
        text = "- name: install nginx\n  apt:\n    name: nginx\n"
        assert sentence_bleu(text, text) == pytest.approx(100.0)

    def test_empty_prediction(self):
        assert sentence_bleu("something", "") == 0.0

    def test_empty_reference(self):
        assert sentence_bleu("", "something") == 0.0

    def test_partial_lower_than_perfect(self):
        ref = "- name: install nginx\n  apt:\n    name: nginx\n    state: present\n"
        partial = "- name: install nginx\n  apt:\n    name: apache\n    state: absent\n"
        score = sentence_bleu(ref, partial)
        assert 0.0 < score < 100.0

    def test_brevity_penalty_applies(self):
        ref = "a b c d e f g h"
        short = "a b"
        long_pred = "a b c d e f g h"
        assert sentence_bleu(ref, short) < sentence_bleu(ref, long_pred)

    def test_order_sensitive(self):
        ref = "a b c d e"
        scrambled = "e d c b a"
        assert sentence_bleu(ref, scrambled) < sentence_bleu(ref, ref)

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abc :\n", min_size=4, max_size=40))
    def test_bounds(self, text):
        score = sentence_bleu(text, text[: max(2, len(text) // 2)])
        assert 0.0 <= score <= 100.0


class TestCorpusBleu:
    def test_perfect_corpus(self):
        refs = ["a b c d", "e f g h"]
        assert corpus_bleu(refs, refs) == pytest.approx(100.0)

    def test_empty_lists(self):
        assert corpus_bleu([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            corpus_bleu(["a"], [])

    def test_zero_when_no_4gram_matches(self):
        assert corpus_bleu(["a b c d e"], ["x y z w v"]) == 0.0

    def test_average_sentence_close_to_corpus_on_uniform_data(self):
        refs = ["a b c d e f", "a b c d e f"]
        preds = ["a b c d e f", "a b c d e f"]
        assert average_sentence_bleu(refs, preds) == pytest.approx(corpus_bleu(refs, preds))


class TestAgainstKnownValues:
    def test_half_overlap_unigram_dominated(self):
        """Hand-computed check: 8-token prediction, all unigrams match,
        half the higher n-grams match."""
        ref = "a b c d e f g h"
        pred = "a b c d h g f e"
        score = sentence_bleu(ref, pred, smooth=False)
        # p1=1.0, p2=4/7 (ab,bc,cd + ... let's just bound it)
        assert 30.0 < score < 80.0
