"""Shared fixtures: tiny corpora, tokenizers and models reused across tests.

Everything here is deliberately small — the definitive training runs live in
benchmarks/, while tests only need enough signal to exercise code paths and
invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import build_finetune_dataset, build_galaxy_corpus, split_corpus
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.tokenizer.bpe import BpeTokenizer
from repro.utils.rng import SeededRng

FIG1_PLAYBOOK = """---
- hosts: servers
  tasks:
    - name: Install SSH server
      ansible.builtin.apt:
        name: openssh-server
        state: present
    - name: Start SSH server
      ansible.builtin.service:
        name: ssh
        state: started
"""


@pytest.fixture(scope="session")
def rng() -> SeededRng:
    return SeededRng(1234)


@pytest.fixture(scope="session")
def galaxy_corpus():
    return build_galaxy_corpus(SeededRng(99).child("galaxy"), scale=0.001)


@pytest.fixture(scope="session")
def finetune_dataset(galaxy_corpus):
    splits = split_corpus(galaxy_corpus, SeededRng(99).child("split"))
    return build_finetune_dataset(splits.train, splits.validation, splits.test)


@pytest.fixture(scope="session")
def tiny_tokenizer(galaxy_corpus) -> BpeTokenizer:
    return BpeTokenizer.train(galaxy_corpus.texts()[:60], vocab_size=420)


@pytest.fixture(scope="session")
def tiny_config(tiny_tokenizer) -> TransformerConfig:
    return TransformerConfig(
        vocab_size=tiny_tokenizer.vocab_size,
        n_positions=64,
        dim=32,
        n_layers=2,
        n_heads=4,
    )


@pytest.fixture()
def tiny_network(tiny_config) -> DecoderLM:
    return DecoderLM(tiny_config, numpy_rng(0))


@pytest.fixture(scope="session")
def fig1_text() -> str:
    return FIG1_PLAYBOOK


@pytest.fixture()
def np_rng() -> np.random.Generator:
    return np.random.default_rng(0)
