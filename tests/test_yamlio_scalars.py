"""Tests for repro.yamlio.scalars."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.yamlio.scalars import (
    needs_quoting,
    quote_double,
    quote_single,
    represent_scalar,
    resolve_scalar,
    unquote_double,
    unquote_single,
)


class TestResolveScalar:
    @pytest.mark.parametrize("text", ["true", "True", "yes", "Yes", "on", "ON"])
    def test_true_words(self, text):
        assert resolve_scalar(text) is True

    @pytest.mark.parametrize("text", ["false", "False", "no", "NO", "off", "Off"])
    def test_false_words(self, text):
        assert resolve_scalar(text) is False

    @pytest.mark.parametrize("text", ["null", "~", "", "Null", "NULL"])
    def test_null_words(self, text):
        assert resolve_scalar(text) is None

    @pytest.mark.parametrize(
        "text,value",
        [("3", 3), ("-7", -7), ("+4", 4), ("0x10", 16), ("0o17", 15), ("0b101", 5), ("1_000", 1000)],
    )
    def test_integers(self, text, value):
        assert resolve_scalar(text) == value

    def test_legacy_octal_file_mode(self):
        # YAML 1.1: a leading zero means octal — the classic 0644 trap.
        assert resolve_scalar("0644") == 0o644

    @pytest.mark.parametrize("text,value", [("1.5", 1.5), ("-2.0", -2.0), ("1e3", 1000.0), (".5", 0.5)])
    def test_floats(self, text, value):
        assert resolve_scalar(text) == value

    def test_infinities(self):
        assert resolve_scalar(".inf") == float("inf")
        assert resolve_scalar("-.inf") == float("-inf")

    def test_nan(self):
        value = resolve_scalar(".nan")
        assert value != value

    @pytest.mark.parametrize("text", ["nginx", "v1.2.0-rc1", "hello world", "8080/tcp", "yesplease"])
    def test_strings_pass_through(self, text):
        assert resolve_scalar(text) == text

    def test_version_string_not_float(self):
        assert resolve_scalar("1.2.3") == "1.2.3"


class TestNeedsQuoting:
    @pytest.mark.parametrize("text", ["yes", "no", "true", "null", "", "3", "1.5", "0644"])
    def test_value_changing_strings_need_quotes(self, text):
        assert needs_quoting(text)

    @pytest.mark.parametrize(
        "text",
        ["a: b", "x #y", "- item", "{flow}", "[flow]", "# comment", " lead", "trail ", "{{ var }}"],
    )
    def test_syntax_hazards_need_quotes(self, text):
        # A leading '{' opens a flow mapping, so Jinja expressions like
        # "{{ var }}" must be quoted — exactly what Ansible style requires.
        assert needs_quoting(text)

    @pytest.mark.parametrize(
        "text",
        ["nginx", "install nginx with apt", "/etc/nginx/nginx.conf", "path {{ var }}/x"],
    )
    def test_plain_safe_strings(self, text):
        assert not needs_quoting(text)

    def test_trailing_colon_needs_quotes(self):
        assert needs_quoting("key:")


class TestRepresentScalar:
    @pytest.mark.parametrize(
        "value,expected",
        [(None, "null"), (True, "true"), (False, "false"), (3, "3"), ("plain", "plain")],
    )
    def test_basics(self, value, expected):
        assert represent_scalar(value) == expected

    def test_string_looking_like_bool_quoted(self):
        assert represent_scalar("yes") == "'yes'"

    def test_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            represent_scalar([1])

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip(self, value):
        assert resolve_scalar(represent_scalar(value)) == pytest.approx(value)


class TestQuoting:
    def test_single_quote_doubling(self):
        assert quote_single("it's") == "'it''s'"
        assert unquote_single("it''s") == "it's"

    def test_double_quote_escapes(self):
        assert quote_double('a"b\n') == '"a\\"b\\n"'
        assert unquote_double('a\\"b\\n') == 'a"b\n'

    def test_unicode_escape(self):
        assert unquote_double("\\u00e9") == "é"

    def test_hex_escape(self):
        assert unquote_double("\\x41") == "A"

    def test_unknown_escape_rejected(self):
        with pytest.raises(ValueError):
            unquote_double("\\q")

    def test_dangling_escape_rejected(self):
        with pytest.raises(ValueError):
            unquote_double("abc\\")

    @given(st.text(max_size=50))
    def test_single_quote_roundtrip(self, text):
        quoted = quote_single(text)
        assert unquote_single(quoted[1:-1]) == text

    @given(st.text(alphabet=st.characters(min_codepoint=9, max_codepoint=0x2FF), max_size=50))
    def test_double_quote_roundtrip(self, text):
        quoted = quote_double(text)
        assert unquote_double(quoted[1:-1]) == text


class TestRepresentResolveRoundtrip:
    @given(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-10**9, max_value=10**9),
            st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40),
        )
    )
    def test_scalar_roundtrip(self, value):
        rendered = represent_scalar(value)
        if isinstance(value, str):
            # quoted strings resolve via the parser, not resolve_scalar;
            # only plain-safe ones roundtrip directly
            if not rendered.startswith(("'", '"')):
                assert resolve_scalar(rendered) == value
        else:
            assert resolve_scalar(rendered) == value
