"""Tests for repro.obs.runlog (JSONL training-run recorder + compare).

The recorder's contract: every record is one flushed JSON line, so a
crash costs at most the trailing line and the loader shrugs it off;
summaries aggregate only the records that carry a field; and the
two-run compare renders b/a ratios without editorialising.
"""

from __future__ import annotations

import json

from repro.obs.runlog import RunLog, compare_runlogs, format_runlog, load_runlog
from repro.training import run_epoch


class TestWriteReadRoundTrip:
    def test_records_grouped_by_kind(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path, run_id="demo", meta={"model": "tiny"}) as log:
            log.log_step(0, 2.0, grad_norm=1.5, learning_rate=1e-3, tokens=64, step_s=0.5)
            log.log_step(1, 1.8)
            log.log_epoch(0, 1.9, steps=2)
            log.log_validation(0, bleu=12.5, exact_match=0.1)
        data = load_runlog(path)
        assert data.run_id == "demo"
        assert data.run["model"] == "tiny"
        assert [record["loss"] for record in data.steps] == [2.0, 1.8]
        assert data.steps[0]["tokens_per_s"] == 128.0
        assert "tokens_per_s" not in data.steps[1]  # no timing given
        assert data.epochs == [{"kind": "epoch", "epoch": 0, "mean_loss": 1.9, "steps": 2}]
        assert data.validations[0]["bleu"] == 12.5
        assert data.skipped == 0

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.log_step(0, 1.0)
            log.log_epoch(0, 1.0)
        for line in path.read_text().splitlines():
            json.loads(line)  # raises if any line is not self-contained JSON

    def test_summary_and_final_loss(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            for step in range(4):
                log.log_step(step, 2.0 - 0.5 * step, tokens=10, step_s=0.1)
            log.log_epoch(0, 1.25, steps=4)
        summary = load_runlog(path).summary()
        assert summary["steps"] == 4
        assert summary["final_loss"] == 1.25  # epoch mean wins over last step
        assert summary["total_tokens"] == 40
        assert summary["mean_step_s"] == 0.1

    def test_final_loss_falls_back_to_last_step(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.log_step(0, 3.0)
        assert load_runlog(path).final_loss == 3.0


class TestCorruptLines:
    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.log_step(0, 2.0)
            log.log_step(1, 1.5)
        # simulate a process killed mid-write: chop the last line in half
        text = path.read_text()
        path.write_text(text[: len(text) - 12])
        data = load_runlog(path)
        assert [record["loss"] for record in data.steps] == [2.0]
        assert data.skipped == 1
        assert "corrupt line(s) skipped" in format_runlog(data)

    def test_unknown_kind_counts_as_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "mystery"}\n{"kind": "step", "step": 0, "loss": 1.0}\n')
        data = load_runlog(path)
        assert data.skipped == 1
        assert len(data.steps) == 1

    def test_mid_file_corruption_costs_only_the_bad_lines(self, tmp_path):
        # a torn write in the MIDDLE of a file (crash + restart appending,
        # interleaved writers) must not poison the records after it
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"kind": "run", "run_id": "r"}\n'
            '{"kind": "step", "step": 0, "loss": 2.0}\n'
            '{"kind": "step", "st\n'  # torn mid-write
            "not json at all\n"
            '{"kind": "step", "step": 1, "loss": 1.5}\n'
        )
        data = load_runlog(path)
        assert [record["loss"] for record in data.steps] == [2.0, 1.5]
        assert data.skipped == 2

    def test_records_missing_required_numeric_fields_skipped(self, tmp_path):
        # valid JSON of a known kind but unusable payload: summary()/mean()
        # must never crash on it, so the loader rejects it up front
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"kind": "step", "step": 0, "loss": 2.0}\n'
            '{"kind": "step", "step": 1}\n'  # loss missing
            '{"kind": "step", "step": 2, "loss": "garbage"}\n'
            '{"kind": "epoch", "epoch": 0, "mean_loss": null}\n'
            '{"kind": "validation"}\n'  # epoch missing
            '{"kind": "epoch", "epoch": 0, "mean_loss": 1.8}\n'
        )
        data = load_runlog(path)
        assert len(data.steps) == 1 and len(data.epochs) == 1
        assert data.skipped == 4
        summary = data.summary()  # crash-free despite hostile input
        assert summary["final_loss"] == 1.8
        assert summary["skipped"] == 4

    def test_summary_reports_skip_count(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.log_step(0, 2.0)
        assert load_runlog(path).summary()["skipped"] == 0


class TestRendering:
    def write_run(self, path, run_id="a", step_s=0.1):
        with RunLog(path, run_id=run_id) as log:
            for step in range(3):
                log.log_step(step, 2.0 - 0.3 * step, grad_norm=1.0,
                             learning_rate=1e-3, tokens=32, step_s=step_s)
            log.log_epoch(0, 1.7, steps=3)
            log.log_validation(0, bleu=20.0)

    def test_format_runlog_shows_epoch_table(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self.write_run(path)
        text = format_runlog(load_runlog(path))
        assert "run: a" in text
        assert "Epochs" in text
        assert "bleu=20" in text

    def test_compare_shows_throughput_ratio(self, tmp_path):
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.write_run(path_a, run_id="before", step_s=0.2)
        self.write_run(path_b, run_id="after", step_s=0.1)
        text = compare_runlogs(load_runlog(path_a), load_runlog(path_b))
        assert "before" in text and "after" in text
        assert "2.000x" in text  # tokens/s doubled
        assert "0.500x" in text  # step time halved


class TestTrainerIntegration:
    def test_run_epoch_writes_step_records(self, tmp_path):
        import numpy as np

        from repro.model import SIZE_350M, transformer_config
        from repro.nn.optim import Adam, LinearSchedule
        from repro.nn.parameter import numpy_rng
        from repro.nn.transformer import DecoderLM

        network = DecoderLM(transformer_config(32, SIZE_350M, 16), numpy_rng(0))
        rng = np.random.default_rng(0)
        rows = rng.integers(1, 32, size=(4, 8)).astype(np.int64)
        targets = np.roll(rows, -1, axis=1)
        targets[:, -1] = -1
        path = tmp_path / "train.jsonl"
        schedule = LinearSchedule(peak_lr=1e-3, total_steps=2)
        with RunLog(path, run_id="epoch-test") as log:
            run_epoch(network, Adam(network.parameters()), rows, targets,
                      batch_size=2, rng=rng, schedule=schedule, runlog=log)
        data = load_runlog(path)
        assert len(data.steps) == 2  # 4 rows / batch 2
        for record in data.steps:
            assert record["loss"] > 0
            assert record["grad_norm"] > 0
            assert record["lr"] > 0
            assert record["tokens"] == 16
            assert record["tokens_per_s"] > 0
