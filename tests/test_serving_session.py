"""Keystroke sessions: lifecycle, eviction, reaping, HTTP surface, leaks.

The session manager holds warm KV slabs between requests — exactly the
kind of state that leaks when lifecycle paths (LRU eviction, idle TTL,
explicit close, crash close_all) miss a release.  Every test here ends by
asserting the arena is empty once sessions are gone.
"""

from __future__ import annotations

import pytest

from repro.errors import ServingError, SessionNotFoundError
from repro.faults import FakeClock, use
from repro.serving import PredictionService, RestServer, SessionManager
from repro.serving.client import PredictionClient
from tests.test_streaming_equivalence import TRAIN_TEXTS, build_engine

pytestmark = pytest.mark.streaming

BUFFER = TRAIN_TEXTS[0]


@pytest.fixture(scope="module")
def tokenizer():
    from repro.tokenizer.bpe import BpeTokenizer

    return BpeTokenizer.train(TRAIN_TEXTS, vocab_size=300)


def arena_empty(engine) -> bool:
    engine.prefix_cache.clear()
    return engine.kv_arena.stats()["bytes_in_use"] == 0


class TestLifecycle:
    def test_create_extend_close_accounting(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        manager = SessionManager(engine)
        created = manager.create(BUFFER, 8)
        assert created["outcome"] == "completed"
        assert created["extends"] == 0
        grown = BUFFER + created["completion"] + "\n- name: Another step\n"
        extended = manager.extend(created["session_id"], grown, 8)
        assert extended["extends"] == 1
        assert extended["reused_tokens"] > 0
        stats = manager.stats()
        assert stats["created"] == 1 and stats["extends"] == 1
        assert stats["token_reuse_rate"] > 0
        assert manager.close(created["session_id"]) is True
        assert manager.close(created["session_id"]) is False
        assert manager.count == 0
        assert arena_empty(engine)

    def test_unknown_session_raises_404_error(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        manager = SessionManager(engine)
        with pytest.raises(SessionNotFoundError):
            manager.extend("s9999", BUFFER, 4)

    def test_empty_buffer_rejected(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        service = PredictionService(engine, engine=engine)
        with pytest.raises(ServingError):
            service.session_create("   ")

    def test_session_ids_are_stable_and_unique(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        manager = SessionManager(engine)
        ids = [manager.create(text, 4)["session_id"] for text in TRAIN_TEXTS[:3]]
        assert len(set(ids)) == 3
        assert manager.session_ids() == ids


class TestEviction:
    def test_lru_eviction_over_capacity_releases_slabs(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        manager = SessionManager(engine, max_sessions=2)
        first = manager.create(TRAIN_TEXTS[0], 4)["session_id"]
        second = manager.create(TRAIN_TEXTS[1], 4)["session_id"]
        third = manager.create(TRAIN_TEXTS[2], 4)["session_id"]
        assert manager.count == 2
        assert manager.stats()["evicted"] == 1
        with pytest.raises(SessionNotFoundError):
            manager.extend(first, TRAIN_TEXTS[0] + "x\n", 4)
        # survivors still extend fine
        manager.extend(third, TRAIN_TEXTS[2] + "x\n", 4)
        manager.close_all()
        assert arena_empty(engine)
        assert second  # silence unused warning

    def test_extend_refreshes_lru_position(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        manager = SessionManager(engine, max_sessions=2)
        first = manager.create(TRAIN_TEXTS[0], 4)["session_id"]
        second = manager.create(TRAIN_TEXTS[1], 4)["session_id"]
        manager.extend(first, TRAIN_TEXTS[0] + "y\n", 4)  # first is now MRU
        manager.create(TRAIN_TEXTS[2], 4)
        assert first in manager.session_ids()
        assert second not in manager.session_ids()

    def test_idle_ttl_reaping(self, tokenizer):
        fake = FakeClock()
        with use(fake):
            engine = build_engine(tokenizer, 0)
            manager = SessionManager(engine, ttl_s=10.0)
            stale = manager.create(TRAIN_TEXTS[0], 4)["session_id"]
            fake.advance(8.0)
            live = manager.create(TRAIN_TEXTS[1], 4)["session_id"]
            fake.advance(5.0)  # stale is 13s idle, live only 5s
            assert manager.reap_idle() == 1
            assert manager.session_ids() == [live]
            with pytest.raises(SessionNotFoundError):
                manager.extend(stale, TRAIN_TEXTS[0] + "x\n", 4)
            assert manager.stats()["reaped"] == 1
        manager.close_all()
        assert arena_empty(engine)

    def test_close_all_drops_everything(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        manager = SessionManager(engine, max_sessions=8)
        for text in TRAIN_TEXTS:
            manager.create(text, 4)
        assert manager.close_all() == len(TRAIN_TEXTS)
        assert manager.count == 0
        assert arena_empty(engine)


class TestHttpSurface:
    def test_session_endpoints_roundtrip(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        service = PredictionService(engine, engine=engine)
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            created = client.session_create(BUFFER, max_new_tokens=6)
            assert created["session_id"].startswith("s")
            assert "ttft_ms" in created
            grown = BUFFER + created["completion"] + "\n- name: Next\n"
            extended = client.session_extend(created["session_id"], grown, max_new_tokens=6)
            assert extended["reused_tokens"] > 0
            closed = client.session_close(created["session_id"])
            assert closed["closed"] is True
        assert arena_empty(engine)

    def test_extend_unknown_session_is_http_404(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        service = PredictionService(engine, engine=engine)
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            with pytest.raises(SessionNotFoundError):
                client.session_extend("s4242", BUFFER, max_new_tokens=4)

    def test_stats_surface_sessions(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        service = PredictionService(engine, engine=engine)
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            client.session_create(BUFFER, max_new_tokens=4)
            stats = client.stats()
        assert stats["sessions"]["created"] == 1
        assert stats["sessions"]["live_sessions"] == 1

    def test_sessions_unavailable_without_engine_tokenizer(self):
        class _Stub:
            def complete(self, prompt, max_new_tokens=96):
                return " done"

        service = PredictionService(_Stub())
        assert service.sessions is None
        with pytest.raises(ServingError):
            service.session_create(BUFFER)
