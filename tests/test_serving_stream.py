"""SSE wire format: encode/parse round-trips survive hostile payloads.

The parser is byte-oriented and the encoder escapes everything non-ASCII,
so the adversarial inputs SSE is notorious for — carriage returns inside
data, ``\\n\\n`` sequences that look like frame boundaries, U+2028/U+2029
line separators, multi-byte UTF-8 split across chunk reads — must all
round-trip exactly.  Plus the serving-side streaming behaviours that ride
the wire format: heartbeats on the faults clock and client-disconnect
cancellation.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServingError
from repro.faults import FakeClock, use
from repro.serving.stream import (
    STREAM_EVENTS,
    SseEvent,
    SseParser,
    TextDelta,
    iter_sse,
    sse_comment,
    sse_encode,
)
from repro.utils.rng import SeededRng

pytestmark = pytest.mark.streaming

HOSTILE_PAYLOADS = [
    {"text": "plain ascii"},
    {"text": "carriage\rreturn"},
    {"text": "crlf\r\npair"},
    {"text": "frame\n\nboundary lookalike"},
    {"text": "line sep   and para sep  "},
    {"text": "emoji \U0001f680 rocket"},
    {"text": "mixed \r\n \U0001f680\n\n end"},
    {"text": "null-ish \x00 byte"},
    {"text": 'json specials " \\ / \b \f \t'},
    {"text": "日本語のテキストとハングル 한글"},
    {"text": ""},
    {"deep": {"nested": ["with", "\r\n", {"u2028": " "}]}},
]


def events_equal(events: list[SseEvent], want_event: str, want_data: dict) -> None:
    payloads = [event for event in events if not event.comment]
    assert len(payloads) == 1
    assert payloads[0].event == want_event
    assert payloads[0].json() == want_data


class TestEncodeParseRoundTrip:
    @pytest.mark.parametrize("payload", HOSTILE_PAYLOADS)
    def test_hostile_payload_roundtrips_whole(self, payload):
        wire = sse_encode("token", payload)
        assert wire.endswith(b"\n\n")
        parser = SseParser()
        events = parser.feed(wire) + parser.close()
        events_equal(events, "token", payload)

    @pytest.mark.parametrize("payload", HOSTILE_PAYLOADS)
    @pytest.mark.parametrize("chunk_size", (1, 2, 3, 7))
    def test_hostile_payload_roundtrips_chunked(self, payload, chunk_size):
        # Byte-level chunking slices multi-byte UTF-8 sequences and CRLF
        # pairs apart; the parser must buffer, never mangle.
        wire = sse_encode("token", payload)
        parser = SseParser()
        events = []
        for start in range(0, len(wire), chunk_size):
            events.extend(parser.feed(wire[start : start + chunk_size]))
        events.extend(parser.close())
        events_equal(events, "token", payload)

    def test_random_chunkings_roundtrip(self):
        rng = SeededRng(0).child("sse-fuzz")
        wire = b"".join(
            sse_encode("token", payload) for payload in HOSTILE_PAYLOADS
        ) + sse_encode("done", {"ok": True})
        for _ in range(25):
            parser = SseParser()
            events = []
            position = 0
            while position < len(wire):
                step = rng.randint(1, 17)
                events.extend(parser.feed(wire[position : position + step]))
                position += step
            events.extend(parser.close())
            payloads = [event for event in events if not event.comment]
            assert [event.event for event in payloads] == ["token"] * len(
                HOSTILE_PAYLOADS
            ) + ["done"]
            for event, want in zip(payloads, HOSTILE_PAYLOADS):
                assert event.json() == want

    def test_non_ascii_never_leaves_the_encoder_raw(self):
        wire = sse_encode("token", {"text": "U+2028:  emoji:\U0001f680"})
        assert max(wire) < 0x80  # pure ASCII on the wire; escapes carry the rest

    def test_iter_sse_streams_lazily(self):
        chunks = [sse_encode("token", {"i": index}) for index in range(3)]
        got = [event.json()["i"] for event in iter_sse(iter(chunks))]
        assert got == [0, 1, 2]


class TestParserEdgeCases:
    def test_crlf_and_lf_terminators_mix(self):
        raw = b'event: token\r\ndata: {"a": 1}\n\r\n'
        events = SseParser().feed(raw)
        events_equal(events, "token", {"a": 1})

    def test_trailing_lone_cr_is_deferred_not_split(self):
        # A chunk ending in \r might be half of a CRLF: the parser must
        # wait for the next byte before deciding.
        parser = SseParser()
        assert parser.feed(b'data: {"a": 1}\r') == []
        events = parser.feed(b'\nevent: token\r\n\r\n')
        events_equal(events, "token", {"a": 1})

    def test_multiple_data_lines_join_with_newline(self):
        events = SseParser().feed(b'data: "multi\ndata: line"\n\n')
        # per the SSE spec, multiple data: fields join with \n — which
        # inside a JSON string literal is invalid, so json() refuses
        assert events[0].data == '"multi\nline"'

    def test_comments_surface_as_comment_events(self):
        events = SseParser().feed(sse_comment("hb") + sse_encode("done", {}))
        assert events[0].comment and events[0].event == "comment"
        assert events[1].event == "done"

    def test_unknown_fields_ignored(self):
        events = SseParser().feed(b'id: 7\nretry: 100\nevent: token\ndata: {}\n\n')
        events_equal(events, "token", {})

    def test_close_flushes_unterminated_frame(self):
        parser = SseParser()
        assert parser.feed(b'event: done\ndata: {"end": true}') == []
        events = parser.close()
        events_equal(events, "done", {"end": True})

    def test_bad_event_name_rejected_at_encode(self):
        with pytest.raises(ServingError):
            sse_encode("token\nevil: injection", {})

    def test_known_stream_events(self):
        assert set(STREAM_EVENTS) == {"token", "heartbeat", "done", "error"}

    def test_non_json_data_raises_on_json_accessor(self):
        events = SseParser().feed(b"event: token\ndata: not-json\n\n")
        with pytest.raises(ServingError):
            events[0].json()


class TestTextDelta:
    def test_deltas_concat_to_one_shot_decode(self):
        from repro.tokenizer.bpe import BpeTokenizer

        texts = ["- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n"]
        tokenizer = BpeTokenizer.train(texts, vocab_size=300)
        ids = tokenizer.encode(texts[0])
        delta = TextDelta(tokenizer)
        pieces = []
        for end in range(1, len(ids) + 1):
            pieces.append(delta.push(ids[:end]))
        pieces.append(delta.flush(ids))
        assert "".join(pieces) == tokenizer.decode(ids)


class TestServiceStreaming:
    @pytest.fixture()
    def service(self):
        from tests.test_streaming_equivalence import build_engine
        from repro.serving import PredictionService
        from repro.tokenizer.bpe import BpeTokenizer

        tokenizer = BpeTokenizer.train(
            ["- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n"],
            vocab_size=300,
        )
        engine = build_engine(tokenizer, 0)
        return PredictionService(engine, engine=engine, heartbeat_interval_s=1.0)

    def test_heartbeats_ride_the_faults_clock(self, service):
        fake = FakeClock()
        original_interval = service.heartbeat_interval_s
        assert original_interval == 1.0
        with use(fake):
            # Slow consumer: advance the fake clock between events so every
            # inter-token gap crosses the heartbeat interval.
            events = []
            for event, data in service.predict_stream("- name: Install nginx\n", 6):
                events.append(event)
                fake.advance(2.0)
        assert "heartbeat" in events
        assert events[-1] == "done"

    def test_generator_close_counts_a_disconnect_and_frees_kv(self, service):
        stream = service.predict_stream("- name: Install nginx\n", 8)
        seen = 0
        for event, _data in stream:
            if event == "token":
                seen += 1
                if seen >= 2:
                    break
        stream.close()
        assert service.stream_disconnects == 1
        assert service.engine.batcher.stats()["cancelled_requests"] == 1
        service.engine.prefix_cache.clear()
        assert service.engine.kv_arena.stats()["bytes_in_use"] == 0

    def test_stream_events_are_sse_encodable(self, service):
        parser = SseParser()
        for event, data in service.predict_stream("- name: Install nginx\n", 4):
            parsed = parser.feed(sse_encode(event, data))
            assert parsed and parsed[0].json() == data
