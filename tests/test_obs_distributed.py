"""Distributed tracing and telemetry aggregation (repro.obs.distributed).

Covers the pieces the fleet stitches together: trace-context header
round-trips, deterministic trace-id minting, remote-context adoption on
the tracer, the collector's exactly-once span drain and replica-labelled
Prometheus merge, and the multi-process Chrome trace — plus property
tests that the Prometheus exposition round-trips hostile label values
(backslashes, quotes, newlines, and the ``\\r`` / ``\\x0b`` / U+2028
characters ``str.splitlines`` would treat as line boundaries).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, Tracer
from repro.obs.distributed import (
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    FleetCollector,
    TraceContext,
    TraceIdAllocator,
    fleet_chrome_trace,
    router_span_ref,
    write_fleet_chrome_trace,
)
from repro.obs.export import (
    escape_label_value,
    format_sample,
    parse_prometheus,
    prometheus_exposition,
    unescape_label_value,
)


class TestTraceContext:
    def test_headers_round_trip(self):
        context = TraceContext(trace_id="t-00000007", parent_span="t-00000007/r")
        assert TraceContext.from_headers(context.to_headers()) == context

    def test_parent_span_optional(self):
        context = TraceContext(trace_id="t-1")
        headers = context.to_headers()
        assert PARENT_SPAN_HEADER not in headers
        assert TraceContext.from_headers(headers) == context

    def test_absent_headers_give_none(self):
        assert TraceContext.from_headers({}) is None
        assert TraceContext.from_headers({PARENT_SPAN_HEADER: "x/r"}) is None

    def test_empty_parent_header_reads_as_none(self):
        headers = {TRACE_ID_HEADER: "t-1", PARENT_SPAN_HEADER: ""}
        assert TraceContext.from_headers(headers) == TraceContext(trace_id="t-1")


class TestTraceIdAllocator:
    def test_deterministic_sequence(self):
        first, second = TraceIdAllocator(), TraceIdAllocator()
        assert [first.allocate() for _ in range(3)] == [second.allocate() for _ in range(3)]
        assert first.allocate() == "t-00000004"

    def test_prefix_distinguishes_routers(self):
        assert TraceIdAllocator(prefix="r1").allocate() == "r1-00000001"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ObservabilityError):
            TraceIdAllocator(prefix="")


class TestRemoteContextAdoption:
    def test_root_spans_stamped_while_active(self):
        tracer = Tracer()
        with tracer.activate("t-9", "t-9/r"):
            with tracer.span("serving.predict"):
                with tracer.span("child"):
                    pass
            tracer.record("engine.request", 0.0, 1.0)
        roots = [span for span in tracer.spans() if span.parent_id is None]
        assert {span.name for span in roots} == {"serving.predict", "engine.request"}
        for span in roots:
            assert span.attrs["trace_id"] == "t-9"
            assert span.attrs["parent_span"] == "t-9/r"
        (child,) = tracer.spans("child")
        assert "trace_id" not in child.attrs  # only roots cross the boundary

    def test_outside_context_nothing_stamped(self):
        tracer = Tracer()
        with tracer.span("serving.predict"):
            pass
        assert "trace_id" not in tracer.spans()[0].attrs

    def test_contexts_nest_and_restore(self):
        tracer = Tracer()
        with tracer.activate("outer"):
            with tracer.activate("inner"):
                with tracer.span("a"):
                    pass
            with tracer.span("b"):
                pass
        spans = {span.name: span for span in tracer.spans()}
        assert spans["a"].attrs["trace_id"] == "inner"
        assert spans["b"].attrs["trace_id"] == "outer"

    def test_activate_on_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.activate("t-1", "t-1/r"):
            with tracer.span("a"):
                pass
        assert tracer.spans() == []

    def test_drain_is_exactly_once(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [span.name for span in drained] == ["a"]
        assert tracer.drain() == []
        assert tracer.total_recorded == 1  # lifetime counter survives the drain


class _FakeWorker:
    def __init__(self, payload=None, error=None):
        self.payload = payload or {"spans": [], "metrics_prometheus": "", "profile": None}
        self.error = error

    def telemetry(self):
        if self.error is not None:
            raise self.error
        return self.payload


def _span_payload(tracer: Tracer) -> dict:
    return {"spans": [span.to_dict() for span in tracer.drain()]}


class TestFleetCollector:
    def test_poll_drains_spans_exactly_once(self):
        tracer = Tracer()
        with tracer.span("engine.request"):
            pass

        class Worker:
            def telemetry(self):
                return {"spans": [span.to_dict() for span in tracer.drain()]}

        collector = FleetCollector()
        assert collector.poll("w0", Worker())
        assert collector.poll("w0", Worker())  # second poll drains nothing
        assert [span.name for span in collector.spans("w0")] == ["engine.request"]

    def test_unreachable_worker_counted_not_raised(self):
        collector = FleetCollector()
        assert not collector.poll("w0", _FakeWorker(error=ConnectionError("down")))
        assert collector.poll_errors == 1
        assert collector.stats()["polls"] == 1

    def test_prometheus_and_profile_are_replaced_spans_accumulate(self):
        collector = FleetCollector()
        tracer = Tracer()
        with tracer.span("a"):
            pass
        collector.ingest("w0", {**_span_payload(tracer), "metrics_prometheus": "m 1\n",
                                "profile": {"events": 1}})
        with tracer.span("b"):
            pass
        collector.ingest("w0", {**_span_payload(tracer), "metrics_prometheus": "m 2\n",
                                "profile": {"events": 2}})
        assert [span.name for span in collector.spans("w0")] == ["a", "b"]
        assert collector.profiles()["w0"] == {"events": 2}
        merged = collector.merged_prometheus()
        assert 'm{replica="w0"} 2' in merged
        assert 'm{replica="w0"} 1' not in merged

    def test_merged_prometheus_labels_and_determinism(self):
        def build() -> FleetCollector:
            collector = FleetCollector()
            for replica in ("w1", "w0"):
                registry = MetricsRegistry()
                registry.counter("engine.requests").inc(2)
                registry.histogram("latency", buckets=(0.1, 1.0)).observe(0.5)
                collector.ingest(
                    replica, {"metrics_prometheus": prometheus_exposition(registry)}
                )
            return collector

        merged = build().merged_prometheus()
        assert merged == build().merged_prometheus()
        parsed = parse_prometheus(merged)
        for entry in parsed.values():
            for _, labels, _ in entry["samples"]:
                assert labels["replica"] in {"w0", "w1"}
        # one # TYPE header per family, not per replica
        assert merged.count("# TYPE engine_requests_total") == 1
        # histogram buckets stay ordered per replica (cumulative invariant)
        buckets = [
            (labels["replica"], labels["le"])
            for name, labels, _ in parsed["latency"]["samples"]
            if name.endswith("_bucket")
        ]
        assert buckets == sorted(buckets, key=lambda pair: pair[0])

    def test_extra_exposition_joins_without_touching_state(self):
        collector = FleetCollector()
        merged = collector.merged_prometheus(extra={"router": "routed 3\n"})
        assert 'routed{replica="router"} 3' in merged
        assert collector.replicas() == []

    def test_empty_collector_merges_to_empty(self):
        assert FleetCollector().merged_prometheus() == ""


class TestFleetChromeTrace:
    def _spans(self):
        router = Tracer()
        with router.span("fleet.predict") as span:
            span.set(trace_id="t-00000001", span_ref=router_span_ref("t-00000001"))
        worker = Tracer()
        with worker.activate("t-00000001", router_span_ref("t-00000001")):
            with worker.span("serving.predict"):
                pass
        return router.spans(), {"w0": worker.spans()}

    def test_pids_and_flow_events(self):
        trace = fleet_chrome_trace(*self._spans())
        events = trace["traceEvents"]
        assert {event["pid"] for event in events} == {0, 1}
        flows = [event for event in events if event["ph"] in ("s", "f")]
        assert [event["ph"] for event in flows] == ["s", "f"]
        assert all(event["id"] == "t-00000001" for event in flows)
        start, finish = flows
        assert start["pid"] == 0 and finish["pid"] == 1

    def test_replicas_sorted_onto_stable_pids(self):
        router_spans, worker_spans = self._spans()
        worker_spans["a0"] = worker_spans.pop("w0")
        worker_spans["z9"] = []
        trace = fleet_chrome_trace(router_spans, worker_spans)
        names = {
            event["pid"]: event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert names == {0: "router", 1: "worker a0", 2: "worker z9"}

    def test_write_returns_span_count_and_is_canonical(self, tmp_path):
        trace = fleet_chrome_trace(*self._spans())
        path = tmp_path / "trace.json"
        count = write_fleet_chrome_trace(path, trace)
        assert count == 2
        assert json.loads(path.read_text()) == json.loads(json.dumps(trace, sort_keys=True))


# Label values the exposition format must carry verbatim: everything is
# legal except the three characters it escapes — and crucially the
# characters Python would mis-split on (\r, \x0b, \x1c..\x1e, \x85,
# U+2028, U+2029) must survive too.
label_values = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=0x2FFF),
    max_size=24,
)
label_names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,8}", fullmatch=True)


class TestPrometheusEscaping:
    @given(value=label_values)
    def test_escape_unescape_round_trip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    @given(labels=st.dictionaries(label_names, label_values, min_size=1, max_size=3),
           value=st.integers(min_value=0, max_value=10**9))
    def test_sample_line_round_trips_through_parser(self, labels, value):
        exposition = "# TYPE m counter\n" + format_sample("m", labels, value) + "\n"
        parsed = parse_prometheus(exposition)
        ((name, parsed_labels, parsed_value),) = parsed["m"]["samples"]
        assert name == "m"
        assert parsed_labels == labels
        assert parsed_value == value

    @pytest.mark.parametrize("hostile", ["a\rb", "a\x0bb", "a b", "a\x85b", 'q"\\\nz'])
    def test_splitlines_hazards_survive_a_merge(self, hostile):
        collector = FleetCollector()
        collector.ingest(
            "w0", {"metrics_prometheus": format_sample("m", {"k": hostile}, 1.0) + "\n"}
        )
        parsed = parse_prometheus(collector.merged_prometheus())
        ((_, labels, _),) = parsed["m"]["samples"]
        assert labels == {"replica": "w0", "k": hostile}
