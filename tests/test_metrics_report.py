"""Tests for repro.metrics.report."""

from __future__ import annotations

import pytest

from repro.metrics.report import EvalReport

GOOD = "- name: t\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
OTHER = "- name: t\n  ansible.builtin.debug:\n    msg: hi\n"


class TestEvalReport:
    def test_empty_report(self):
        report = EvalReport("m")
        assert report.count == 0
        assert report.bleu == 0.0
        assert report.as_row() == ["m", 0, 0.0, 0.0, 0.0, 0.0]

    def test_perfect_sample(self):
        report = EvalReport("m")
        score = report.add(GOOD, GOOD, "NL->T")
        assert score.exact_match and score.schema_correct
        assert report.exact_match == 100.0
        assert report.bleu == pytest.approx(100.0)
        assert report.ansible_aware == pytest.approx(100.0)

    def test_mixed_samples(self):
        report = EvalReport("m")
        report.add(GOOD, GOOD, "NL->T")
        report.add(GOOD, OTHER, "T+NL->T")
        assert report.exact_match == 50.0
        assert 0.0 < report.bleu < 100.0

    def test_subset_by_type(self):
        report = EvalReport("m")
        report.add(GOOD, GOOD, "NL->T")
        report.add(GOOD, OTHER, "T+NL->T")
        subset = report.subset("NL->T")
        assert subset.count == 1
        assert subset.exact_match == 100.0

    def test_generation_types_order(self):
        report = EvalReport("m")
        report.add(GOOD, GOOD, "T+NL->T")
        report.add(GOOD, GOOD, "NL->T")
        report.add(GOOD, GOOD, "T+NL->T")
        assert report.generation_types() == ["T+NL->T", "NL->T"]

    def test_row_headers_match_paper_columns(self):
        assert EvalReport.ROW_HEADERS == ("Model", "Count", "Schema Correct", "EM", "BLEU", "Ansible Aware")
