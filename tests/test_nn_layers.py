"""Tests for repro.nn.layers — each backward pass checked against finite
differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    cross_entropy,
    gelu,
    gelu_backward,
    softmax,
)


def numerical_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        up = f()
        flat[index] = original - eps
        down = f()
        flat[index] = original
        out[index] = (up - down) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape(self, np_rng):
        layer = Linear("l", 4, 6, np_rng)
        out = layer.forward(np.ones((2, 3, 4), dtype=np.float32))
        assert out.shape == (2, 3, 6)

    def test_shape_mismatch(self, np_rng):
        layer = Linear("l", 4, 6, np_rng)
        with pytest.raises(ShapeError):
            layer.forward(np.ones((2, 5), dtype=np.float32))

    def test_backward_before_forward(self, np_rng):
        layer = Linear("l", 4, 6, np_rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 6), dtype=np.float32))

    def test_gradients_match_numerical(self, np_rng):
        layer = Linear("l", 3, 2, np_rng)
        x = np_rng.normal(size=(4, 3)).astype(np.float32)

        def loss():
            return float((layer.forward(x.copy(), training=False) ** 2).sum() / 2)

        layer.zero_grad()
        out = layer.forward(x)
        grad_x = layer.backward(out)  # d/dy of sum(y^2)/2 is y
        expected_w = numerical_grad(loss, layer.weight.data)
        expected_b = numerical_grad(loss, layer.bias.data)
        assert np.allclose(layer.weight.grad, expected_w, atol=2e-2)
        assert np.allclose(layer.bias.grad, expected_b, atol=2e-2)
        assert grad_x.shape == x.shape

    def test_no_bias(self, np_rng):
        layer = Linear("l", 3, 2, np_rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestEmbedding:
    def test_lookup(self, np_rng):
        layer = Embedding("e", 10, 4, np_rng)
        out = layer.forward(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], layer.weight.data[1])

    def test_out_of_range(self, np_rng):
        layer = Embedding("e", 10, 4, np_rng)
        with pytest.raises(ShapeError):
            layer.forward(np.array([[10]]))

    def test_backward_accumulates_duplicates(self, np_rng):
        layer = Embedding("e", 5, 3, np_rng)
        ids = np.array([[1, 1, 2]])
        layer.zero_grad()
        layer.forward(ids)
        grad = np.ones((1, 3, 3), dtype=np.float32)
        layer.backward(grad)
        assert np.allclose(layer.weight.grad[1], 2.0)
        assert np.allclose(layer.weight.grad[2], 1.0)
        assert np.allclose(layer.weight.grad[0], 0.0)


class TestLayerNorm:
    def test_normalizes(self, np_rng):
        layer = LayerNorm("ln", 8)
        x = np_rng.normal(loc=5.0, scale=3.0, size=(2, 8)).astype(np.float32)
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients_match_numerical(self, np_rng):
        layer = LayerNorm("ln", 4)
        x = np_rng.normal(size=(3, 4)).astype(np.float32)
        target = np_rng.normal(size=(3, 4)).astype(np.float32)

        def loss():
            out = layer.forward(x, training=False)
            return float(((out - target) ** 2).sum() / 2)

        layer.zero_grad()
        out = layer.forward(x)
        grad_x = layer.backward(out - target)
        assert np.allclose(layer.gamma.grad, numerical_grad(loss, layer.gamma.data), atol=2e-2)
        assert np.allclose(layer.beta.grad, numerical_grad(loss, layer.beta.data), atol=2e-2)
        assert np.allclose(grad_x, numerical_grad(loss, x), atol=2e-2)


class TestGelu:
    def test_known_values(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gelu(np.array([100.0]))[0] == pytest.approx(100.0)
        assert gelu(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_derivative_matches_numerical(self):
        x = np.linspace(-3, 3, 13).astype(np.float64)
        eps = 1e-5
        numerical = (gelu(x + eps) - gelu(x - eps)) / (2 * eps)
        analytic = gelu_backward(x, np.ones_like(x))
        assert np.allclose(analytic, numerical, atol=1e-6)


class TestSoftmax:
    def test_rows_sum_to_one(self, np_rng):
        out = softmax(np_rng.normal(size=(4, 7)))
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_values_stable(self):
        out = softmax(np.array([[1e9, 0.0, -1e9]]))
        assert np.isfinite(out).all()


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((1, 3, 4), -20.0, dtype=np.float32)
        targets = np.array([[0, 1, 2]])
        for position, target in enumerate([0, 1, 2]):
            logits[0, position, target] = 20.0
        loss, grad = cross_entropy(logits, targets)
        assert loss < 1e-5
        assert grad.shape == logits.shape

    def test_uniform_logits_log_vocab(self):
        logits = np.zeros((1, 2, 8), dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([[3, 5]]))
        assert loss == pytest.approx(np.log(8), rel=1e-4)

    def test_ignore_index(self):
        logits = np.zeros((1, 3, 4), dtype=np.float32)
        loss_all, grad_all = cross_entropy(logits, np.array([[1, 1, 1]]))
        loss_some, grad_some = cross_entropy(logits, np.array([[1, -1, -1]]))
        assert loss_all == pytest.approx(loss_some)
        assert np.allclose(grad_some[0, 1], 0.0)
        assert np.allclose(grad_some[0, 2], 0.0)

    def test_all_ignored(self):
        logits = np.zeros((1, 2, 4), dtype=np.float32)
        loss, grad = cross_entropy(logits, np.array([[-1, -1]]))
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_gradient_matches_numerical(self, np_rng):
        logits = np_rng.normal(size=(1, 2, 5)).astype(np.float64)
        targets = np.array([[1, 3]])
        _, grad = cross_entropy(logits, targets)

        def loss_fn():
            value, _ = cross_entropy(logits, targets)
            return value

        numerical = numerical_grad(loss_fn, logits, eps=1e-5)
        assert np.allclose(grad, numerical, atol=1e-5)
