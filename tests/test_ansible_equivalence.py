"""Tests for repro.ansible.equivalence."""

from __future__ import annotations

import pytest

from repro.ansible.equivalence import (
    EQUIVALENCE_GROUPS,
    PARTIAL_MODULE_CREDIT,
    are_equivalent,
    equivalence_group,
    module_key_score,
)
from repro.ansible.modules import get_module


class TestGroups:
    def test_paper_named_groups_present(self):
        """The paper names command/shell, copy/template, package/apt/dnf/yum."""
        flattened = [frozenset(group) for group in EQUIVALENCE_GROUPS]
        assert frozenset({"ansible.builtin.command", "ansible.builtin.shell"}) in flattened
        assert frozenset({"ansible.builtin.copy", "ansible.builtin.template"}) in flattened
        assert (
            frozenset(
                {
                    "ansible.builtin.package",
                    "ansible.builtin.apt",
                    "ansible.builtin.dnf",
                    "ansible.builtin.yum",
                }
            )
            in flattened
        )

    def test_groups_disjoint(self):
        seen: set[str] = set()
        for group in EQUIVALENCE_GROUPS:
            assert not (seen & group)
            seen |= group

    def test_all_members_in_catalog(self):
        for group in EQUIVALENCE_GROUPS:
            for member in group:
                assert get_module(member) is not None, member


class TestScoring:
    def test_identity(self):
        assert module_key_score("ansible.builtin.apt", "ansible.builtin.apt") == 1.0

    def test_equivalent_partial(self):
        assert module_key_score("ansible.builtin.apt", "ansible.builtin.yum") == PARTIAL_MODULE_CREDIT

    def test_unrelated_zero(self):
        assert module_key_score("ansible.builtin.apt", "ansible.builtin.debug") == 0.0

    def test_symmetry(self):
        pairs = [("ansible.builtin.copy", "ansible.builtin.template"), ("ansible.builtin.apt", "ansible.builtin.user")]
        for a, b in pairs:
            assert module_key_score(a, b) == module_key_score(b, a)
            assert are_equivalent(a, b) == are_equivalent(b, a)

    def test_are_equivalent_identity(self):
        assert are_equivalent("x.y.z", "x.y.z")

    def test_equivalence_group_singleton_for_unknown(self):
        assert equivalence_group("my.weird.module") == frozenset({"my.weird.module"})

    @pytest.mark.parametrize("member", ["ansible.builtin.command", "ansible.builtin.shell"])
    def test_equivalence_group_membership(self, member):
        group = equivalence_group(member)
        assert "ansible.builtin.command" in group and "ansible.builtin.shell" in group
