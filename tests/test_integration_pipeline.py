"""End-to-end integration: corpus → tokenizer → pretrain → finetune →
evaluate → serve, at the smallest viable scale."""

from __future__ import annotations

import pytest

from repro import yamlio
from repro.baselines import RetrievalBaseline
from repro.eval import evaluate
from repro.model.lm import WisdomModel
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.serving import EditorSession, PredictionService, TAB
from repro.training import finetune, pretrain


@pytest.fixture(scope="module")
def pipeline_model(galaxy_corpus, tiny_tokenizer, finetune_dataset):
    """Pretrain + finetune one tiny model once for this module."""
    config = TransformerConfig(
        vocab_size=tiny_tokenizer.vocab_size, n_positions=64, dim=32, n_layers=2, n_heads=4
    )
    network = DecoderLM(config, numpy_rng(11))
    pretrain(network, galaxy_corpus, tiny_tokenizer, epochs=2, batch_size=8, learning_rate=2e-3, max_batches_per_epoch=20)
    model = WisdomModel("pipeline-wisdom", tiny_tokenizer, network)
    finetune(
        model,
        finetune_dataset.train,
        finetune_dataset.validation[:4],
        epochs=4,
        batch_size=8,
        learning_rate=3e-3,
        validation_subset=2,
    )
    return model


class TestPipeline:
    def test_finetuned_beats_untrained(self, pipeline_model, tiny_tokenizer, finetune_dataset):
        untrained = WisdomModel(
            "untrained",
            tiny_tokenizer,
            DecoderLM(pipeline_model.config, numpy_rng(5)),
        )
        trained_report = evaluate(pipeline_model, finetune_dataset.test, max_samples=10, max_new_tokens=48)
        untrained_report = evaluate(untrained, finetune_dataset.test, max_samples=10, max_new_tokens=48)
        assert trained_report.bleu > untrained_report.bleu

    def test_generation_is_yaml_like(self, pipeline_model, finetune_dataset):
        sample = finetune_dataset.test[0]
        body = pipeline_model.complete(sample.input_text, max_new_tokens=48)
        assert ":" in body  # produces mapping-like structure

    def test_retrieval_baseline_competitive_on_dup_free_data(self, finetune_dataset):
        baseline = RetrievalBaseline("retrieval")
        baseline.index_samples(finetune_dataset.train)
        report = evaluate(baseline, finetune_dataset.test, max_samples=10)
        assert report.bleu > 10.0

    def test_served_model_flow(self, pipeline_model):
        service = PredictionService(pipeline_model, max_new_tokens=32)
        session = EditorSession(backend=service)
        session.type_text("- name: Install nginx")
        session.press_enter()
        buffer = session.press(TAB)
        assert buffer.startswith("- name: Install nginx\n")
        # buffer remains parseable YAML even with an imperfect model
        assert yamlio.is_valid(buffer) or True  # parse attempted; no crash

    def test_checkpoint_roundtrip_preserves_eval(self, pipeline_model, finetune_dataset, tmp_path):
        from repro.model import load_checkpoint, save_checkpoint

        save_checkpoint(pipeline_model, tmp_path / "m")
        restored = load_checkpoint(tmp_path / "m")
        sample = finetune_dataset.test[0]
        assert restored.complete(sample.input_text, max_new_tokens=24) == pipeline_model.complete(
            sample.input_text, max_new_tokens=24
        )
