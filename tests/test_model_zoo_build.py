"""Integration tests for building the model zoo (Table 2 → trained models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.corpus import Corpus, Document
from repro.model.zoo import (
    CARDS_BY_NAME,
    PretrainingCorpora,
    build_model,
    build_tokenizer,
    build_zoo,
)


def _mini_corpus(name: str, texts: list[str]) -> Corpus:
    return Corpus(name, [Document(f"{name}/{i}", name, "x", text) for i, text in enumerate(texts)])


@pytest.fixture(scope="module")
def mini_corpora(galaxy_corpus):
    ansible_texts = galaxy_corpus.texts()[:40]
    return PretrainingCorpora(
        pile=_mini_corpus("pile", ["the server restarts the service. " * 6] * 20),
        bigquery=_mini_corpus("bigquery", ["def f(x):\n    return x\n"] * 20),
        bigpython=_mini_corpus("bigpython", ["def g(y):\n    return y\n"] * 10),
        ansible=_mini_corpus("ansible", ansible_texts),
        generic=_mini_corpus("generic", ["a: 1\nb:\n  - 2\n"] * 20),
    )


@pytest.fixture(scope="module")
def mini_tokenizer(mini_corpora):
    return build_tokenizer(mini_corpora, vocab_size=420, max_texts=80)


class TestBuildModel:
    def test_single_card(self, mini_corpora, mini_tokenizer):
        model = build_model(
            CARDS_BY_NAME["Wisdom-Ansible"],
            mini_corpora,
            mini_tokenizer,
            epochs=1,
            max_batches_per_epoch=4,
        )
        assert model.name == "Wisdom-Ansible"
        assert model.config.vocab_size == mini_tokenizer.vocab_size

    def test_warm_start_changes_initialization(self, mini_corpora, mini_tokenizer):
        base = build_model(
            CARDS_BY_NAME["CodeGen-Multi"], mini_corpora, mini_tokenizer, epochs=1, max_batches_per_epoch=4
        )
        # Same-window card so weights are shape-compatible.
        card = CARDS_BY_NAME["Wisdom-Ansible-Multi"]
        cold = build_model(card, mini_corpora, mini_tokenizer, epochs=1, max_batches_per_epoch=2)
        # Warm start requires matching architecture; adjust base card window.
        from dataclasses import replace

        warm_card = replace(card, context_window=CARDS_BY_NAME["CodeGen-Multi"].context_window)
        warm = build_model(
            warm_card, mini_corpora, mini_tokenizer, epochs=1, max_batches_per_epoch=2, base_model=base
        )
        cold_first = cold.network.parameters()[0].data
        warm_first = warm.network.parameters()[0].data
        assert cold_first.shape == warm_first.shape
        assert not np.allclose(cold_first, warm_first)

    def test_base_weights_not_mutated(self, mini_corpora, mini_tokenizer):
        from dataclasses import replace

        base = build_model(
            CARDS_BY_NAME["CodeGen-Multi"], mini_corpora, mini_tokenizer, epochs=1, max_batches_per_epoch=2
        )
        snapshot = base.network.parameters()[0].data.copy()
        warm_card = replace(
            CARDS_BY_NAME["Wisdom-Ansible-Multi"],
            context_window=CARDS_BY_NAME["CodeGen-Multi"].context_window,
        )
        build_model(
            warm_card, mini_corpora, mini_tokenizer, epochs=1, max_batches_per_epoch=2, base_model=base
        )
        assert np.allclose(base.network.parameters()[0].data, snapshot)


class TestBuildZoo:
    def test_subset_zoo_with_warm_start(self, mini_corpora, mini_tokenizer):
        from dataclasses import replace

        cards = (
            CARDS_BY_NAME["CodeGen-Multi"],
            replace(
                CARDS_BY_NAME["Wisdom-Ansible-Multi"],
                context_window=CARDS_BY_NAME["CodeGen-Multi"].context_window,
            ),
        )
        zoo = build_zoo(mini_corpora, mini_tokenizer, cards=cards, epochs=1, max_batches_per_epoch=2)
        assert set(zoo) == {"CodeGen-Multi", "Wisdom-Ansible-Multi"}

    def test_zoo_builds_missing_base_on_demand(self, mini_corpora, mini_tokenizer):
        from dataclasses import replace

        cards = (
            replace(
                CARDS_BY_NAME["Wisdom-Ansible-Multi"],
                context_window=CARDS_BY_NAME["CodeGen-Multi"].context_window,
            ),
        )
        zoo = build_zoo(mini_corpora, mini_tokenizer, cards=cards, epochs=1, max_batches_per_epoch=2)
        # the CodeGen-Multi base was trained implicitly
        assert "CodeGen-Multi" in zoo
