"""Tests for repro.nn.sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.nn.optim import Adam
from repro.nn.parameter import numpy_rng
from repro.nn.sampling import generate_beam, generate_greedy, generate_sampled
from repro.nn.transformer import DecoderLM, TransformerConfig


@pytest.fixture(scope="module")
def trained_model():
    """A model trained to continue the cycle 1,2,3,4,... ."""
    config = TransformerConfig(vocab_size=16, n_positions=24, dim=16, n_layers=2, n_heads=4)
    model = DecoderLM(config, numpy_rng(1))
    ids = np.array([[1, 2, 3, 4] * 5], dtype=np.int64)
    targets = np.roll(ids, -1, axis=1)
    targets[:, -1] = -1
    optimizer = Adam(model.parameters(), learning_rate=3e-3)
    for _ in range(150):
        model.zero_grad()
        model.loss_and_backward(ids, targets)
        optimizer.step()
    return model


class TestGreedy:
    def test_continues_pattern(self, trained_model):
        result = generate_greedy(trained_model, [1, 2, 3, 4, 1, 2], max_new_tokens=6)
        assert result.token_ids == [3, 4, 1, 2, 3, 4]
        assert result.stop_reason == "max_tokens"

    def test_stop_token(self, trained_model):
        next_token = generate_greedy(trained_model, [1, 2], max_new_tokens=4).token_ids[0]
        result = generate_greedy(trained_model, [1, 2], max_new_tokens=4, stop_ids={next_token})
        assert result.token_ids == []
        assert result.stop_reason == "stop_token"

    def test_context_full(self, trained_model):
        # A near-window prompt with a huge budget is truncated to leave
        # room for min(budget, window // 2) tokens, generates exactly that
        # many, and reports the shortfall via effective_budget.
        window = trained_model.config.n_positions
        result = generate_greedy(trained_model, [1] * (window - 2), max_new_tokens=50)
        assert result.stop_reason == "context_full"
        assert result.effective_budget == window // 2
        assert len(result.token_ids) == result.effective_budget

    def test_long_prompt_left_truncated(self, trained_model):
        result = generate_greedy(trained_model, [1, 2, 3, 4] * 20, max_new_tokens=2)
        assert len(result.token_ids) > 0

    def test_budget_survives_long_prompt(self, trained_model):
        # The classic silent-stop bug: a long prompt plus a modest budget
        # must deliver the full budget, not context_full after one token.
        window = trained_model.config.n_positions
        budget = 6
        result = generate_greedy(trained_model, [1, 2, 3, 4] * 20, max_new_tokens=budget)
        assert result.stop_reason == "max_tokens"
        assert result.effective_budget == budget
        assert len(result.token_ids) == budget

    def test_effective_budget_boundary(self, trained_model):
        # Prompt exactly fills window - budget: nothing truncated, full
        # budget effective; one token longer and the truncation kicks in.
        window = trained_model.config.n_positions
        budget = 4
        exact = generate_greedy(trained_model, [1, 2, 3, 4] * ((window - budget) // 4), max_new_tokens=budget)
        assert exact.effective_budget == budget
        assert exact.stop_reason in ("max_tokens", "context_full")
        assert len(exact.token_ids) == budget

    def test_short_prompt_budget_capped_by_window(self, trained_model):
        # No truncation needed, but the window still caps the budget.
        window = trained_model.config.n_positions
        prompt = [1, 2, 3, 4]
        result = generate_greedy(trained_model, prompt, max_new_tokens=window * 2)
        assert result.effective_budget == window - len(prompt)
        assert result.stop_reason == "context_full"
        assert len(result.token_ids) == result.effective_budget

    def test_empty_prompt_rejected(self, trained_model):
        with pytest.raises(GenerationError):
            generate_greedy(trained_model, [], max_new_tokens=2)

    def test_bad_budget_rejected(self, trained_model):
        with pytest.raises(GenerationError):
            generate_greedy(trained_model, [1], max_new_tokens=0)


class TestSampled:
    def test_zero_temperature_rejected(self, trained_model):
        with pytest.raises(GenerationError):
            generate_sampled(trained_model, [1], 4, np.random.default_rng(0), temperature=0.0)

    def test_deterministic_given_seed(self, trained_model):
        a = generate_sampled(trained_model, [1, 2], 6, np.random.default_rng(7), temperature=0.8)
        b = generate_sampled(trained_model, [1, 2], 6, np.random.default_rng(7), temperature=0.8)
        assert a.token_ids == b.token_ids

    def test_low_temperature_matches_greedy(self, trained_model):
        greedy = generate_greedy(trained_model, [1, 2, 3, 4, 1, 2], max_new_tokens=4)
        sampled = generate_sampled(
            trained_model, [1, 2, 3, 4, 1, 2], 4, np.random.default_rng(0), temperature=0.01
        )
        assert sampled.token_ids == greedy.token_ids

    def test_top_k_limits_support(self, trained_model):
        result = generate_sampled(
            trained_model, [1, 2, 3, 4, 1, 2], 8, np.random.default_rng(3), temperature=5.0, top_k=1
        )
        greedy = generate_greedy(trained_model, [1, 2, 3, 4, 1, 2], max_new_tokens=8)
        assert result.token_ids == greedy.token_ids


class TestBeam:
    def test_beam_matches_greedy_on_peaked_model(self, trained_model):
        greedy = generate_greedy(trained_model, [1, 2, 3, 4, 1, 2], max_new_tokens=4)
        beam = generate_beam(trained_model, [1, 2, 3, 4, 1, 2], max_new_tokens=4, beam_width=2)
        assert beam.token_ids == greedy.token_ids

    def test_beam_stop_token(self, trained_model):
        next_token = generate_greedy(trained_model, [1, 2], max_new_tokens=1).token_ids[0]
        result = generate_beam(trained_model, [1, 2], max_new_tokens=3, beam_width=2, stop_ids={next_token})
        assert result.stop_reason in ("stop_token", "max_tokens")
