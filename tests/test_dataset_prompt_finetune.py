"""Tests for prompt formulation and fine-tuning sample extraction."""

from __future__ import annotations

import pytest

from repro import yamlio
from repro.dataset.corpus import Document
from repro.dataset.finetune import (
    build_finetune_dataset,
    extract_from_playbook,
    extract_from_task_list,
    extract_samples,
)
from repro.dataset.prompt import (
    COMPLETION,
    NL_TO_PB,
    NL_TO_T,
    PB_NL_TO_T,
    PLAYBOOK_TASK_INDENT,
    PREFIX,
    T_NL_TO_T,
    build_task_sample,
    combined_playbook_prompt,
    dedent_prediction,
    name_line,
    prediction_snippet,
    render_task_body,
)

TASK_A = {"name": "Install nginx", "ansible.builtin.apt": {"name": "nginx", "state": "present"}}
TASK_B = {"name": "Start nginx", "ansible.builtin.service": {"name": "nginx", "state": "started"}}
TASK_C = {"name": "Open port 80", "ansible.posix.firewalld": {"port": "80/tcp", "state": "enabled"}}

PLAY_SMALL = {"name": "Web setup", "hosts": "web", "tasks": [TASK_A, TASK_B]}
PLAY_BIG = {"name": "Web setup", "hosts": "web", "tasks": [TASK_A, TASK_B, TASK_C]}


def doc(value, identifier="galaxy/x.yml") -> Document:
    return Document(identifier, "galaxy", "ansible", yamlio.dumps(value))


class TestRendering:
    def test_name_line(self):
        assert name_line("Install nginx", 4) == "    - name: Install nginx\n"

    def test_name_line_quotes_hazards(self):
        assert name_line("retry: twice", 0) == "- name: 'retry: twice'\n"

    def test_render_task_body_indent(self):
        body = render_task_body(TASK_A, 4)
        assert body.startswith("      ansible.builtin.apt:")
        assert body.endswith("state: present\n")

    def test_body_plus_name_reconstructs_task(self):
        text = name_line(TASK_A["name"], 0) + render_task_body(TASK_A, 0)
        assert yamlio.loads(text) == [TASK_A]


class TestTaskSamples:
    def test_completion_sample(self):
        sample = build_task_sample(NL_TO_T, "Install nginx", "", TASK_A, 0, "src")
        assert sample.input_text == "- name: Install nginx\n"
        assert sample.training_text == sample.input_text + sample.target_text
        assert yamlio.loads(sample.reference_snippet) == [TASK_A]

    def test_prefix_sample(self):
        context = yamlio.dumps([TASK_A])
        sample = build_task_sample(T_NL_TO_T, "Start nginx", context, TASK_B, 0, "src", PREFIX)
        assert sample.input_text.startswith("context code\n")
        assert "prompt\nStart nginx\n" in sample.input_text
        assert sample.target_text == render_task_body(TASK_B, 0)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            build_task_sample(NL_TO_T, "x", "", TASK_A, 0, "src", format="weird")


class TestPlaybookExtraction:
    def test_small_playbook_becomes_nl_to_pb(self):
        samples = extract_from_playbook(doc([PLAY_SMALL]), [PLAY_SMALL])
        assert [s.generation_type for s in samples] == [NL_TO_PB]
        sample = samples[0]
        assert "Web setup & Install nginx & Start nginx" == sample.nl_prompt
        # reference parses as a play with name replaced by the combined prompt
        parsed = yamlio.loads(sample.reference_snippet)
        assert parsed[0]["hosts"] == "web"
        assert len(parsed[0]["tasks"]) == 2

    def test_big_playbook_becomes_next_task_samples(self):
        samples = extract_from_playbook(doc([PLAY_BIG]), [PLAY_BIG])
        assert [s.generation_type for s in samples] == [PB_NL_TO_T, PB_NL_TO_T]
        second = samples[1]
        assert second.nl_prompt == "Open port 80"
        assert second.indent == PLAYBOOK_TASK_INDENT
        # context holds the play plus the *first two* tasks
        context_text = second.input_text[: second.input_text.rfind("    - name:")]
        context = yamlio.loads(context_text)
        assert len(context[0]["tasks"]) == 2

    def test_combined_prompt(self):
        assert combined_playbook_prompt(PLAY_SMALL) == "Web setup & Install nginx & Start nginx"

    def test_unnamed_play_skipped(self):
        play = {"hosts": "web", "tasks": [TASK_A]}
        assert extract_from_playbook(doc([play]), [play]) == []

    def test_unnamed_task_skipped_in_big_playbook(self):
        play = dict(PLAY_BIG)
        play["tasks"] = [TASK_A, {"ansible.builtin.debug": {"msg": "x"}}, TASK_C]
        samples = extract_from_playbook(doc([play]), [play])
        assert [s.nl_prompt for s in samples] == ["Open port 80"]


class TestTaskListExtraction:
    def test_first_task_nl_to_t_rest_contextual(self):
        tasks = [TASK_A, TASK_B, TASK_C]
        samples = extract_from_task_list(doc(tasks), tasks)
        assert [s.generation_type for s in samples] == [NL_TO_T, T_NL_TO_T, T_NL_TO_T]
        assert samples[0].input_text == "- name: Install nginx\n"
        assert samples[2].input_text.count("- name:") == 3  # 2 context + 1 prompt

    def test_context_is_valid_yaml(self):
        tasks = [TASK_A, TASK_B]
        samples = extract_from_task_list(doc(tasks), tasks)
        context_text = samples[1].input_text.rsplit("- name:", 1)[0]
        assert yamlio.loads(context_text) == [TASK_A]


class TestExtractSamples:
    def test_invalid_documents_skipped(self):
        bad = Document("x", "galaxy", "ansible", "not: [valid")
        assert extract_samples(type("C", (), {"__iter__": lambda s: iter([bad])})()) == []

    def test_full_dataset_counts(self, galaxy_corpus, finetune_dataset):
        sizes = finetune_dataset.sizes()
        assert sizes["train"] > sizes["validation"] > 0
        assert sizes["test"] > 0
        types = finetune_dataset.counts_by_type("train")
        assert types.get(T_NL_TO_T, 0) > types.get(NL_TO_T, 0) > 0

    def test_no_cross_split_target_leakage(self, finetune_dataset):
        train_targets = {s.training_text for s in finetune_dataset.train}
        for split in (finetune_dataset.test, finetune_dataset.validation):
            for sample in split:
                assert sample.training_text not in train_targets

    def test_train_fraction(self, finetune_dataset):
        from repro.utils.rng import SeededRng

        reduced = finetune_dataset.train_fraction(0.5, SeededRng(0))
        assert len(reduced.train) == max(1, int(len(finetune_dataset.train) * 0.5))
        assert reduced.test is finetune_dataset.test

    def test_train_fraction_bounds(self, finetune_dataset):
        from repro.utils.rng import SeededRng

        with pytest.raises(ValueError):
            finetune_dataset.train_fraction(0.0, SeededRng(0))


class TestPredictionSnippet:
    def test_dedent_prediction(self):
        body = "    a: 1\n      b: 2\n"
        assert dedent_prediction(body, 4) == "a: 1\n  b: 2\n"

    def test_prediction_snippet_reconstruction(self):
        sample = build_task_sample(NL_TO_T, "Install nginx", "", TASK_A, 0, "src")
        prediction = prediction_snippet(sample, sample.target_text)
        assert prediction == sample.reference_snippet

    def test_prediction_snippet_indented_context(self):
        sample = build_task_sample(PB_NL_TO_T, "Start nginx", "ctx", TASK_B, 4, "src")
        prediction = prediction_snippet(sample, sample.target_text)
        assert yamlio.loads(prediction) == [TASK_B]
