"""Tests for rotary embeddings and causal self-attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.attention import CausalSelfAttention, KVCache
from repro.nn.rotary import apply_rotary, apply_rotary_backward, rotary_tables


class TestRotaryTables:
    def test_shapes(self):
        cos, sin = rotary_tables(16, 8)
        assert cos.shape == (16, 4) and sin.shape == (16, 4)

    def test_position_zero_identity(self):
        cos, sin = rotary_tables(4, 8)
        assert np.allclose(cos[0], 1.0)
        assert np.allclose(sin[0], 0.0)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rotary_tables(4, 7)


class TestApplyRotary:
    def test_norm_preserved(self, np_rng):
        """Rotations preserve vector norms."""
        x = np_rng.normal(size=(2, 3, 5, 8)).astype(np.float32)
        cos, sin = rotary_tables(5, 8)
        rotated = apply_rotary(x, cos[None, None], sin[None, None])
        assert np.allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-5
        )

    def test_backward_is_inverse_rotation(self, np_rng):
        x = np_rng.normal(size=(1, 2, 4, 8)).astype(np.float32)
        cos, sin = rotary_tables(4, 8)
        rotated = apply_rotary(x, cos[None, None], sin[None, None])
        recovered = apply_rotary_backward(rotated, cos[None, None], sin[None, None])
        assert np.allclose(recovered, x, atol=1e-5)

    def test_relative_position_property(self, np_rng):
        """q_m . k_n depends only on (m - n): shifting both by one position
        leaves the rotated dot product unchanged."""
        q = np_rng.normal(size=(8,)).astype(np.float64)
        k = np_rng.normal(size=(8,)).astype(np.float64)
        cos, sin = rotary_tables(10, 8)

        def rotated_dot(m, n):
            qm = apply_rotary(q[None, None, None, :], cos[m][None, None, None], sin[m][None, None, None])
            kn = apply_rotary(k[None, None, None, :], cos[n][None, None, None], sin[n][None, None, None])
            return float((qm * kn).sum())

        assert rotated_dot(3, 1) == pytest.approx(rotated_dot(5, 3), abs=1e-4)
        assert rotated_dot(3, 1) != pytest.approx(rotated_dot(4, 1), abs=1e-3)


class TestCausalSelfAttention:
    def make(self, np_rng, dim=16, heads=4, positions=12):
        return CausalSelfAttention("attn", dim, heads, positions, np_rng)

    def test_output_shape(self, np_rng):
        attention = self.make(np_rng)
        out = attention.forward(np_rng.normal(size=(2, 6, 16)).astype(np.float32))
        assert out.shape == (2, 6, 16)

    def test_bad_head_split(self, np_rng):
        with pytest.raises(ShapeError):
            CausalSelfAttention("a", 10, 4, 8, np_rng)

    def test_sequence_too_long(self, np_rng):
        attention = self.make(np_rng, positions=4)
        with pytest.raises(ShapeError):
            attention.forward(np.zeros((1, 5, 16), dtype=np.float32))

    def test_causality(self, np_rng):
        """Changing a future token must not change past outputs."""
        attention = self.make(np_rng)
        x = np_rng.normal(size=(1, 6, 16)).astype(np.float32)
        base = attention.forward(x, training=False)
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = attention.forward(perturbed, training=False)
        assert np.allclose(out[0, :5], base[0, :5], atol=1e-5)
        assert not np.allclose(out[0, 5], base[0, 5], atol=1e-3)

    def test_gradient_check(self, np_rng):
        attention = self.make(np_rng, dim=8, heads=2, positions=6)
        x = np_rng.normal(size=(1, 4, 8)).astype(np.float32)
        target = np_rng.normal(size=(1, 4, 8)).astype(np.float32)

        def loss():
            out = attention.forward(x, training=False)
            return float(((out - target) ** 2).sum() / 2)

        attention.zero_grad()
        out = attention.forward(x)
        attention.backward(out - target)
        parameter = attention.query_proj.weight
        eps = 1e-3
        for i, j in [(0, 0), (3, 5), (7, 2)]:
            original = parameter.data[i, j]
            parameter.data[i, j] = original + eps
            up = loss()
            parameter.data[i, j] = original - eps
            down = loss()
            parameter.data[i, j] = original
            numerical = (up - down) / (2 * eps)
            assert parameter.grad[i, j] == pytest.approx(numerical, abs=2e-3)

    def test_incremental_matches_full(self, np_rng):
        attention = self.make(np_rng)
        x = np_rng.normal(size=(1, 8, 16)).astype(np.float32)
        full = attention.forward(x, training=False)
        cache = KVCache()
        part1 = attention.forward_incremental(x[:, :3], cache)
        part2 = attention.forward_incremental(x[:, 3:6], cache)
        part3 = attention.forward_incremental(x[:, 6:], cache)
        stitched = np.concatenate([part1, part2, part3], axis=1)
        assert np.allclose(stitched, full, atol=1e-4)

    def test_cache_overflow(self, np_rng):
        attention = self.make(np_rng, positions=4)
        cache = KVCache()
        attention.forward_incremental(np.zeros((1, 3, 16), dtype=np.float32), cache)
        with pytest.raises(ShapeError):
            attention.forward_incremental(np.zeros((1, 2, 16), dtype=np.float32), cache)

    def test_kv_cache_length(self, np_rng):
        cache = KVCache()
        assert cache.length == 0
        attention = self.make(np_rng)
        attention.forward_incremental(np.zeros((1, 5, 16), dtype=np.float32), cache)
        assert cache.length == 5
