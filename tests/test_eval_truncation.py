"""Dedicated tests for repro.eval.truncation (first-task truncation policy).

The paper truncates task generations to the first generated task and
leaves NL→PB playbook generations untouched; these tests pin the
boundary rules (siblings, dedents, document markers, blank lines) at
several indents.
"""

from __future__ import annotations

import pytest

from repro.dataset.prompt import GENERATION_TYPES, NL_TO_PB
from repro.eval.truncation import truncate_generation, truncate_to_first_task

FIRST_TASK = "  ansible.builtin.apt:\n    name: openssh-server\n    state: present\n"


class TestTruncateToFirstTask:
    def test_single_task_unchanged(self):
        assert truncate_to_first_task(FIRST_TASK, 0) == FIRST_TASK

    def test_sibling_task_cut(self):
        overflow = FIRST_TASK + "- name: Start SSH server\n  service: {name: ssh}\n"
        assert truncate_to_first_task(overflow, 0) == FIRST_TASK

    def test_sibling_left_of_indent_cut(self):
        indented = "      ansible.builtin.apt:\n        name: nginx\n"
        overflow = indented + "  - name: another\n"
        assert truncate_to_first_task(overflow, 4) == indented

    def test_dedent_out_of_task_cut(self):
        overflow = FIRST_TASK + "handlers:\n  - name: restart\n"
        assert truncate_to_first_task(overflow, 0) == FIRST_TASK

    def test_document_marker_cut(self):
        overflow = FIRST_TASK + "---\n- hosts: all\n"
        assert truncate_to_first_task(overflow, 0) == FIRST_TASK

    def test_interior_blank_kept_trailing_stripped(self):
        body = "  apt:\n\n    state: present\n"
        assert truncate_to_first_task(body + "\n\n", 0) == body

    def test_dash_line_deeper_than_indent_kept(self):
        # A list item *inside* the task body (e.g. a with_items list) is
        # not a sibling task: it sits right of the task's own dash column.
        body = "  apt:\n    name:\n      - nginx\n      - curl\n"
        assert truncate_to_first_task(body, 0) == body

    def test_empty_body(self):
        assert truncate_to_first_task("", 0) == ""
        assert truncate_to_first_task("\n\n", 0) == ""

    def test_cut_to_nothing(self):
        assert truncate_to_first_task("- name: sibling immediately\n", 0) == ""


class TestTruncateGeneration:
    def test_playbooks_not_truncated(self):
        playbook = "- hosts: all\n  tasks:\n    - name: a\n      ping:\n- hosts: web\n"
        assert truncate_generation(playbook, 0, NL_TO_PB) == playbook

    def test_playbook_trailing_newlines_normalised(self):
        assert truncate_generation("- hosts: all\n\n\n", 0, NL_TO_PB) == "- hosts: all\n"

    def test_blank_playbook_is_empty(self):
        assert truncate_generation("   \n", 0, NL_TO_PB) == ""

    @pytest.mark.parametrize(
        "generation_type", [g for g in GENERATION_TYPES if g != NL_TO_PB]
    )
    def test_task_types_truncate(self, generation_type):
        overflow = FIRST_TASK + "- name: Start SSH server\n  service: {name: ssh}\n"
        assert truncate_generation(overflow, 0, generation_type) == FIRST_TASK
