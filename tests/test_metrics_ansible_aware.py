"""Tests for repro.metrics.ansible_aware — the paper's novel metric #1."""

from __future__ import annotations

import pytest

from repro.metrics.ansible_aware import (
    ansible_aware,
    average_ansible_aware,
    snippet_score,
    task_score,
)

REF_TASK = """- name: Install nginx
  ansible.builtin.apt:
    name: nginx
    state: present
  become: true
"""


class TestTaskScoring:
    def test_identity(self):
        assert ansible_aware(REF_TASK, REF_TASK) == 100.0

    def test_name_ignored(self):
        renamed = REF_TASK.replace("Install nginx", "totally different words")
        assert ansible_aware(REF_TASK, renamed) == 100.0

    def test_key_order_insensitive(self):
        reordered = """- become: true
  ansible.builtin.apt:
    state: present
    name: nginx
  name: Install nginx
"""
        assert ansible_aware(REF_TASK, reordered) == 100.0

    def test_fqcn_normalization(self):
        short = REF_TASK.replace("ansible.builtin.apt", "apt")
        assert ansible_aware(REF_TASK, short) == 100.0
        assert ansible_aware(short, REF_TASK) == 100.0

    def test_kv_normalization(self):
        kv = "- name: x\n  apt: name=nginx state=present\n  become: yes\n"
        assert ansible_aware(REF_TASK, kv) == 100.0

    def test_insertions_ignored(self):
        extra = REF_TASK + "  register: install_result\n"
        assert ansible_aware(REF_TASK, extra) == 100.0

    def test_insertion_penalty_option(self):
        extra = REF_TASK + "  register: install_result\n"
        assert ansible_aware(REF_TASK, extra, insertion_penalty=0.1) == pytest.approx(90.0)

    def test_missing_keyword_scores_zero_for_that_pair(self):
        missing = """- name: Install nginx
  ansible.builtin.apt:
    name: nginx
    state: present
"""
        # two scored pairs (module, become): module 1.0, become 0.0
        assert ansible_aware(REF_TASK, missing) == pytest.approx(50.0)

    def test_wrong_scalar_value_half_credit_on_pair(self):
        wrong = REF_TASK.replace("become: true", "become: false")
        # module pair 1.0; become pair 0.5 (key found, value wrong)
        assert ansible_aware(REF_TASK, wrong) == pytest.approx(75.0)

    def test_unparseable_prediction_zero(self):
        assert ansible_aware(REF_TASK, "]] not yaml [[") == 0.0

    def test_unrelated_module_zero(self):
        other = "- name: x\n  ansible.builtin.debug:\n    msg: hi\n  become: true\n"
        # module pair 0.0, become pair 1.0 -> 50
        assert ansible_aware(REF_TASK, other) == pytest.approx(50.0)


class TestModuleEquivalence:
    def test_equivalent_module_partial_credit(self):
        """package/apt: 0.5 module-key credit averaged with the args score."""
        yum = REF_TASK.replace("ansible.builtin.apt", "ansible.builtin.yum")
        # module pair: (0.5 + 1.0 args)/2 = 0.75; become: 1.0 -> 87.5
        assert ansible_aware(REF_TASK, yum) == pytest.approx(87.5)

    def test_copy_template_partial(self):
        ref = "- name: c\n  ansible.builtin.copy:\n    src: a\n    dest: b\n"
        pred = "- name: c\n  ansible.builtin.template:\n    src: a\n    dest: b\n"
        assert ansible_aware(ref, pred) == pytest.approx(75.0)


class TestNestedValues:
    def test_list_value_positional(self):
        ref = "- name: l\n  vyos.vyos.vyos_config:\n    lines:\n      - set a\n      - set b\n"
        pred = "- name: l\n  vyos.vyos.vyos_config:\n    lines:\n      - set a\n      - set WRONG\n"
        # args score: lines pair = 0.5 + 0.5*(avg over items: 1, 0) = 0.75
        # module pair = (1 + 0.75)/2 = 0.875
        assert ansible_aware(ref, pred) == pytest.approx(87.5)

    def test_missing_list_items_penalized(self):
        ref = "- name: l\n  ansible.builtin.apt:\n    name:\n      - a\n      - b\n"
        pred = "- name: l\n  ansible.builtin.apt:\n    name:\n      - a\n"
        score = ansible_aware(ref, pred)
        assert 0.0 < score < 100.0

    def test_dict_recursion(self):
        ref = "- name: d\n  ansible.builtin.uri:\n    url: http://x\n    headers:\n      Accept: json\n      X-Id: '1'\n"
        pred = "- name: d\n  ansible.builtin.uri:\n    url: http://x\n    headers:\n      Accept: json\n"
        score = ansible_aware(ref, pred)
        assert 50.0 < score < 100.0


class TestPlaybookScoring:
    def test_playbook_identity(self, fig1_text):
        assert ansible_aware(fig1_text, fig1_text) == 100.0

    def test_playbook_wrong_hosts(self, fig1_text):
        wrong = fig1_text.replace("hosts: servers", "hosts: all")
        score = ansible_aware(fig1_text, wrong)
        assert 50.0 < score < 100.0

    def test_playbook_missing_task(self, fig1_text):
        truncated = fig1_text.split("    - name: Start SSH server")[0]
        score = ansible_aware(fig1_text, truncated)
        assert 0.0 < score < 100.0

    def test_task_list_vs_playbook_mismatch(self, fig1_text):
        assert ansible_aware(fig1_text, REF_TASK) < 100.0


class TestHelpers:
    def test_task_score_non_dict_prediction(self):
        assert task_score({"apt": {"name": "x"}}, "not a dict") == 0.0

    def test_snippet_score_empty_target_list(self):
        assert snippet_score([], []) == 1.0

    def test_average(self):
        assert average_ansible_aware([REF_TASK, REF_TASK], [REF_TASK, "]bad["]) == pytest.approx(50.0)

    def test_average_length_mismatch(self):
        with pytest.raises(ValueError):
            average_ansible_aware([REF_TASK], [])

    def test_name_only_task_scores_full(self):
        assert ansible_aware("- name: only\n", "- name: whatever\n") == 100.0
