"""Fleet-scale chaos: kill a replica mid-decode, assert nothing is lost.

The marquee scenario of the fleet tier: a seeded fault schedule crashes
one of N replicas while its continuous batcher holds live rows.  The
invariants, asserted under every seed tried:

* every submitted request terminates in exactly one of the four PR 5
  outcomes (completed / cancelled / deadline_exceeded / shed) — replica
  death surfaces as a failover and a completion, never a hang or an
  untyped error;
* zero KV-arena bytes remain in use on ANY replica afterwards — the
  crashed replica aborted its rows (freeing slabs), the survivors drained
  normally;
* the whole run — fault schedule, routing decisions, outcomes, event
  order — replays byte-identically from the seed.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import WorkerCrashed
from repro.faults import FakeClock, FaultInjector, use
from repro.fleet import OUTCOMES, build_chaos_fleet, run_fleet_chaos

pytestmark = [pytest.mark.faults, pytest.mark.fleet]


class TestKillMidDecode:
    def test_replica_death_fails_over_and_leaks_nothing(self):
        result = run_fleet_chaos(seed=1)
        # the kill fired while the victim's batcher held live rows
        assert result["crashed"], "no replica crashed; the schedule is mistuned"
        assert result["stats"]["failovers"] >= 1
        # four-outcome invariant over every submitted request
        assert set(result["outcomes"].values()) <= set(OUTCOMES)
        assert len(result["outcomes"]) == 24
        # no KV byte left behind on any replica, dead or alive
        assert all(leak == 0 for leak in result["leaked_bytes"].values())
        assert len(result["leaked_bytes"]) == 3

    def test_outcome_diversity_under_pressure(self):
        # seed 1 is chosen to exercise both abnormal paths: a mid-decode
        # crash (failover) AND a deadline expiry under injected slowness
        result = run_fleet_chaos(seed=1)
        counts = {key: 0 for key in OUTCOMES}
        for outcome in result["outcomes"].values():
            counts[outcome] += 1
        assert counts["completed"] > 0
        assert counts["deadline_exceeded"] > 0

    def test_both_death_detection_paths_occur(self):
        # dispatch-time detection (the crash) and heartbeat-deadline
        # detection (a wedged replica) are different code paths; across a
        # small seed range both must fire
        reasons = set()
        for seed in range(4):
            result = run_fleet_chaos(seed=seed)
            reasons.update(result["stats"]["dead_workers"].values())
        assert "dispatch_failed" in reasons
        assert "heartbeat_timeout" in reasons

    @pytest.mark.parametrize("seed", range(4))
    def test_invariants_across_seeds(self, seed):
        result = run_fleet_chaos(seed=seed)
        assert set(result["outcomes"].values()) <= set(OUTCOMES)
        assert all(leak == 0 for leak in result["leaked_bytes"].values())

    def test_no_kill_schedule_still_clean(self):
        result = run_fleet_chaos(seed=0, kill_decode_call=None, heartbeat_fault_rate=0.0)
        assert result["crashed"] == []
        assert set(result["outcomes"].values()) <= set(OUTCOMES)
        assert all(leak == 0 for leak in result["leaked_bytes"].values())


class TestReplay:
    def test_byte_identical_replay(self):
        first = run_fleet_chaos(seed=1)
        second = run_fleet_chaos(seed=1)
        assert first["log"] == second["log"]
        assert first["outcomes"] == second["outcomes"]

    def test_different_seeds_diverge(self):
        assert run_fleet_chaos(seed=0)["log"] != run_fleet_chaos(seed=1)["log"]

    def test_log_is_canonical_jsonl(self):
        result = run_fleet_chaos(seed=2)
        lines = result["log"].splitlines()
        assert len(lines) == len(result["events"])
        for line in lines:
            event = json.loads(line)
            assert list(event) == sorted(event)  # sort_keys canonical form
        summary = json.loads(lines[-1])
        assert summary["kind"] == "summary"
        assert sum(summary["outcomes"].values()) == summary["requests"]


class TestCrashMechanics:
    def test_worker_crashed_is_not_a_transient_fault(self):
        # WorkerCrashed must NOT be an InjectedFault: the batcher retries
        # InjectedFault decode steps, which would absorb the kill
        from repro.errors import InjectedFault

        assert not issubclass(WorkerCrashed, InjectedFault)

    def test_crash_aborts_inflight_and_frees_slabs(self):
        fake = FakeClock()
        injector = FaultInjector(seed=0)
        # crash the second decode step: rows are live in the batcher
        injector.on("engine.decode_step", at_calls=[2], error=WorkerCrashed)
        with use(fake), injector:
            router, workers = build_chaos_fleet(0, 1)
            worker = workers[0]
            from repro.errors import ServiceOverloadedError

            with pytest.raises(ServiceOverloadedError):
                # single replica dies -> fleet has nowhere to fail over
                router.predict("- name: Install nginx please\n", max_new_tokens=8)
            assert worker.crashes == 1
            assert not worker.alive
            assert worker.arena_bytes_in_use() == 0
            assert router.dead_worker_ids == ["w0"]

    def test_crash_with_survivor_completes_the_request(self):
        fake = FakeClock()
        injector = FaultInjector(seed=0)
        injector.on("engine.decode_step", at_calls=[2], error=WorkerCrashed)
        with use(fake), injector:
            router, workers = build_chaos_fleet(0, 2)
            payload = router.predict("- name: Install nginx please\n", max_new_tokens=8)
            assert payload["failovers"] == 1
            assert isinstance(payload["completion"], str)
            crashed = [worker for worker in workers if worker.crashes]
            assert len(crashed) == 1
            assert crashed[0].arena_bytes_in_use() == 0


def _audit(workers):
    """(leaked_bytes, orphaned_sessions) across every replica, dead or alive."""
    orphans = sum(worker.session_count() for worker in workers)
    for worker in workers:
        sessions = getattr(worker.service, "sessions", None)
        if sessions is not None:
            sessions.close_all()
        if worker.engine is not None and worker.engine.prefix_cache is not None:
            worker.engine.prefix_cache.clear()
    return sum(worker.arena_bytes_in_use() for worker in workers), orphans


@pytest.mark.streaming
class TestStreamChaos:
    """Streams killed mid-decode always land in one of the four outcomes,
    leak zero KV bytes, and orphan zero sessions."""

    PROMPT = "- name: Install nginx please\n"

    def test_replica_death_mid_stream_surfaces_in_band(self):
        # Crash after the stream has already delivered bytes: no failover
        # is possible (tokens flowed), so the stream must end with an
        # in-band error event and the replica must free everything.
        fake = FakeClock()
        injector = FaultInjector(seed=0)
        injector.on("engine.decode_step", at_calls=[3], error=WorkerCrashed)
        with use(fake), injector:
            router, workers = build_chaos_fleet(0, 2)
            events = list(router.predict_stream(self.PROMPT, max_new_tokens=8))
            kinds = [event for event, _ in events]
            assert kinds[-1] in ("done", "error")
            if kinds[-1] == "error":
                status = events[-1][1]["status"]
                assert status in (503, 504, 408)
            crashed = [worker for worker in workers if worker.crashes]
            assert len(crashed) == 1
            leaked, orphans = _audit(workers)
            assert leaked == 0
            assert orphans == 0

    def test_replica_death_before_first_event_fails_over(self):
        # Crash at the very first decode step: zero bytes have flowed, so
        # the router may transparently re-dispatch to the survivor.
        fake = FakeClock()
        injector = FaultInjector(seed=0)
        injector.on("engine.decode_step", at_calls=[1], error=WorkerCrashed)
        with use(fake), injector:
            router, workers = build_chaos_fleet(0, 2)
            events = list(router.predict_stream(self.PROMPT, max_new_tokens=8))
            done = [data for event, data in events if event == "done"]
            assert done, "stream did not complete despite a live survivor"
            assert done[0]["outcome"] == "completed"
            assert done[0].get("failovers", 0) == 1
            leaked, orphans = _audit(workers)
            assert leaked == 0
            assert orphans == 0

    def test_client_disconnect_cancels_and_frees(self):
        fake = FakeClock()
        with use(fake):
            router, workers = build_chaos_fleet(0, 2)
            stream = router.predict_stream(self.PROMPT, max_new_tokens=8)
            seen = 0
            for event, _data in stream:
                if event == "token":
                    seen += 1
                    if seen >= 2:
                        break
            stream.close()  # the dropped-socket path
            cancelled = sum(
                worker.engine.batcher.stats()["cancelled_requests"] for worker in workers
            )
            assert cancelled == 1
            leaked, orphans = _audit(workers)
            assert leaked == 0
            assert orphans == 0

    def test_session_owner_death_orphans_nothing(self):
        fake = FakeClock()
        with use(fake):
            router, workers = build_chaos_fleet(0, 2)
            created = router.session_create(self.PROMPT, max_new_tokens=6)
            owner = next(w for w in workers if w.worker_id == created["worker"])
            owner.kill()
            from repro.errors import SessionNotFoundError

            with pytest.raises(SessionNotFoundError):
                router.session_extend(
                    created["session_id"], self.PROMPT + "x\n", max_new_tokens=6
                )
            assert router.stats()["sessions_lost"] == 1
            leaked, orphans = _audit(workers)
            assert leaked == 0
            assert orphans == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_stream_run_invariants_across_seeds(self, seed):
        result = run_fleet_chaos(seed=seed, tracing=False, stream=True)
        assert set(result["outcomes"].values()) <= set(OUTCOMES)
        assert all(leak == 0 for leak in result["leaked_bytes"].values())
        assert all(count == 0 for count in result["orphaned_sessions"].values())

    def test_stream_run_replays_byte_identically(self):
        first = run_fleet_chaos(seed=1, tracing=False, stream=True)
        second = run_fleet_chaos(seed=1, tracing=False, stream=True)
        assert first["log"] == second["log"]
        summary = json.loads(first["log"].splitlines()[-1])
        assert summary["streams"] > 0
        assert summary["session_creates"] > 0

    def test_stream_flag_does_not_perturb_plain_runs(self):
        # The stream shape draws its own rng tail; plain replays recorded
        # before streaming existed must stay byte-identical.
        plain = run_fleet_chaos(seed=1, tracing=False)
        again = run_fleet_chaos(seed=1, tracing=False)
        assert plain["log"] == again["log"]
        assert "streams" not in json.loads(plain["log"].splitlines()[-1])
