"""Failure-injection tests: corrupted inputs must fail loudly, not quietly."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import CheckpointError, ReproError, ServingError, YamlError
from repro.model.checkpoints import load_checkpoint, save_checkpoint
from repro.model.lm import WisdomModel
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM


@pytest.fixture()
def saved_model(tiny_tokenizer, tiny_config, tmp_path):
    model = WisdomModel("victim", tiny_tokenizer, DecoderLM(tiny_config, numpy_rng(0)))
    path = tmp_path / "ckpt"
    save_checkpoint(model, path)
    return path


class TestCorruptedCheckpoints:
    def test_missing_weights_file(self, saved_model):
        (saved_model / "weights.npz").unlink()
        with pytest.raises((CheckpointError, FileNotFoundError)):
            load_checkpoint(saved_model)

    def test_truncated_weights_file(self, saved_model):
        weights = saved_model / "weights.npz"
        weights.write_bytes(weights.read_bytes()[:100])
        with pytest.raises(Exception):
            load_checkpoint(saved_model)

    def test_tampered_architecture(self, saved_model):
        config_file = saved_model / "config.json"
        metadata = json.loads(config_file.read_text())
        metadata["architecture"]["dim"] = 128  # no longer matches weights
        config_file.write_text(json.dumps(metadata))
        with pytest.raises(ReproError):
            load_checkpoint(saved_model)

    def test_corrupt_vocab_json(self, saved_model):
        (saved_model / "vocab.json").write_text("{not json")
        with pytest.raises((ValueError, json.JSONDecodeError)):
            load_checkpoint(saved_model)


class TestMalformedModelInput:
    def test_unknown_token_id_rejected(self, tiny_tokenizer, tiny_config):
        model = DecoderLM(tiny_config, numpy_rng(0))
        bad = np.array([[tiny_config.vocab_size + 5]], dtype=np.int64)
        with pytest.raises(ReproError):
            model.forward(bad, training=False)

    def test_yaml_error_hierarchy(self):
        """Every YAML failure is catchable as both YamlError and ReproError."""
        from repro import yamlio

        with pytest.raises(YamlError):
            yamlio.loads("a: [unclosed")
        with pytest.raises(ReproError):
            yamlio.loads("a: &anchor 1")


class TestServiceBadRequests:
    def test_service_rejects_non_string(self):
        from repro.serving import PredictionService

        class Stub:
            name = "stub"

            def complete(self, prompt, max_new_tokens=96):
                return "x"

        service = PredictionService(Stub())
        with pytest.raises(ServingError):
            service.predict(12345)  # type: ignore[arg-type]

    def test_http_malformed_json(self):
        import urllib.request

        from repro.serving import PredictionService, RestServer

        class Stub:
            name = "stub"

            def complete(self, prompt, max_new_tokens=96):
                return "x"

        with RestServer(PredictionService(Stub())) as server:
            request = urllib.request.Request(
                server.url + "/v1/completions",
                data=b"{broken",
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as error_info:
                urllib.request.urlopen(request, timeout=5)
            assert error_info.value.code == 400
