"""Tests for repro.tokenizer (vocab + BPE)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TokenizerError, VocabularyError
from repro.tokenizer.bpe import BpeTokenizer, pretokenize
from repro.tokenizer.special import END_OF_TEXT, PAD, SEPARATOR
from repro.tokenizer.vocab import N_BYTES, Vocabulary

CORPUS = [
    "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
    "- name: Start service\n  ansible.builtin.service:\n    name: nginx\n    state: started\n",
] * 20


@pytest.fixture(scope="module")
def tokenizer() -> BpeTokenizer:
    return BpeTokenizer.train(CORPUS, vocab_size=400)


class TestPretokenize:
    def test_spaces_kept_as_runs(self):
        assert pretokenize(b"    name") == [b"    ", b"name"]

    def test_newlines_separate(self):
        assert pretokenize(b"a\n\nb") == [b"a", b"\n\n", b"b"]

    def test_punctuation_grouped(self):
        assert pretokenize(b"a.b: c") == [b"a", b".", b"b", b":", b" ", b"c"]

    def test_digits_separate_from_letters(self):
        assert pretokenize(b"v1") == [b"v", b"1"]


class TestVocabulary:
    def test_layout(self):
        vocab = Vocabulary()
        assert vocab.size == N_BYTES + 3
        assert vocab.bytes_of(65) == b"A"
        assert vocab.special_id(SEPARATOR) == N_BYTES
        assert vocab.is_special(N_BYTES)
        assert not vocab.is_special(0)

    def test_add_merge(self):
        vocab = Vocabulary()
        token_id = vocab.add_merge(b"a", b"b")
        assert vocab.bytes_of(token_id) == b"ab"
        assert vocab.merge_rank((b"a", b"b")) == 0
        assert vocab.id_of_merge((b"a", b"b")) == token_id

    def test_duplicate_merge_rejected(self):
        vocab = Vocabulary()
        vocab.add_merge(b"a", b"b")
        with pytest.raises(VocabularyError):
            vocab.add_merge(b"a", b"b")

    def test_out_of_range_id(self):
        with pytest.raises(VocabularyError):
            Vocabulary().bytes_of(9999)

    def test_unknown_special(self):
        with pytest.raises(VocabularyError):
            Vocabulary().special_id("<|nope|>")

    def test_json_roundtrip(self):
        vocab = Vocabulary()
        vocab.add_merge(b"a", b"b")
        vocab.add_merge(b"ab", b"c")
        restored = Vocabulary.from_json(vocab.to_json())
        assert restored.merges == vocab.merges
        assert restored.size == vocab.size


class TestTraining:
    def test_vocab_size_respected(self, tokenizer):
        assert tokenizer.vocab_size <= 400

    def test_too_small_vocab_rejected(self):
        with pytest.raises(TokenizerError):
            BpeTokenizer.train(CORPUS, vocab_size=100)

    def test_merges_compress(self, tokenizer):
        text = CORPUS[0]
        ids = tokenizer.encode(text)
        assert len(ids) < len(text.encode("utf-8"))

    def test_frequent_word_single_token(self, tokenizer):
        ids = tokenizer.encode("nginx")
        assert len(ids) == 1


class TestEncodeDecode:
    def test_roundtrip_corpus(self, tokenizer):
        for text in CORPUS[:2]:
            assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_unseen_bytes_roundtrip(self, tokenizer):
        text = "никогда seen 漢字 \x01"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_special_tokens_mapped(self, tokenizer):
        ids = tokenizer.encode(f"a{SEPARATOR}b")
        assert tokenizer.separator_id in ids

    def test_special_tokens_skipped_on_decode(self, tokenizer):
        ids = tokenizer.encode(f"a{END_OF_TEXT}b")
        assert tokenizer.decode(ids) == "ab"
        assert tokenizer.decode(ids, skip_special=False) == f"a{END_OF_TEXT}b"

    def test_allow_special_false_encodes_literally(self, tokenizer):
        ids = tokenizer.encode(SEPARATOR, allow_special=False)
        assert tokenizer.separator_id not in ids
        assert tokenizer.decode(ids) == SEPARATOR

    def test_empty(self, tokenizer):
        assert tokenizer.encode("") == []
        assert tokenizer.decode([]) == ""

    def test_distinct_special_ids(self, tokenizer):
        assert len({tokenizer.separator_id, tokenizer.end_of_text_id, tokenizer.pad_id}) == 3
        assert PAD  # referenced

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=80))
    def test_roundtrip_property(self, tokenizer, text):
        assert tokenizer.decode(tokenizer.encode(text, allow_special=False)) == text

    def test_json_roundtrip_same_encoding(self, tokenizer):
        restored = BpeTokenizer.from_json(tokenizer.to_json())
        for text in CORPUS[:2]:
            assert restored.encode(text) == tokenizer.encode(text)

    def test_determinism(self):
        a = BpeTokenizer.train(CORPUS, vocab_size=350)
        b = BpeTokenizer.train(CORPUS, vocab_size=350)
        assert a.vocabulary.merges == b.vocabulary.merges
