"""Tests for repro.obs.export (Chrome trace JSON, Prometheus exposition).

Acceptance-pinned behaviour: the Chrome trace is valid JSON whose
intervals carry ``ph``/``ts``/``dur``/``name`` and share one coherent
timeline across tracer spans and profiled ops; the Prometheus exposition
parses line-by-line (``# TYPE`` headers, escaped label values) and
round-trips through :func:`parse_prometheus`.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.nn.layers import Linear
from repro.nn.parameter import numpy_rng
from repro.obs import MetricsRegistry, OpProfiler, Tracer
from repro.obs.export import (
    OP_TID,
    SPAN_TID,
    chrome_trace_events,
    escape_label_value,
    export_chrome_trace,
    format_sample,
    parse_prometheus,
    prometheus_exposition,
    sanitize_metric_name,
    unescape_label_value,
)
from repro.obs.profile import OpEvent
from repro.obs.trace import Span


class TestChromeTrace:
    def test_intervals_have_required_fields(self, tmp_path):
        spans = [Span("request", 1.0, 2.0, span_id=1, attrs={"tokens": 3})]
        ops = [OpEvent("Linear.forward", 1.1, 1.4, flops=64.0, bytes_moved=32.0)]
        path = tmp_path / "trace.json"
        written = export_chrome_trace(path, spans, ops)
        assert written == 2
        payload = json.loads(path.read_text())  # must be valid JSON
        intervals = [event for event in payload["traceEvents"] if event["ph"] == "X"]
        assert len(intervals) == 2
        for event in intervals:
            assert {"ph", "ts", "dur", "name", "pid", "tid"} <= set(event)

    def test_spans_and_ops_share_one_timeline(self):
        spans = [Span("decode", 10.0, 10.5, span_id=1)]
        ops = [OpEvent("Linear.forward", 10.1, 10.2, flops=1.0, bytes_moved=1.0)]
        events = chrome_trace_events(spans, ops)
        by_name = {event["name"]: event for event in events if event["ph"] == "X"}
        span, op = by_name["decode"], by_name["Linear.forward"]
        # same pid, perf_counter seconds -> microseconds on both lanes
        assert span["pid"] == op["pid"] == 0
        assert span["tid"] == SPAN_TID and op["tid"] == OP_TID
        assert span["ts"] == pytest.approx(10.0 * 1e6)
        assert op["ts"] == pytest.approx(10.1 * 1e6)
        assert span["ts"] <= op["ts"] <= op["ts"] + op["dur"] <= span["ts"] + span["dur"]
        assert op["args"] == {"flops": 1.0, "bytes_moved": 1.0}

    def test_metadata_names_process_and_lanes(self):
        events = chrome_trace_events([], [], process_name="bench")
        metadata = [event for event in events if event["ph"] == "M"]
        names = {event["args"]["name"] for event in metadata}
        assert names == {"bench", "spans", "ops"}

    def test_live_profile_exports_coherent_trace(self, tmp_path):
        tracer = Tracer()
        layer = Linear("proj", 4, 4, numpy_rng(0))
        profiler = OpProfiler().attach(layer)
        with tracer.span("step"):
            layer.forward(np.ones((1, 4), dtype=np.float32), training=False)
        profiler.detach()
        path = tmp_path / "trace.json"
        export_chrome_trace(path, tracer.spans(), profiler.events())
        payload = json.loads(path.read_text())
        by_name = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        step, op = by_name["step"], by_name["Linear.forward"]
        # the op interval actually happened inside the span interval
        assert step["ts"] <= op["ts"]
        assert op["ts"] + op["dur"] <= step["ts"] + step["dur"] + 1.0  # 1us slack


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "value",
        ['plain', 'with "quotes"', "back\\slash", "new\nline", 'all\\"of\nit\\'],
    )
    def test_escape_round_trip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    def test_escaped_sample_parses_back(self):
        line = format_sample("m", {"path": 'a\\b "c"\nd'}, 1.0)
        parsed = parse_prometheus("# TYPE m gauge\n" + line + "\n")
        ((_, labels, value),) = parsed["m"]["samples"]
        assert labels == {"path": 'a\\b "c"\nd'}
        assert value == 1.0

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("engine.decode_s") == "engine_decode_s"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestPrometheusExposition:
    def build_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("engine.requests").inc(3)
        registry.gauge("training.learning_rate").set(0.001)
        histogram = registry.histogram("engine.decode_s", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        return registry

    def test_round_trip_parses_every_line(self):
        text = prometheus_exposition(self.build_registry())
        assert text.endswith("\n")
        parsed = parse_prometheus(text)  # raises on any unparseable line
        assert parsed["engine_requests_total"]["type"] == "counter"
        assert parsed["engine_requests_total"]["samples"] == [
            ("engine_requests_total", {}, 3.0)
        ]
        assert parsed["training_learning_rate"]["type"] == "gauge"
        assert parsed["engine_decode_s"]["type"] == "histogram"

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = prometheus_exposition(self.build_registry())
        parsed = parse_prometheus(text)
        samples = parsed["engine_decode_s"]["samples"]
        buckets = [s for s in samples if s[0] == "engine_decode_s_bucket"]
        uppers = [s[1]["le"] for s in buckets]
        counts = [s[2] for s in buckets]
        assert uppers == ["0.1", "1", "+Inf"]
        assert counts == [1.0, 2.0, 3.0]  # cumulative, not per-bucket
        by_name = {s[0]: s[2] for s in samples}
        assert by_name["engine_decode_s_count"] == 3.0
        assert by_name["engine_decode_s_sum"] == pytest.approx(5.55)

    def test_type_headers_present(self):
        text = prometheus_exposition(self.build_registry())
        assert "# TYPE engine_requests_total counter" in text
        assert "# TYPE training_learning_rate gauge" in text
        assert "# TYPE engine_decode_s histogram" in text

    def test_empty_registry_exposes_nothing(self):
        assert prometheus_exposition(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_inf_values_round_trip(self):
        parsed = parse_prometheus('m_bucket{le="+Inf"} 4\n')
        ((_, labels, _),) = parsed["m_bucket"]["samples"]
        assert labels == {"le": "+Inf"}
        assert parse_prometheus("m -Inf\n")["m"]["samples"][0][2] == -math.inf

    def test_garbage_line_raises(self):
        with pytest.raises(ObservabilityError, match="line 2"):
            parse_prometheus("m 1\nnot a sample line at all !!!\n")
