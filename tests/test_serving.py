"""Tests for repro.serving (cache, service, HTTP client/server, plugin)."""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving.cache import LruCache
from repro.serving.client import PredictionClient
from repro.serving.plugin import ESCAPE, EditorSession, TAB
from repro.serving.service import PredictionService, RestServer


class _StubCompleter:
    name = "stub"

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, max_new_tokens=96):
        self.calls += 1
        return "  ansible.builtin.apt:\n    name: nginx\n    state: present\n"


class TestLruCache:
    def test_hit_and_miss_accounting(self):
        cache = LruCache(4)
        assert cache.get("a") is None
        cache.put("a", "1")
        assert cache.get("a") == "1"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_order(self):
        cache = LruCache(2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.get("a")  # refresh a
        cache.put("c", "3")  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "1"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_overwrite(self):
        cache = LruCache(2)
        cache.put("a", "1")
        cache.put("a", "2")
        assert cache.get("a") == "2"
        assert len(cache) == 1


class TestPredictionService:
    def test_predict_and_cache(self):
        completer = _StubCompleter()
        service = PredictionService(completer)
        first = service.predict("- name: install nginx\n")
        second = service.predict("- name: install nginx\n")
        assert not first["cached"] and second["cached"]
        assert completer.calls == 1
        assert first["completion"] == second["completion"]

    def test_empty_prompt_rejected(self):
        service = PredictionService(_StubCompleter())
        with pytest.raises(ServingError):
            service.predict("   ")

    def test_stats(self):
        service = PredictionService(_StubCompleter())
        service.predict("- name: a\n")
        service.predict("- name: a\n")
        stats = service.stats()
        assert stats["requests"] == 2
        assert stats["cache_hit_rate"] == 0.5
        assert stats["mean_latency_ms"] >= 0

    def test_health(self):
        assert PredictionService(_StubCompleter()).health() == {"status": "ok", "model": "stub"}


class TestRestRoundTrip:
    def test_http_completion_flow(self):
        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            assert client.health()["status"] == "ok"
            completion = client.complete("- name: install nginx\n")
            assert "ansible.builtin.apt" in completion
            payload = client.predict("- name: install nginx\n")
            assert payload["cached"] is True
            assert client.stats()["requests"] == 2

    def test_http_error_mapped(self):
        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            with pytest.raises(ServingError):
                client.complete("   ")

    def test_unknown_path_404(self):
        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            with pytest.raises(ServingError):
                client._request("GET", "/nope")

    def test_unreachable_server(self):
        client = PredictionClient("http://127.0.0.1:1", timeout=0.3)
        with pytest.raises(ServingError):
            client.health()


class TestEditorPlugin:
    def make_session(self):
        return EditorSession(backend=PredictionService(_StubCompleter()))

    def test_accept_flow(self):
        session = self.make_session()
        session.type_text("- name: install nginx on RHEL")
        suggestion = session.press_enter()
        assert "apt" in suggestion.text
        buffer = session.press(TAB)
        assert "state: present" in buffer
        assert session.accepted == 1
        assert session.acceptance_rate == 1.0

    def test_reject_flow(self):
        session = self.make_session()
        session.type_text("- name: install nginx")
        session.press_enter()
        buffer = session.press(ESCAPE)
        assert "apt" not in buffer
        assert session.rejected == 1

    def test_enter_requires_name_line(self):
        session = self.make_session()
        session.type_text("tasks:")
        with pytest.raises(ServingError):
            session.press_enter()

    def test_double_enter_rejected(self):
        session = self.make_session()
        session.type_text("- name: x")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press_enter()

    def test_key_without_pending(self):
        session = self.make_session()
        with pytest.raises(ServingError):
            session.press(TAB)

    def test_unknown_key(self):
        session = self.make_session()
        session.type_text("- name: x")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press("space")

    def test_buffer_stays_valid_yaml_after_accept(self):
        from repro import yamlio

        session = self.make_session()
        session.type_text("- name: install nginx")
        session.press_enter()
        session.press(TAB)
        assert yamlio.is_valid(session.buffer)
