"""Tests for repro.serving (cache, service, HTTP client/server, plugin)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServingError
from repro.serving.cache import LruCache
from repro.serving.client import PredictionClient
from repro.serving.plugin import ESCAPE, EditorSession, TAB
from repro.serving.service import PredictionService, RestServer


class _StubCompleter:
    name = "stub"

    def __init__(self, delay: float = 0.0):
        self.calls = 0
        self.delay = delay
        self._lock = threading.Lock()

    def complete(self, prompt, max_new_tokens=96):
        with self._lock:
            self.calls += 1
        if self.delay:
            import time

            time.sleep(self.delay)
        return "  ansible.builtin.apt:\n    name: nginx\n    state: present\n"


class TestLruCache:
    def test_hit_and_miss_accounting(self):
        cache = LruCache(4)
        assert cache.get("a") is None
        cache.put("a", "1")
        assert cache.get("a") == "1"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_order(self):
        cache = LruCache(2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.get("a")  # refresh a
        cache.put("c", "3")  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "1"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_overwrite(self):
        cache = LruCache(2)
        cache.put("a", "1")
        cache.put("a", "2")
        assert cache.get("a") == "2"
        assert len(cache) == 1

    def test_stats_dict(self):
        cache = LruCache(2)
        cache.get("a")
        cache.put("a", "1")
        cache.get("a")
        cache.put("b", "2")
        cache.put("c", "3")  # evicts one entry
        stats = cache.stats()
        assert stats == {
            "size": 2,
            "capacity": 2,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "hit_rate": 0.5,
        }

    def test_concurrent_access_accounting(self):
        # hits/misses are updated under the cache's own lock: hammering it
        # from many threads must not lose counts.
        cache = LruCache(64)
        cache.put("k", "v")
        per_thread = 200
        threads = [
            threading.Thread(
                target=lambda: [cache.get("k") for _ in range(per_thread)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.hits == 8 * per_thread
        assert cache.stats()["hit_rate"] == 1.0


class TestCounterResetSemantics:
    """clear() reclaims entries; lifetime counters never move backwards."""

    def test_clear_preserves_lifetime_counters(self):
        cache = LruCache(4)
        cache.get("a")  # miss
        cache.put("a", "1")
        cache.get("a")  # hit
        cache.put("b", "2")
        before = cache.stats()
        cache.clear()
        after = cache.stats()
        assert len(cache) == 0 and after["size"] == 0
        assert cache.get("a") is None  # entries really are gone
        for key in ("hits", "misses", "evictions"):
            assert after[key] >= before[key], f"{key} went backwards on clear"
        assert after["hits"] == before["hits"]
        assert after["evictions"] == before["evictions"]

    def test_counters_stay_monotonic_across_clears(self):
        cache = LruCache(2)
        observed = []
        for round_index in range(3):
            cache.put("k", str(round_index))
            cache.get("k")
            cache.get("absent")
            observed.append((cache.hits, cache.misses))
            cache.clear()
        for earlier, later in zip(observed, observed[1:]):
            assert later[0] > earlier[0]
            assert later[1] > earlier[1]

    def test_clear_does_not_count_as_eviction(self):
        cache = LruCache(2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.clear()
        assert cache.evictions == 0


class TestPredictionService:
    def test_predict_and_cache(self):
        completer = _StubCompleter()
        service = PredictionService(completer)
        first = service.predict("- name: install nginx\n")
        second = service.predict("- name: install nginx\n")
        assert not first["cached"] and second["cached"]
        assert completer.calls == 1
        assert first["completion"] == second["completion"]

    def test_empty_prompt_rejected(self):
        service = PredictionService(_StubCompleter())
        with pytest.raises(ServingError):
            service.predict("   ")

    def test_stats(self):
        service = PredictionService(_StubCompleter())
        service.predict("- name: a\n")
        service.predict("- name: a\n")
        stats = service.stats()
        assert stats["requests"] == 2
        assert stats["cache_hit_rate"] == 0.5
        assert stats["mean_latency_ms"] >= 0

    def test_health(self):
        assert PredictionService(_StubCompleter()).health() == {"status": "ok", "model": "stub"}


class TestRequestCoalescing:
    def test_concurrent_identical_prompts_run_generation_once(self):
        # The thundering-herd case: both requests miss the cache, but only
        # the first may invoke the completer; the second waits and reuses
        # the in-flight result.
        completer = _StubCompleter(delay=0.2)
        service = PredictionService(completer)
        results = []

        def hit():
            results.append(service.predict("- name: install nginx\n"))

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert completer.calls == 1
        assert len(results) == 4
        assert len({result["completion"] for result in results}) == 1
        coalesced = [result for result in results if result.get("coalesced")]
        assert len(coalesced) == 3
        assert all(result["cached"] for result in coalesced)
        assert service.stats()["coalesced_requests"] == 3

    def test_distinct_prompts_not_coalesced(self):
        completer = _StubCompleter(delay=0.05)
        service = PredictionService(completer)
        results = {}

        def hit(prompt):
            results[prompt] = service.predict(prompt)

        threads = [
            threading.Thread(target=hit, args=(f"- name: task {i}\n",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert completer.calls == 3
        assert not any(result.get("coalesced") for result in results.values())

    def test_owner_failure_propagates_to_waiters(self):
        class _Exploding:
            name = "boom"

            def __init__(self):
                self.started = threading.Event()

            def complete(self, prompt, max_new_tokens=96):
                self.started.set()
                import time

                time.sleep(0.1)
                raise ServingError("model fell over")

        completer = _Exploding()
        service = PredictionService(completer)
        errors = []

        def owner():
            try:
                service.predict("- name: x\n")
            except ServingError as error:
                errors.append(("owner", error))

        def waiter():
            completer.started.wait()
            try:
                service.predict("- name: x\n")
            except ServingError as error:
                errors.append(("waiter", error))

        threads = [threading.Thread(target=owner), threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert {source for source, _ in errors} == {"owner", "waiter"}
        # the failure must not be cached
        assert service.cache.get("- name: x\n") is None


class TestBatchPrediction:
    def test_sequential_fallback_without_engine(self):
        completer = _StubCompleter()
        service = PredictionService(completer)
        result = service.predict_batch(["- name: a\n", "- name: b\n", "- name: a\n"])
        assert len(result["completions"]) == 3
        assert completer.calls == 2  # duplicate prompt decoded once
        assert result["decoded"] == 2
        assert result["batch_size"] == 3

    def test_cache_hits_skip_decoding(self):
        completer = _StubCompleter()
        service = PredictionService(completer)
        service.predict("- name: a\n")
        result = service.predict_batch(["- name: a\n", "- name: b\n"])
        assert result["cached"] == [True, False]
        assert completer.calls == 2

    def test_engine_path_used_when_attached(self):
        class _StubEngine:
            def __init__(self):
                self.batches = []

            def complete_batch(self, prompts, max_new_tokens=None):
                self.batches.append(list(prompts))
                return [f"done:{prompt}" for prompt in prompts]

            def stats(self):
                return {"queue_depth": 0}

        engine = _StubEngine()
        completer = _StubCompleter()
        service = PredictionService(completer, engine=engine)
        result = service.predict_batch(["- name: a\n", "- name: b\n"])
        assert completer.calls == 0
        assert engine.batches == [["- name: a\n", "- name: b\n"]]
        assert result["completions"] == ["done:- name: a\n", "done:- name: b\n"]
        assert service.stats()["engine"] == {"queue_depth": 0}

    def test_empty_batch_rejected(self):
        service = PredictionService(_StubCompleter())
        with pytest.raises(ServingError):
            service.predict_batch([])
        with pytest.raises(ServingError):
            service.predict_batch(["- name: a\n", "   "])


class TestRestRoundTrip:
    def test_http_completion_flow(self):
        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            assert client.health()["status"] == "ok"
            completion = client.complete("- name: install nginx\n")
            assert "ansible.builtin.apt" in completion
            payload = client.predict("- name: install nginx\n")
            assert payload["cached"] is True
            assert client.stats()["requests"] == 2

    def test_http_error_mapped(self):
        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            with pytest.raises(ServingError):
                client.complete("   ")

    def test_http_batch_completions(self):
        completer = _StubCompleter()
        service = PredictionService(completer)
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            payload = client.predict_batch(["- name: a\n", "- name: b\n"])
            assert payload["batch_size"] == 2
            assert payload["cached"] == [False, False]
            assert len(payload["completions"]) == 2
            # second round is fully cached
            again = client.predict_batch(["- name: a\n", "- name: b\n"])
            assert again["cached"] == [True, True]
            assert completer.calls == 2
            completions = client.complete_batch(["- name: a\n"])
            assert "ansible.builtin.apt" in completions[0]
            stats = client.stats()
            assert stats["batch_requests"] == 3

    def test_http_batch_validation_error(self):
        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            with pytest.raises(ServingError):
                client.predict_batch([])
            with pytest.raises(ServingError):
                client.predict_batch(["ok", "   "])

    def test_http_stats_include_engine_section(self, tiny_tokenizer, tiny_network):
        from repro.model.lm import WisdomModel

        model = WisdomModel("test", tiny_tokenizer, tiny_network)
        engine = model.engine(max_batch_size=4)
        service = PredictionService(model, engine=engine)
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            payload = client.predict_batch(["- name: install nginx\n"], max_new_tokens=4)
            assert payload["decoded"] == 1
            stats = client.stats()
            engine_stats = stats["engine"]
            assert engine_stats["queue_depth"] == 0
            assert engine_stats["completed_requests"] >= 1
            assert "mean_batch_occupancy" in engine_stats
            assert "hits" in engine_stats["prefix_cache"]
            assert engine_stats["prefill_tokens"] > 0

    def test_http_metrics_prometheus(self):
        from repro.obs.export import parse_prometheus

        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            client.complete("- name: install nginx\n")
            text = client.metrics_prometheus()
        parsed = parse_prometheus(text)  # raises on any unparseable line
        assert "# TYPE serving_requests_total counter" in text
        assert parsed["serving_requests_total"]["samples"][0][2] == 1.0
        assert parsed["serving_completions_s"]["type"] == "histogram"
        buckets = [s for s in parsed["serving_completions_s"]["samples"]
                   if s[0] == "serving_completions_s_bucket"]
        assert buckets[-1][1]["le"] == "+Inf"

    def test_http_metrics_json_default_and_bad_format(self):
        import json as json_module
        import urllib.request

        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            with urllib.request.urlopen(f"{server.url}/v1/metrics") as response:
                payload = json_module.loads(response.read())
            assert "counters" in payload["metrics"]
            with pytest.raises(urllib.error.HTTPError) as error_info:
                urllib.request.urlopen(f"{server.url}/v1/metrics?format=xml")
            assert error_info.value.code == 400

    def test_unknown_path_404(self):
        service = PredictionService(_StubCompleter())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            with pytest.raises(ServingError):
                client._request("GET", "/nope")

    def test_unreachable_server(self):
        client = PredictionClient("http://127.0.0.1:1", timeout=0.3)
        with pytest.raises(ServingError):
            client.health()


class TestEditorPlugin:
    def make_session(self):
        return EditorSession(backend=PredictionService(_StubCompleter()))

    def test_accept_flow(self):
        session = self.make_session()
        session.type_text("- name: install nginx on RHEL")
        suggestion = session.press_enter()
        assert "apt" in suggestion.text
        buffer = session.press(TAB)
        assert "state: present" in buffer
        assert session.accepted == 1
        assert session.acceptance_rate == 1.0

    def test_reject_flow(self):
        session = self.make_session()
        session.type_text("- name: install nginx")
        session.press_enter()
        buffer = session.press(ESCAPE)
        assert "apt" not in buffer
        assert session.rejected == 1

    def test_enter_requires_name_line(self):
        session = self.make_session()
        session.type_text("tasks:")
        with pytest.raises(ServingError):
            session.press_enter()

    def test_double_enter_rejected(self):
        session = self.make_session()
        session.type_text("- name: x")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press_enter()

    def test_key_without_pending(self):
        session = self.make_session()
        with pytest.raises(ServingError):
            session.press(TAB)

    def test_unknown_key(self):
        session = self.make_session()
        session.type_text("- name: x")
        session.press_enter()
        with pytest.raises(ServingError):
            session.press("space")

    def test_buffer_stays_valid_yaml_after_accept(self):
        from repro import yamlio

        session = self.make_session()
        session.type_text("- name: install nginx")
        session.press_enter()
        session.press(TAB)
        assert yamlio.is_valid(session.buffer)


class TestClientEndpointFailover:
    """Satellite: the client rotates to the next replica on dead endpoints."""

    def serve_stub(self):
        return RestServer(PredictionService(_StubCompleter()))

    def test_failover_to_live_endpoint_without_sleeping(self):
        slept: list[float] = []
        with self.serve_stub() as server:
            client = PredictionClient(
                ["http://127.0.0.1:1", server.url], sleep=slept.append
            )
            completion = client.complete("- name: install nginx\n")
            assert "ansible.builtin.apt" in completion
            assert client.failovers == 1
            assert client.retries == 0
            assert slept == []  # rotation is free; only full sweeps back off

    def test_sticky_on_the_endpoint_that_answered(self):
        with self.serve_stub() as server:
            client = PredictionClient(["http://127.0.0.1:1", server.url])
            client.complete("- name: install nginx\n")
            assert client.base_url == server.url
            client.complete("- name: install redis\n")
            assert client.failovers == 1  # second call went straight there

    def test_all_dead_without_policy_raises_after_one_sweep(self):
        client = PredictionClient(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        with pytest.raises(ServingError):
            client.health()
        assert client.failovers == 1  # one rotation, then the sweep was over

    def test_all_dead_with_policy_backs_off_between_sweeps(self):
        from repro.serving.client import RetryPolicy

        slept: list[float] = []
        client = PredictionClient(
            ["http://127.0.0.1:1", "http://127.0.0.1:2"],
            retry_policy=RetryPolicy(max_retries=2, seed=11),
            sleep=slept.append,
        )
        with pytest.raises(ServingError):
            client.health()
        assert len(slept) == 2  # one backoff per failed sweep
        assert client.retries == 2

    def test_seeded_backoff_schedule_is_reproducible(self):
        from repro.serving.client import RetryPolicy

        def sweep(seed: int) -> list[float]:
            slept: list[float] = []
            client = PredictionClient(
                ["http://127.0.0.1:1", "http://127.0.0.1:2"],
                retry_policy=RetryPolicy(max_retries=3, seed=seed),
                sleep=slept.append,
            )
            with pytest.raises(ServingError):
                client.health()
            return slept

        # same seed, same jittered schedule; different seed diverges
        assert sweep(5) == sweep(5)
        assert sweep(5) != sweep(6)

    def test_single_endpoint_behaviour_unchanged(self):
        client = PredictionClient("http://127.0.0.1:1")
        with pytest.raises(ServingError):
            client.health()
        assert client.failovers == 0
        assert client.base_urls == ["http://127.0.0.1:1"]

    def test_empty_endpoint_list_rejected(self):
        with pytest.raises(ServingError):
            PredictionClient([])

    def test_http_errors_do_not_rotate(self):
        # a 503 is the service answering, not a dead endpoint: the client
        # must stay on it (and honour Retry-After) rather than failing over
        completer = _StubCompleter()
        service = PredictionService(completer, max_queue_depth=1)
        assert service._try_admit()  # saturate the only slot
        with RestServer(service) as server:
            client = PredictionClient([server.url, "http://127.0.0.1:1"])
            from repro.errors import ServiceOverloadedError

            with pytest.raises(ServiceOverloadedError):
                client.complete("- name: install nginx\n")
            assert client.failovers == 0
