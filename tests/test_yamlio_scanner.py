"""Tests for repro.yamlio.scanner."""

from __future__ import annotations

import pytest

from repro.errors import YamlScanError
from repro.yamlio.scanner import Line, scan_lines, split_key_value, strip_comment


class TestStripComment:
    def test_plain_comment(self):
        assert strip_comment("name: web  # note") == "name: web"

    def test_hash_without_space_is_not_comment(self):
        assert strip_comment("channel: stable#5") == "channel: stable#5"

    def test_hash_inside_single_quotes(self):
        assert strip_comment("msg: 'a # b'") == "msg: 'a # b'"

    def test_hash_inside_double_quotes(self):
        assert strip_comment('msg: "a # b"') == 'msg: "a # b"'

    def test_full_line_comment(self):
        assert strip_comment("# whole line") == ""

    def test_escaped_quote_in_double(self):
        assert strip_comment('msg: "a \\" # b" # real') == 'msg: "a \\" # b"'

    def test_doubled_single_quote(self):
        assert strip_comment("msg: 'it''s # here'") == "msg: 'it''s # here'"

    def test_unterminated_quote_raises(self):
        with pytest.raises(YamlScanError):
            strip_comment("msg: 'open", line_number=3)


class TestScanLines:
    def test_basic_records(self):
        lines = scan_lines("a: 1\n  b: 2\n")
        assert lines == [
            Line(1, 0, "a: 1", "a: 1"),
            Line(2, 2, "b: 2", "  b: 2"),
        ]

    def test_blank_and_comment_lines_dropped(self):
        lines = scan_lines("a: 1\n\n# comment\nb: 2\n")
        assert [line.content for line in lines] == ["a: 1", "b: 2"]
        assert [line.number for line in lines] == [1, 4]

    def test_tab_indentation_rejected(self):
        with pytest.raises(YamlScanError):
            scan_lines("a:\n\tb: 1\n")

    def test_trailing_whitespace_stripped(self):
        lines = scan_lines("a: 1   \n")
        assert lines[0].content == "a: 1"

    def test_comment_only_after_strip_dropped(self):
        assert scan_lines("   # only comment\n") == []


class TestSplitKeyValue:
    def test_simple(self):
        assert split_key_value("name: install nginx") == ("name", "install nginx")

    def test_empty_value(self):
        assert split_key_value("tasks:") == ("tasks", "")

    def test_url_not_split(self):
        assert split_key_value("http://host:80/x") is None

    def test_url_value(self):
        assert split_key_value("url: http://host:80/x") == ("url", "http://host:80/x")

    def test_colon_inside_quotes_skipped(self):
        assert split_key_value("'a: b': c") == ("'a: b'", "c")

    def test_colon_inside_flow_skipped(self):
        assert split_key_value("args: {chdir: /tmp}") == ("args", "{chdir: /tmp}")

    def test_no_colon(self):
        assert split_key_value("plain scalar") is None

    def test_jinja_value(self):
        assert split_key_value("when: x == 'y'") == ("when", "x == 'y'")
