"""Tests for repro.yamlio.flow."""

from __future__ import annotations

import pytest

from repro.errors import YamlParseError
from repro.yamlio.flow import is_flow_start, parse_flow


class TestFlowSequences:
    def test_empty(self):
        assert parse_flow("[]") == []

    def test_scalars(self):
        assert parse_flow("[1, two, 3.5, true, null]") == [1, "two", 3.5, True, None]

    def test_nested(self):
        assert parse_flow("[[1, 2], [3]]") == [[1, 2], [3]]

    def test_trailing_comma(self):
        assert parse_flow("[1, 2,]") == [1, 2]

    def test_quoted_items(self):
        assert parse_flow("['a, b', \"c: d\"]") == ["a, b", "c: d"]

    def test_unterminated(self):
        with pytest.raises(YamlParseError):
            parse_flow("[1, 2")


class TestFlowMappings:
    def test_empty(self):
        assert parse_flow("{}") == {}

    def test_basic(self):
        assert parse_flow("{name: web, port: 80}") == {"name": "web", "port": 80}

    def test_nested(self):
        assert parse_flow("{a: {b: 1}, c: [2]}") == {"a": {"b": 1}, "c": [2]}

    def test_key_without_value(self):
        assert parse_flow("{flag}") == {"flag": None}

    def test_quoted_value_with_comma(self):
        assert parse_flow("{msg: 'a, b'}") == {"msg": "a, b"}

    def test_bad_separator(self):
        with pytest.raises(YamlParseError):
            parse_flow("{a: 1; b: 2}")

    def test_trailing_garbage(self):
        with pytest.raises(YamlParseError):
            parse_flow("{a: 1} extra")


class TestIsFlowStart:
    @pytest.mark.parametrize("text,expected", [("[1]", True), ("{a: 1}", True), ("plain", False), ("", False)])
    def test_detection(self, text, expected):
        assert is_flow_start(text) is expected


class TestPyYamlOracle:
    """Cross-check flow parsing against PyYAML on shared-subset inputs."""

    @pytest.mark.parametrize(
        "text",
        [
            "[1, 2, three]",
            "{name: web, port: 80}",
            "[{a: 1}, {b: [2, 3]}]",
            "{outer: {inner: [yes, no]}}",
            "['quoted, item', plain]",
        ],
    )
    def test_matches_pyyaml(self, text):
        import yaml as pyyaml

        assert parse_flow(text) == pyyaml.safe_load(text)
