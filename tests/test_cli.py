"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro import yamlio
from repro.cli import build_parser, main
from repro.model import save_checkpoint
from repro.model.lm import WisdomModel
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory, tiny_tokenizer, tiny_config):
    model = WisdomModel("cli-model", tiny_tokenizer, DecoderLM(tiny_config, numpy_rng(0)))
    path = tmp_path_factory.mktemp("cli") / "model"
    save_checkpoint(model, path)
    return str(path)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("train", "generate", "evaluate", "serve", "score", "synthesize", "obs", "profile"):
            args = None
            try:
                args = parser.parse_args([command, "--help"])
            except SystemExit as exit_info:
                assert exit_info.code == 0
            assert args is None

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerate:
    def test_generate_prints_prompt_and_completion(self, checkpoint_dir, capsys):
        code = main(["generate", "--model", checkpoint_dir, "--prompt", "Install nginx", "--max-new-tokens", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("- name: Install nginx\n")

    def test_generate_accepts_full_name_line(self, checkpoint_dir, capsys):
        main(["generate", "--model", checkpoint_dir, "--prompt", "- name: do it", "--max-new-tokens", "4"])
        out = capsys.readouterr().out
        assert out.startswith("- name: do it\n")


class TestScore:
    def test_score_outputs_json(self, tmp_path, capsys):
        reference = tmp_path / "ref.yml"
        prediction = tmp_path / "pred.yml"
        text = "- name: t\n  ansible.builtin.debug:\n    msg: hi\n"
        reference.write_text(text)
        prediction.write_text(text)
        code = main(["score", "--reference", str(reference), "--prediction", str(prediction)])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["exact_match"] is True
        assert result["bleu"] == 100.0
        assert result["schema_correct"] is True


class TestSynthesize:
    def test_synthesize_emits_valid_yaml(self, capsys):
        code = main(["synthesize", "--count", "2", "--kind", "tasks", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        documents = yamlio.loads_all(out)
        assert len(documents) == 2
        assert all(isinstance(document, list) for document in documents)

    def test_synthesize_playbook(self, capsys):
        main(["synthesize", "--kind", "playbook", "--seed", "2"])
        out = capsys.readouterr().out
        document = yamlio.loads(out)
        assert "hosts" in document[0]


class TestObs:
    @pytest.fixture()
    def span_dump(self, tmp_path):
        from repro.obs import Tracer

        tracer = Tracer()
        with tracer.span("engine.request", request_id=0):
            with tracer.span("engine.decode"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        return str(path)

    def test_spans_render_as_tree(self, span_dump, capsys):
        code = main(["obs", "--spans", span_dump])
        assert code == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("engine.request")
        assert lines[1].startswith("  engine.decode")

    def test_spans_json_output(self, span_dump, capsys):
        code = main(["obs", "--spans", span_dump, "--json"])
        assert code == 0
        spans = json.loads(capsys.readouterr().out)
        assert [span["name"] for span in spans] == ["engine.decode", "engine.request"]

    def test_url_fetches_metrics_snapshot(self, tiny_tokenizer, tiny_network, capsys):
        from repro.model.lm import WisdomModel
        from repro.serving.service import PredictionService, RestServer

        model = WisdomModel("cli-obs", tiny_tokenizer, tiny_network)
        service = PredictionService(model, engine=model.engine(max_batch_size=2))
        with RestServer(service) as server:
            service.predict("- name: install nginx\n", max_new_tokens=3)
            code = main(["obs", "--url", server.url])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving.requests" in out
        assert "tracing: enabled=False" in out

    def test_url_and_spans_mutually_exclusive(self, span_dump):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--url", "http://x", "--spans", span_dump])

    def test_corrupt_span_line_warns_but_renders(self, span_dump, capsys):
        with open(span_dump, "a", encoding="utf-8") as handle:
            handle.write('{"truncated')
        code = main(["obs", "--spans", span_dump])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("engine.request")
        assert "skipped 1 corrupt line(s)" in captured.err


class TestObsRunlog:
    @pytest.fixture()
    def runlog_pair(self, tmp_path):
        from repro.obs.runlog import RunLog

        paths = []
        for run_id, step_s in (("before", 0.2), ("after", 0.1)):
            path = tmp_path / f"{run_id}.jsonl"
            with RunLog(path, run_id=run_id) as log:
                for step in range(3):
                    log.log_step(step, 2.0 - 0.2 * step, grad_norm=1.0,
                                 learning_rate=1e-3, tokens=32, step_s=step_s)
                log.log_epoch(0, 1.8, steps=3)
            paths.append(str(path))
        return paths

    def test_runlog_renders_summary(self, runlog_pair, capsys):
        code = main(["obs", "--runlog", runlog_pair[0]])
        assert code == 0
        out = capsys.readouterr().out
        assert "run: before" in out
        assert "Epochs" in out

    def test_runlog_json_summary(self, runlog_pair, capsys):
        code = main(["obs", "--runlog", runlog_pair[0], "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["run_id"] == "before"
        assert summary["steps"] == 3

    def test_compare_two_runs(self, runlog_pair, capsys):
        code = main(["obs", "--runlog", runlog_pair[0], "--compare", runlog_pair[1]])
        assert code == 0
        out = capsys.readouterr().out
        assert "Run comparison" in out
        assert "2.000x" in out  # tokens/s doubled in the "after" run

    def test_compare_requires_runlog(self, runlog_pair, tmp_path, capsys):
        with pytest.raises(SystemExit):  # no source at all
            main(["obs", "--compare", runlog_pair[1]])
        capsys.readouterr()
        from repro.obs import Tracer

        dump = tmp_path / "spans.jsonl"
        Tracer().export_jsonl(dump)
        code = main(["obs", "--spans", str(dump), "--compare", runlog_pair[1]])
        assert code == 2
        assert "--compare requires --runlog" in capsys.readouterr().err


class TestProfile:
    BASE = ["profile", "--size", "350M", "--context", "16", "--vocab", "64",
            "--batch", "1", "--seq", "8"]

    def test_forward_mode_prints_hot_op_table(self, capsys):
        code = main(self.BASE + ["--mode", "forward"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Hot ops" in out
        assert "Linear.forward" in out
        assert "GFLOP/s" in out

    def test_backward_mode_includes_backward_ops(self, capsys):
        code = main(self.BASE + ["--mode", "backward"])
        assert code == 0
        assert "Linear.backward" in capsys.readouterr().out

    def test_generate_mode_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(self.BASE + ["--mode", "generate", "--new-tokens", "4",
                                 "--trace", str(trace)])
        assert code == 0
        payload = json.loads(trace.read_text())
        intervals = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert intervals
        names = {e["name"] for e in intervals}
        assert any(name.startswith("Linear.") for name in names)
        assert any(name.startswith("sampling.") for name in names)

    def test_json_snapshot(self, capsys):
        code = main(self.BASE + ["--mode", "forward", "--json"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["total_calls"] > 0
        assert snapshot["total_flops"] > 0
        assert any(op["name"] == "Linear.forward" for op in snapshot["ops"])
