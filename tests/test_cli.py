"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro import yamlio
from repro.cli import build_parser, main
from repro.model import save_checkpoint
from repro.model.lm import WisdomModel
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory, tiny_tokenizer, tiny_config):
    model = WisdomModel("cli-model", tiny_tokenizer, DecoderLM(tiny_config, numpy_rng(0)))
    path = tmp_path_factory.mktemp("cli") / "model"
    save_checkpoint(model, path)
    return str(path)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("train", "generate", "evaluate", "serve", "score", "synthesize", "obs"):
            args = None
            try:
                args = parser.parse_args([command, "--help"])
            except SystemExit as exit_info:
                assert exit_info.code == 0
            assert args is None

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerate:
    def test_generate_prints_prompt_and_completion(self, checkpoint_dir, capsys):
        code = main(["generate", "--model", checkpoint_dir, "--prompt", "Install nginx", "--max-new-tokens", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("- name: Install nginx\n")

    def test_generate_accepts_full_name_line(self, checkpoint_dir, capsys):
        main(["generate", "--model", checkpoint_dir, "--prompt", "- name: do it", "--max-new-tokens", "4"])
        out = capsys.readouterr().out
        assert out.startswith("- name: do it\n")


class TestScore:
    def test_score_outputs_json(self, tmp_path, capsys):
        reference = tmp_path / "ref.yml"
        prediction = tmp_path / "pred.yml"
        text = "- name: t\n  ansible.builtin.debug:\n    msg: hi\n"
        reference.write_text(text)
        prediction.write_text(text)
        code = main(["score", "--reference", str(reference), "--prediction", str(prediction)])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["exact_match"] is True
        assert result["bleu"] == 100.0
        assert result["schema_correct"] is True


class TestSynthesize:
    def test_synthesize_emits_valid_yaml(self, capsys):
        code = main(["synthesize", "--count", "2", "--kind", "tasks", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        documents = yamlio.loads_all(out)
        assert len(documents) == 2
        assert all(isinstance(document, list) for document in documents)

    def test_synthesize_playbook(self, capsys):
        main(["synthesize", "--kind", "playbook", "--seed", "2"])
        out = capsys.readouterr().out
        document = yamlio.loads(out)
        assert "hosts" in document[0]


class TestObs:
    @pytest.fixture()
    def span_dump(self, tmp_path):
        from repro.obs import Tracer

        tracer = Tracer()
        with tracer.span("engine.request", request_id=0):
            with tracer.span("engine.decode"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        return str(path)

    def test_spans_render_as_tree(self, span_dump, capsys):
        code = main(["obs", "--spans", span_dump])
        assert code == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("engine.request")
        assert lines[1].startswith("  engine.decode")

    def test_spans_json_output(self, span_dump, capsys):
        code = main(["obs", "--spans", span_dump, "--json"])
        assert code == 0
        spans = json.loads(capsys.readouterr().out)
        assert [span["name"] for span in spans] == ["engine.decode", "engine.request"]

    def test_url_fetches_metrics_snapshot(self, tiny_tokenizer, tiny_network, capsys):
        from repro.model.lm import WisdomModel
        from repro.serving.service import PredictionService, RestServer

        model = WisdomModel("cli-obs", tiny_tokenizer, tiny_network)
        service = PredictionService(model, engine=model.engine(max_batch_size=2))
        with RestServer(service) as server:
            service.predict("- name: install nginx\n", max_new_tokens=3)
            code = main(["obs", "--url", server.url])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving.requests" in out
        assert "tracing: enabled=False" in out

    def test_url_and_spans_mutually_exclusive(self, span_dump):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--url", "http://x", "--spans", span_dump])
