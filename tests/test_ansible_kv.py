"""Tests for repro.ansible.kv (legacy k=v argument parsing)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ansible.kv import RAW_PARAMS_KEY, looks_like_kv, parse_kv, render_kv
from repro.errors import FreeFormParseError


class TestParseKv:
    def test_basic(self):
        assert parse_kv("name=nginx state=present") == {"name": "nginx", "state": "present"}

    def test_types_resolved(self):
        assert parse_kv("update_cache=yes retries=3") == {"update_cache": True, "retries": 3}

    def test_quoted_value_with_spaces(self):
        assert parse_kv('line="PermitRootLogin no" path=/etc/ssh/sshd_config') == {
            "line": "PermitRootLogin no",
            "path": "/etc/ssh/sshd_config",
        }

    def test_single_quoted(self):
        assert parse_kv("msg='hello world'") == {"msg": "hello world"}

    def test_value_containing_equals(self):
        assert parse_kv("line=PermitRootLogin=no") == {"line": "PermitRootLogin=no"}

    def test_free_form_leading_text(self):
        assert parse_kv("echo hello chdir=/tmp", free_form=True) == {
            RAW_PARAMS_KEY: "echo hello",
            "chdir": "/tmp",
        }

    def test_free_form_pure_command(self):
        assert parse_kv("systemctl daemon-reload", free_form=True) == {
            RAW_PARAMS_KEY: "systemctl daemon-reload"
        }

    def test_non_kv_token_rejected_when_not_free_form(self):
        with pytest.raises(FreeFormParseError):
            parse_kv("echo hello chdir=/tmp", free_form=False)

    def test_unterminated_quote_rejected(self):
        with pytest.raises(FreeFormParseError):
            parse_kv("msg='open")

    def test_empty(self):
        assert parse_kv("") == {}


class TestRenderKv:
    def test_basic(self):
        assert render_kv({"name": "nginx", "state": "present"}) == "name=nginx state=present"

    def test_bool_rendered_as_yes_no(self):
        assert render_kv({"update_cache": True, "force": False}) == "update_cache=yes force=no"

    def test_spaces_quoted(self):
        assert render_kv({"line": "a b"}) == 'line="a b"'

    def test_raw_params_lead(self):
        assert render_kv({RAW_PARAMS_KEY: "echo hi", "chdir": "/tmp"}) == "echo hi chdir=/tmp"

    @given(
        st.dictionaries(
            st.from_regex(r"[a-h][a-h_]{0,7}", fullmatch=True),
            st.one_of(
                st.text(alphabet="abcdef/._-", min_size=1, max_size=10),
                st.booleans(),
                st.integers(min_value=0, max_value=999),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_roundtrip(self, arguments):
        rendered = render_kv(arguments)
        parsed = parse_kv(rendered)
        # Booleans render as yes/no which resolve back to booleans; values
        # compare after scalar resolution.
        assert parsed == arguments


class TestLooksLikeKv:
    def test_positive(self):
        assert looks_like_kv("name=nginx state=present")

    def test_free_form_with_kv(self):
        assert looks_like_kv("echo hi chdir=/tmp")

    def test_plain_command(self):
        assert not looks_like_kv("systemctl daemon-reload")

    def test_unterminated_quote(self):
        assert not looks_like_kv("msg='open")
