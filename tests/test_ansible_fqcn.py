"""Tests for repro.ansible.fqcn."""

from __future__ import annotations

import pytest

from repro.ansible.fqcn import is_fqcn, resolve_fqcn, short_name


class TestResolveFqcn:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("copy", "ansible.builtin.copy"),
            ("apt", "ansible.builtin.apt"),
            ("ansible.builtin.apt", "ansible.builtin.apt"),
            ("docker_container", "community.docker.docker_container"),
            ("k8s", "kubernetes.core.k8s"),
            ("vyos_config", "vyos.vyos.vyos_config"),
        ],
    )
    def test_resolution(self, name, expected):
        assert resolve_fqcn(name) == expected

    def test_unknown_passthrough(self):
        assert resolve_fqcn("my.custom.module") == "my.custom.module"
        assert resolve_fqcn("unknown_module") == "unknown_module"

    def test_idempotent(self):
        once = resolve_fqcn("copy")
        assert resolve_fqcn(once) == once


class TestShortName:
    def test_fqcn(self):
        assert short_name("ansible.builtin.copy") == "copy"

    def test_already_short(self):
        assert short_name("copy") == "copy"


class TestIsFqcn:
    @pytest.mark.parametrize("name", ["ansible.builtin.copy", "community.docker.docker_container"])
    def test_positive(self, name):
        assert is_fqcn(name)

    @pytest.mark.parametrize("name", ["copy", "a.b", "has space.b.c", ""])
    def test_negative(self, name):
        assert not is_fqcn(name)
