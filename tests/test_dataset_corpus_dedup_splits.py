"""Tests for corpus containers, dedup and splits."""

from __future__ import annotations

import pytest

from repro.dataset.corpus import ANSIBLE, Corpus, Document, GENERIC
from repro.dataset.dedup import dedup_documents, dedup_samples, dedup_samples_across_splits
from repro.dataset.splits import split_corpus
from repro.errors import DatasetError, EmptyCorpusError
from repro.utils.rng import SeededRng


def make_corpus(contents: list[str], source: str = "test") -> Corpus:
    return Corpus(
        "c",
        [Document(f"{source}/{i}", source, ANSIBLE, content) for i, content in enumerate(contents)],
    )


class TestCorpus:
    def test_counts(self):
        corpus = Corpus(
            "c",
            [
                Document("a", "galaxy", ANSIBLE, "x", kind="tasks"),
                Document("b", "github", GENERIC, "y", kind="generic"),
                Document("c", "github", ANSIBLE, "z", kind="playbook"),
            ],
        )
        assert corpus.counts_by_source() == {"galaxy": 1, "github": 2}
        assert corpus.counts_by_type() == {ANSIBLE: 2, GENERIC: 1}
        assert corpus.counts_by_kind() == {"tasks": 1, "generic": 1, "playbook": 1}
        assert corpus.total_characters() == 3

    def test_filters(self):
        corpus = make_corpus(["a", "b"]).merged_with(
            Corpus("g", [Document("g/0", "github", GENERIC, "c")])
        )
        assert len(corpus.by_source("github")) == 1
        assert len(corpus.by_type(ANSIBLE)) == 2

    def test_require_nonempty(self):
        with pytest.raises(EmptyCorpusError):
            Corpus("empty").require_nonempty()
        assert make_corpus(["a"]).require_nonempty()

    def test_summary_rows(self):
        corpus = make_corpus(["a", "b"], source="galaxy")
        assert corpus.summary_rows() == [["galaxy", 2, ANSIBLE]]


class TestDedupDocuments:
    def test_removes_exact_duplicates(self):
        corpus = make_corpus(["same", "same", "different"])
        deduped = dedup_documents(corpus)
        assert [d.content for d in deduped] == ["same", "different"]

    def test_keeps_first_occurrence(self):
        corpus = make_corpus(["x", "y", "x"])
        deduped = dedup_documents(corpus)
        assert deduped.documents[0].identifier == "test/0"

    def test_noop_when_unique(self):
        corpus = make_corpus(["a", "b"])
        assert len(dedup_documents(corpus)) == 2


class _Sample:
    def __init__(self, target_text: str):
        self.target_text = target_text


class TestDedupSamples:
    def test_by_target(self):
        samples = [_Sample("a"), _Sample("a"), _Sample("b")]
        assert len(dedup_samples(samples)) == 2

    def test_across_splits_prefers_earlier_split(self):
        splits = {
            "test": [_Sample("shared"), _Sample("test-only")],
            "train": [_Sample("shared"), _Sample("train-only")],
        }
        result = dedup_samples_across_splits(splits)
        assert [s.target_text for s in result["test"]] == ["shared", "test-only"]
        assert [s.target_text for s in result["train"]] == ["train-only"]


class TestSplitCorpus:
    def test_fractions(self):
        corpus = make_corpus([str(i) for i in range(100)])
        splits = split_corpus(corpus, SeededRng(0))
        assert splits.sizes() == {"train": 80, "validation": 10, "test": 10}

    def test_partition_is_exact(self):
        corpus = make_corpus([str(i) for i in range(37)])
        splits = split_corpus(corpus, SeededRng(1))
        all_ids = (
            [d.identifier for d in splits.train]
            + [d.identifier for d in splits.validation]
            + [d.identifier for d in splits.test]
        )
        assert sorted(all_ids) == sorted(d.identifier for d in corpus)

    def test_deterministic(self):
        corpus = make_corpus([str(i) for i in range(20)])
        a = split_corpus(corpus, SeededRng(5))
        b = split_corpus(corpus, SeededRng(5))
        assert [d.identifier for d in a.train] == [d.identifier for d in b.train]

    def test_bad_fractions(self):
        corpus = make_corpus(["a"])
        with pytest.raises(DatasetError):
            split_corpus(corpus, SeededRng(0), train_fraction=0.9, validation_fraction=0.2)
        with pytest.raises(DatasetError):
            split_corpus(corpus, SeededRng(0), train_fraction=0.0)
