"""Tests for corpus statistics and block synthesis."""

from __future__ import annotations

from repro import ansible, yamlio
from repro.dataset.stats import corpus_stats, render_stats_table, stats_by_source
from repro.dataset.synthesis import AnsibleSynthesizer
from repro.utils.rng import SeededRng


class TestCorpusStats:
    def test_full_count(self, galaxy_corpus, tiny_tokenizer):
        stats = corpus_stats(galaxy_corpus, tiny_tokenizer)
        assert stats.files == len(galaxy_corpus)
        assert stats.characters == galaxy_corpus.total_characters()
        assert stats.tokens > 0
        assert stats.compression_ratio > 1.0  # BPE compresses

    def test_sampled_extrapolation_close(self, galaxy_corpus, tiny_tokenizer):
        exact = corpus_stats(galaxy_corpus, tiny_tokenizer)
        sampled = corpus_stats(galaxy_corpus, tiny_tokenizer, sample_limit=len(galaxy_corpus) // 2)
        assert abs(sampled.tokens - exact.tokens) / exact.tokens < 0.25

    def test_stats_by_source_sorted(self, galaxy_corpus, tiny_tokenizer):
        rows = stats_by_source(galaxy_corpus, tiny_tokenizer)
        tokens = [row.tokens for row in rows]
        assert tokens == sorted(tokens, reverse=True)

    def test_render_table(self, galaxy_corpus, tiny_tokenizer):
        rows = [corpus_stats(galaxy_corpus, tiny_tokenizer, sample_limit=20)]
        table = render_stats_table(rows)
        assert "Tokens" in table and "Chars/Token" in table

    def test_empty_corpus(self, tiny_tokenizer):
        from repro.dataset.corpus import Corpus

        stats = corpus_stats(Corpus("empty"), tiny_tokenizer)
        assert stats.files == 0 and stats.tokens == 0
        assert stats.compression_ratio == 0.0


class TestBlockSynthesis:
    """The paper's future-work item: Ansible Blocks."""

    def test_block_structure(self):
        synthesizer = AnsibleSynthesizer(SeededRng(3))
        generated = synthesizer.task_list_with_block()
        assert generated.kind == "tasks"
        head, block_entry = generated.data
        assert "block" in block_entry
        assert "rescue" in block_entry
        assert "block" not in head

    def test_block_is_valid_yaml_and_schema(self):
        synthesizer = AnsibleSynthesizer(SeededRng(4))
        for _ in range(10):
            generated = synthesizer.task_list_with_block()
            text = yamlio.dumps(generated.data)
            data = yamlio.loads(text)
            # Lenient: blocks themselves are fine; strict may flag style noise.
            violations = ansible.validate(data, level=ansible.LENIENT)
            block_violations = [v for v in violations if "block" in v.rule]
            assert block_violations == []

    def test_block_flat_tasks(self):
        synthesizer = AnsibleSynthesizer(SeededRng(5))
        generated = synthesizer.task_list_with_block()
        task_list = ansible.TaskList.from_data(generated.data)
        names = [task.name for task in task_list.flat_tasks()]
        assert "Report failure" in names
        assert len(names) >= 3

    def test_deterministic(self):
        a = AnsibleSynthesizer(SeededRng(6)).task_list_with_block()
        b = AnsibleSynthesizer(SeededRng(6)).task_list_with_block()
        assert a.data == b.data
