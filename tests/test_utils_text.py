"""Tests for repro.utils.text."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.text import (
    dedent_block,
    indent_block,
    normalize_newlines,
    split_words,
    stable_hash,
    truncate_left,
)


class TestNormalizeNewlines:
    def test_crlf(self):
        assert normalize_newlines("a\r\nb") == "a\nb"

    def test_bare_cr(self):
        assert normalize_newlines("a\rb") == "a\nb"

    def test_noop_on_lf(self):
        assert normalize_newlines("a\nb") == "a\nb"


class TestIndentDedent:
    def test_indent_skips_blank_lines(self):
        assert indent_block("a\n\nb", 2) == "  a\n\n  b"

    def test_dedent_common_margin(self):
        assert dedent_block("  a\n    b") == "a\n  b"

    def test_dedent_ignores_blank_lines_for_margin(self):
        assert dedent_block("  a\n\n  b") == "a\n\nb"

    def test_dedent_empty(self):
        assert dedent_block("") == ""

    @given(st.text(alphabet="ab \n", max_size=60), st.integers(min_value=1, max_value=6))
    def test_indent_then_dedent_preserves_stripped_lines(self, text, n):
        indented = indent_block(text, n)
        assert [line.strip() for line in indented.split("\n")] == [
            line.strip() for line in text.split("\n")
        ]


class TestTruncateLeft:
    def test_no_truncation_needed(self):
        assert truncate_left([1, 2, 3], 5) == [1, 2, 3]

    def test_keeps_rightmost(self):
        assert truncate_left([1, 2, 3, 4], 2) == [3, 4]

    def test_zero_limit(self):
        assert truncate_left([1, 2], 0) == []

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            truncate_left([1], -1)

    def test_returns_copy(self):
        tokens = [1, 2, 3]
        result = truncate_left(tokens, 5)
        result.append(4)
        assert tokens == [1, 2, 3]


class TestSplitWords:
    def test_yaml_ish_text(self):
        assert split_words("name: nginx-stable v1.2") == ["name", "nginx-stable", "v1.2"]

    def test_empty(self):
        assert split_words("  ") == []


class TestStableHash:
    def test_stable(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_distinct(self):
        assert stable_hash("abc") != stable_hash("abd")
