"""Streaming / session conformance: delivery changes, content never does.

The property this suite pins down, across a grid of seeds, batch sizes,
speculative draft depths and KV dtypes:

* the concatenation of every burst ``stream_ids`` yields is byte-identical
  to the non-streaming ``generate_batch`` result for the same prompt, and
  (at fp32) to the blessed :func:`~repro.nn.sampling.generate_greedy`
  reference;
* a keystroke session's ``extend`` — which rolls the warm KV slab forward
  and prefills only the buffer delta — produces output byte-identical to
  a cold re-prefill of the same full buffer on a fresh engine;
* the serving layer's SSE stream reassembles to exactly the payload the
  non-streaming endpoint returns.

Any divergence means streaming changed *content*, which is the one thing
it must never do.
"""

from __future__ import annotations

import pytest

from repro.engine import InferenceEngine
from repro.engine.speculative import build_draft_model
from repro.nn.parameter import numpy_rng
from repro.nn.sampling import generate_greedy, plan_prompt
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.serving import PredictionService, SessionManager
from repro.tokenizer.bpe import BpeTokenizer
from repro.utils.rng import SeededRng

pytestmark = pytest.mark.streaming

TRAIN_TEXTS = [
    "- name: Install SSH server\n  ansible.builtin.apt:\n    name: openssh-server\n",
    "- name: Start SSH server\n  ansible.builtin.service:\n    name: ssh\n    state: started\n",
    "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
    "- name: Copy the config\n  ansible.builtin.copy:\n    src: a\n    dest: b\n",
]

SPECULATIVE_KS = (0, 2, 4)
KV_DTYPES = ("float32", "float16")
BUDGET = 12


@pytest.fixture(scope="module")
def tokenizer():
    return BpeTokenizer.train(TRAIN_TEXTS, vocab_size=300)


_NETWORKS: dict[int, DecoderLM] = {}


def network_for(seed: int, vocab_size: int) -> DecoderLM:
    if seed not in _NETWORKS:
        config = TransformerConfig(
            vocab_size=vocab_size, n_positions=160, dim=32, n_layers=2, n_heads=4
        )
        _NETWORKS[seed] = DecoderLM(config, numpy_rng(seed))
    return _NETWORKS[seed]


def build_engine(
    tokenizer,
    seed: int,
    *,
    speculative_k: int = 0,
    kv_dtype: str = "float32",
    max_batch_size: int = 4,
) -> InferenceEngine:
    engine = InferenceEngine(
        network_for(seed, tokenizer.vocab_size),
        tokenizer,
        max_batch_size=max_batch_size,
        default_max_new_tokens=BUDGET,
        kv_dtype=kv_dtype,
    )
    if speculative_k:
        # A fresh draft per engine: drafts are stateful (they observe
        # decoded contexts), and sharing one across the streaming and the
        # reference engine would entangle the two runs' acceptance rates.
        engine.enable_speculative(
            build_draft_model("retrieval", tokenizer, TRAIN_TEXTS), speculative_k
        )
    return engine


def seeded_prompts(seed: int, count: int, vocab_size: int) -> list[list[int]]:
    rng = SeededRng(seed).child("stream-equiv")
    return [
        [rng.randint(1, vocab_size - 1) for _ in range(rng.randint(3, 30))]
        for _ in range(count)
    ]


def stream_all(engine: InferenceEngine, prompt: list[int]) -> list[int]:
    collected: list[int] = []
    for burst in engine.stream_ids(list(prompt), BUDGET):
        assert isinstance(burst, list) and burst, "empty burst yielded"
        collected.extend(burst)
    return collected


class TestStreamMatchesNonStreaming:
    """stream_ids concat == generate_batch, across the full grid."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("speculative_k", SPECULATIVE_KS)
    @pytest.mark.parametrize("kv_dtype", KV_DTYPES)
    def test_stream_concat_equals_batch(self, tokenizer, seed, speculative_k, kv_dtype):
        prompts = seeded_prompts(seed, 4, tokenizer.vocab_size)
        streaming = build_engine(
            tokenizer, seed, speculative_k=speculative_k, kv_dtype=kv_dtype
        )
        reference = build_engine(
            tokenizer, seed, speculative_k=speculative_k, kv_dtype=kv_dtype
        )
        streamed = [stream_all(streaming, prompt) for prompt in prompts]
        results = reference.generate_batch([list(p) for p in prompts], BUDGET)
        for got, want in zip(streamed, results):
            assert got == list(want.token_ids)

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("speculative_k", SPECULATIVE_KS)
    def test_stream_concat_equals_greedy_reference(self, tokenizer, seed, speculative_k):
        # The blessed reference runs full fp32 forwards with no KV arena at
        # all; at fp32 KV the streamed tokens must match it exactly.
        engine = build_engine(tokenizer, seed, speculative_k=speculative_k)
        network = network_for(seed, tokenizer.vocab_size)
        for prompt in seeded_prompts(seed + 10, 3, tokenizer.vocab_size):
            planned, effective = plan_prompt(network.config.n_positions, list(prompt), BUDGET)
            want = generate_greedy(network, list(planned), effective)
            assert stream_all(engine, list(prompt)) == list(want.token_ids)

    @pytest.mark.parametrize("max_batch_size", (1, 2, 4, 8))
    def test_batch_size_does_not_change_streamed_tokens(self, tokenizer, max_batch_size):
        engine = build_engine(tokenizer, 0, max_batch_size=max_batch_size)
        reference = build_engine(tokenizer, 0, max_batch_size=8)
        for prompt in seeded_prompts(5, 3, tokenizer.vocab_size):
            want = reference.generate_batch([list(prompt)], BUDGET)[0]
            assert stream_all(engine, list(prompt)) == list(want.token_ids)

    def test_warm_prefix_cache_stream_is_identical(self, tokenizer):
        # Streaming the same prompt twice: the second run admits through a
        # prefix-cache hit, which must not change a single token.
        engine = build_engine(tokenizer, 0)
        prompt = seeded_prompts(7, 1, tokenizer.vocab_size)[0]
        assert stream_all(engine, list(prompt)) == stream_all(engine, list(prompt))


class TestSessionExtendMatchesColdPrefill:
    """Rolling a warm slab forward == re-prefilling from scratch."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("speculative_k", SPECULATIVE_KS)
    @pytest.mark.parametrize("kv_dtype", KV_DTYPES)
    def test_extend_equals_cold_create(self, tokenizer, seed, speculative_k, kv_dtype):
        warm_engine = build_engine(
            tokenizer, seed, speculative_k=speculative_k, kv_dtype=kv_dtype
        )
        cold_engine = build_engine(
            tokenizer, seed, speculative_k=speculative_k, kv_dtype=kv_dtype
        )
        warm = SessionManager(warm_engine)
        cold = SessionManager(cold_engine)
        buffer = TRAIN_TEXTS[seed % len(TRAIN_TEXTS)]
        created = warm.create(buffer, BUDGET)
        grown = buffer + created["completion"] + "\n- name: Restart the service\n"
        extended = warm.extend(created["session_id"], grown, BUDGET)
        fresh = cold.create(grown, BUDGET)
        assert extended["completion"] == fresh["completion"]
        assert extended["stop_reason"] == fresh["stop_reason"]
        # and the warm path genuinely reused the session's cached context
        assert extended["reused_tokens"] > 0
        assert extended["prefilled"] < fresh["prefilled"]

    @pytest.mark.parametrize("extends", (2, 4))
    def test_chained_extends_stay_identical(self, tokenizer, extends):
        warm_engine = build_engine(tokenizer, 1)
        warm = SessionManager(warm_engine)
        buffer = TRAIN_TEXTS[0]
        payload = warm.create(buffer, BUDGET)
        session_id = payload["session_id"]
        for round_index in range(extends):
            buffer = buffer + payload["completion"] + f"\n- name: Step {round_index}\n"
            payload = warm.extend(session_id, buffer, BUDGET)
            cold_engine = build_engine(tokenizer, 1)
            fresh = SessionManager(cold_engine).create(buffer, BUDGET)
            assert payload["completion"] == fresh["completion"]

    def test_divergent_buffer_truncates_and_still_matches(self, tokenizer):
        # The user edited *earlier* text (not just appended): the common
        # prefix shrinks, the slab truncates, and output must still match
        # a cold prefill of the edited buffer.
        warm_engine = build_engine(tokenizer, 2)
        warm = SessionManager(warm_engine)
        created = warm.create(TRAIN_TEXTS[0], BUDGET)
        edited = TRAIN_TEXTS[0].replace("openssh-server", "httpd") + "- name: Next task\n"
        extended = warm.extend(created["session_id"], edited, BUDGET)
        fresh = SessionManager(build_engine(tokenizer, 2)).create(edited, BUDGET)
        assert extended["completion"] == fresh["completion"]


class TestServiceStreamMatchesPredict:
    """The SSE surface reassembles to the non-streaming payload."""

    @pytest.mark.parametrize("seed", range(2))
    def test_stream_text_concat_equals_predict(self, tokenizer, seed):
        stream_service = PredictionService(
            (engine := build_engine(tokenizer, seed)), engine=engine, cache_capacity=1
        )
        plain_engine = build_engine(tokenizer, seed)
        plain_service = PredictionService(plain_engine, engine=plain_engine, cache_capacity=1)
        prompt = TRAIN_TEXTS[seed]
        want = plain_service.predict(prompt, BUDGET)
        events = list(stream_service.predict_stream(prompt, BUDGET))
        text = "".join(data["text"] for event, data in events if event == "token")
        done = [data for event, data in events if event == "done"][0]
        assert text == want["completion"]
        assert done["completion"] == want["completion"]
        assert done["outcome"] == "completed"

    def test_streamed_token_ids_concat_equals_engine_tokens(self, tokenizer):
        engine = build_engine(tokenizer, 0)
        service = PredictionService(engine, engine=engine, cache_capacity=1)
        reference = build_engine(tokenizer, 0)
        prompt = TRAIN_TEXTS[1]
        ids: list[int] = []
        for event, data in service.predict_stream(prompt, BUDGET):
            if event == "token":
                ids.extend(data["token_ids"])
        want = reference.generate_batch([tokenizer.encode(prompt)], BUDGET)[0]
        assert ids == list(want.token_ids)
