"""Integration tests for repro.obs wired through engine, serving and model.

Three properties matter end-to-end:

1. a traced engine run emits the expected span taxonomy — every request
   gets an ``engine.request`` root whose queue-wait/prefill/decode children
   are parented to it and contained within it in time;
2. the serving layer's ``/v1/metrics`` endpoint reflects real traffic
   (request counters, latency histograms, prefix-cache stats);
3. tracing is *observation only*: with a tracer attached, batched decode
   stays token-identical to the sequential greedy baseline (checked
   property-style over randomized prompt sets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import InferenceEngine
from repro.model.lm import WisdomModel
from repro.nn.optim import Adam
from repro.nn.parameter import numpy_rng
from repro.nn.sampling import generate_greedy
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.obs import Observability, Tracer
from repro.serving.client import PredictionClient
from repro.serving.service import PredictionService, RestServer
from repro.utils.rng import SeededRng


@pytest.fixture(scope="module")
def trained_model():
    """A model trained to continue the cycle 1,2,3,4,... (peaked logits)."""
    config = TransformerConfig(vocab_size=16, n_positions=24, dim=16, n_layers=2, n_heads=4)
    model = DecoderLM(config, numpy_rng(1))
    ids = np.array([[1, 2, 3, 4] * 5], dtype=np.int64)
    targets = np.roll(ids, -1, axis=1)
    targets[:, -1] = -1
    optimizer = Adam(model.parameters(), learning_rate=3e-3)
    for _ in range(150):
        model.zero_grad()
        model.loss_and_backward(ids, targets)
        optimizer.step()
    return model


PROMPTS = [
    [1, 2, 3, 4, 1, 2],
    [2, 3, 4],
    [1, 2],
    [3, 4, 1, 2, 3, 4, 1],
]


class TestEngineTracing:
    def test_request_span_taxonomy(self, trained_model):
        obs = Observability.with_tracing(capacity=1024)
        engine = InferenceEngine(trained_model, max_batch_size=3, obs=obs)
        results = engine.generate_batch(PROMPTS, max_new_tokens=6)
        assert len(results) == len(PROMPTS)

        roots = obs.tracer.spans("engine.request")
        assert len(roots) == len(PROMPTS)
        for root in roots:
            children = [
                span
                for span in obs.tracer.spans()
                if span.parent_id == root.span_id
            ]
            names = {span.name for span in children}
            assert {"engine.queue_wait", "engine.prefill", "engine.decode"} <= names
            # children are contained in the parent's interval
            for child in children:
                assert child.start_s >= root.start_s - 1e-9
                assert child.end_s <= root.end_s + 1e-9
            assert root.attrs["generated_tokens"] == 6
            assert "request_id" in root.attrs
        # the batcher's per-step spans come out too
        assert len(obs.tracer.spans("engine.decode_step")) >= 1

    def test_request_metrics_reflect_traffic(self, trained_model):
        obs = Observability()  # metrics on, tracing off (default posture)
        engine = InferenceEngine(trained_model, max_batch_size=4, obs=obs)
        engine.generate_batch(PROMPTS, max_new_tokens=5)
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["engine.requests"] == len(PROMPTS)
        assert snapshot["counters"]["engine.generated_tokens"] == 5 * len(PROMPTS)
        for name in ("engine.queue_wait_s", "engine.prefill_s", "engine.decode_s"):
            assert snapshot["histograms"][name]["count"] == len(PROMPTS)
        assert snapshot["histograms"]["engine.decode_step_s"]["count"] >= 1
        assert snapshot["histograms"]["engine.batch_occupancy"]["max"] <= 4
        # tracing off recorded nothing
        assert len(obs.tracer.spans()) == 0

    def test_prefix_cache_counters(self, trained_model):
        obs = Observability()
        engine = InferenceEngine(trained_model, max_batch_size=2, obs=obs)
        prompt = [1, 2, 3, 4, 1, 2, 3, 4]
        engine.generate_batch([prompt], max_new_tokens=4)
        engine.generate_batch([prompt], max_new_tokens=4)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["engine.prefix_cache_misses"] >= 1
        assert counters["engine.prefix_cache_hits"] >= 1
        assert counters["engine.prefix_tokens_reused"] > 0

    def test_attach_tracer_after_construction(self, trained_model):
        engine = InferenceEngine(trained_model, max_batch_size=2)
        engine.generate_batch(PROMPTS[:2], max_new_tokens=3)
        assert len(engine.obs.tracer.spans()) == 0
        tracer = Tracer(capacity=256)
        engine.attach_tracer(tracer)
        engine.generate_batch(PROMPTS[:2], max_new_tokens=3)
        assert len(tracer.spans("engine.request")) == 2


class TestServingMetricsEndpoint:
    def test_metrics_round_trip(self, tiny_tokenizer, tiny_network):
        model = WisdomModel("test", tiny_tokenizer, tiny_network)
        model.attach_tracer(Tracer(capacity=512))
        engine = model.engine(max_batch_size=4)
        service = PredictionService(model, engine=engine)
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            client.predict("- name: install nginx\n", max_new_tokens=4)
            client.predict_batch(["- name: a\n", "- name: b\n"], max_new_tokens=4)
            payload = client.metrics()

        counters = payload["metrics"]["counters"]
        assert counters["serving.requests"] == 3
        assert counters["serving.batch_requests"] == 1
        histograms = payload["metrics"]["histograms"]
        assert histograms["serving.completions_s"]["count"] == 1
        assert histograms["serving.batch_completions_s"]["count"] == 1
        # engine instrumentation shares the same registry (with an engine
        # attached, single and batch predictions both decode through it)
        assert counters["engine.requests"] == 3
        assert histograms["engine.queue_wait_s"]["count"] == 3
        assert histograms["engine.prefill_s"]["count"] == 3
        assert histograms["engine.decode_s"]["count"] >= 1
        # prefix-cache hit rate is surfaced via the engine section
        assert "hit_rate" in payload["engine"]["prefix_cache"]
        assert payload["tracing"]["enabled"] is True
        assert payload["tracing"]["spans_recorded"] > 0

    def test_stats_gains_tracing_and_inflight(self, tiny_tokenizer, tiny_network):
        model = WisdomModel("test", tiny_tokenizer, tiny_network)
        service = PredictionService(model)
        service.predict("- name: install nginx\n", max_new_tokens=3)
        stats = service.stats()
        assert stats["inflight"] == 0
        assert stats["tracing"] == {
            "enabled": False,
            "spans_buffered": 0,
            "spans_recorded": 0,
        }

    def test_serving_spans_wrap_engine_spans(self, tiny_tokenizer, tiny_network):
        model = WisdomModel("test", tiny_tokenizer, tiny_network)
        model.attach_tracer(Tracer(capacity=512))
        engine = model.engine(max_batch_size=2)
        service = PredictionService(model, engine=engine)
        service.predict_batch(["- name: install nginx\n"], max_new_tokens=3)
        tracer = model.obs.tracer
        assert len(tracer.spans("serving.predict_batch")) == 1
        assert len(tracer.spans("engine.request")) == 1


class TestTracedEquivalence:
    """Property-style: tracing must not perturb generation.

    Randomized prompt sets (seeded, so failures replay) decoded through a
    fully traced engine must match token-for-token what sequential greedy
    decoding produces on the bare network.
    """

    def test_randomized_prompt_sets_match_sequential(self, trained_model):
        rng = SeededRng(1234).child("obs-equivalence")
        vocab = trained_model.config.vocab_size
        for round_index in range(5):
            batch_size = rng.randint(2, 6)
            prompts = [
                [rng.randint(1, vocab - 1) for _ in range(rng.randint(2, 8))]
                for _ in range(batch_size)
            ]
            budget = rng.randint(3, 8)
            obs = Observability.with_tracing(capacity=2048)
            engine = InferenceEngine(trained_model, max_batch_size=3, obs=obs)
            results = engine.generate_batch(prompts, max_new_tokens=budget)
            for prompt, got in zip(prompts, results):
                want = generate_greedy(trained_model, prompt, max_new_tokens=budget)
                assert got.token_ids == want.token_ids, (
                    f"round {round_index}, prompt {prompt}: "
                    f"{got.token_ids} != {want.token_ids}"
                )
                assert got.stop_reason == want.stop_reason
            # tracing saw every request
            assert len(obs.tracer.spans("engine.request")) == batch_size

    def test_traced_prefix_cache_reuse_still_identical(self, trained_model):
        rng = SeededRng(99).child("obs-prefix")
        prefix = [1, 2, 3, 4, 1, 2, 3, 4]
        obs = Observability.with_tracing(capacity=2048)
        engine = InferenceEngine(trained_model, max_batch_size=4, obs=obs)
        for _ in range(3):
            prompts = [
                prefix + [rng.randint(1, 4) for _ in range(rng.randint(0, 4))]
                for _ in range(3)
            ]
            results = engine.generate_batch(prompts, max_new_tokens=5)
            for prompt, got in zip(prompts, results):
                want = generate_greedy(trained_model, prompt, max_new_tokens=5)
                assert got.token_ids == want.token_ids
        assert obs.metrics.snapshot()["counters"]["engine.prefix_cache_hits"] >= 1
