"""Tests for repro.dataset.synthesis (synthetic Ansible generator)."""

from __future__ import annotations

import pytest

from repro import ansible, yamlio
from repro.dataset.synthesis import (
    AnsibleSynthesizer,
    GALAXY_STYLE,
    GITHUB_STYLE,
    SCENARIOS,
    StyleProfile,
    TaskDraft,
)
from repro.utils.rng import SeededRng


@pytest.fixture()
def synthesizer():
    return AnsibleSynthesizer(SeededRng(5), GALAXY_STYLE)


class TestTaskDraft:
    def test_to_data_order(self):
        draft = TaskDraft("t", "ansible.builtin.apt", {"name": "x"}, {"become": True})
        data = draft.to_data(SeededRng(0), GALAXY_STYLE)
        assert list(data)[0] == "name"
        assert "ansible.builtin.apt" in data or "apt" in data

    def test_kv_style_applied(self):
        style = StyleProfile(kv_args_probability=1.0, fqcn_probability=1.0)
        draft = TaskDraft("t", "ansible.builtin.apt", {"name": "x", "state": "present"})
        data = draft.to_data(SeededRng(0), style)
        assert isinstance(data["ansible.builtin.apt"], str)
        assert "name=x" in data["ansible.builtin.apt"]

    def test_short_name_style(self):
        style = StyleProfile(fqcn_probability=0.0)
        draft = TaskDraft("t", "ansible.builtin.apt", {"name": "x"})
        data = draft.to_data(SeededRng(0), style)
        assert "apt" in data

    def test_legacy_loop_style(self):
        style = StyleProfile(legacy_loop_probability=1.0, kv_args_probability=0.0)
        draft = TaskDraft("t", "ansible.builtin.apt", {"name": "{{ item }}"}, {"loop": ["a"]})
        data = draft.to_data(SeededRng(0), style)
        assert "with_items" in data and "loop" not in data


class TestGeneratedContent:
    def test_task_list_kind(self, synthesizer):
        generated = synthesizer.task_list(n_tasks=4)
        assert generated.kind == "tasks"
        assert 1 <= len(generated.data) <= 4

    def test_playbook_single_play(self, synthesizer):
        generated = synthesizer.playbook(n_tasks=2)
        assert generated.kind == "playbook"
        assert len(generated.data) == 1
        play = generated.data[0]
        assert "hosts" in play and "tasks" in play and "name" in play

    def test_every_task_has_a_name(self, synthesizer):
        for _ in range(20):
            generated = synthesizer.file()
            tasks = generated.data if generated.kind == "tasks" else generated.data[0]["tasks"]
            for task in tasks:
                assert isinstance(task.get("name"), str) and task["name"]

    def test_all_modules_known(self, synthesizer):
        for _ in range(30):
            generated = synthesizer.file()
            tasks = generated.data if generated.kind == "tasks" else generated.data[0]["tasks"]
            for task in tasks:
                parsed = ansible.Task.from_data(task)
                assert ansible.is_known_module(parsed.module), parsed.module

    def test_emitted_yaml_valid(self, synthesizer):
        for _ in range(20):
            generated = synthesizer.file()
            text = yamlio.dumps(generated.data)
            assert yamlio.is_valid(text)
            assert ansible.classify_snippet(yamlio.loads(text)) == generated.kind

    def test_scenario_names_valid(self, synthesizer):
        for _ in range(20):
            assert synthesizer.file().scenario in SCENARIOS

    def test_network_playbook_shape(self):
        synthesizer = AnsibleSynthesizer(SeededRng(2))
        generated = synthesizer.playbook(n_tasks=2, scenario="network_config")
        play = generated.data[0]
        assert play["connection"] == "ansible.netcommon.network_cli"
        assert play["gather_facts"] is False

    def test_determinism(self):
        a = AnsibleSynthesizer(SeededRng(3)).file()
        b = AnsibleSynthesizer(SeededRng(3)).file()
        assert a.data == b.data and a.scenario == b.scenario

    def test_github_style_noisier_than_galaxy(self):
        def schema_rate(style):
            synthesizer = AnsibleSynthesizer(SeededRng(10), style)
            good = 0
            for _ in range(80):
                generated = synthesizer.file()
                good += ansible.is_schema_correct(generated.data)
            return good / 80

        assert schema_rate(GITHUB_STYLE) < schema_rate(GALAXY_STYLE)

    def test_become_consistent_within_file(self, synthesizer):
        """File-level style: privileged tasks in one file either all use
        become or none do."""
        from repro.ansible.modules import get_module

        for _ in range(30):
            generated = synthesizer.task_list(n_tasks=6)
            privileged_flags = []
            for task in generated.data:
                parsed = ansible.Task.from_data(task)
                spec = get_module(parsed.module)
                if spec and spec.category in ("packaging", "services", "system"):
                    privileged_flags.append(bool(parsed.keywords.get("become")))
            assert len(set(privileged_flags)) <= 1
