"""Tests for repro.engine (batched decode, prefix cache, batcher, facade).

The load-bearing property is *batched-vs-sequential equivalence*: greedy
decoding through the engine must produce token-for-token the same outputs
as N sequential :func:`generate_greedy` calls — padding/masking mistakes
show up as silently different tokens, never as crashes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ContinuousBatcher,
    DecodingBatch,
    GenerationRequest,
    InferenceEngine,
    PrefixCache,
    RequestState,
    generate_greedy_batch,
)
from repro.errors import EngineError
from repro.faults import FakeClock, use
from repro.nn.optim import Adam
from repro.nn.parameter import numpy_rng
from repro.nn.sampling import generate_greedy, plan_prompt
from repro.nn.transformer import DecoderLM, TransformerConfig


@pytest.fixture(scope="module")
def trained_model():
    """A model trained to continue the cycle 1,2,3,4,... (peaked logits)."""
    config = TransformerConfig(vocab_size=16, n_positions=24, dim=16, n_layers=2, n_heads=4)
    model = DecoderLM(config, numpy_rng(1))
    ids = np.array([[1, 2, 3, 4] * 5], dtype=np.int64)
    targets = np.roll(ids, -1, axis=1)
    targets[:, -1] = -1
    optimizer = Adam(model.parameters(), learning_rate=3e-3)
    for _ in range(150):
        model.zero_grad()
        model.loss_and_backward(ids, targets)
        optimizer.step()
    return model


# Mixed lengths on purpose: padding bugs only show up when rows differ.
MIXED_PROMPTS = [
    [1, 2, 3, 4, 1, 2],
    [2, 3, 4],
    [1, 2],
    [3, 4, 1, 2, 3, 4, 1],
    [4, 1, 2, 3, 4],
]


def assert_matches_sequential(model, results, prompts, max_new_tokens, stop_ids=frozenset()):
    for prompt, got in zip(prompts, results):
        want = generate_greedy(model, prompt, max_new_tokens, stop_ids=stop_ids)
        assert got.token_ids == want.token_ids, f"prompt {prompt}: {got} != {want}"
        assert got.stop_reason == want.stop_reason
        assert got.effective_budget == want.effective_budget


class TestBatchedVsSequentialEquivalence:
    def test_engine_mixed_lengths(self, trained_model):
        engine = InferenceEngine(trained_model, max_batch_size=3)
        results = engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8)

    def test_engine_with_early_stop_token(self, trained_model):
        # Token 3 follows some prompts quickly, so rows finish at different
        # steps and retire mid-flight while others keep decoding.
        engine = InferenceEngine(trained_model, max_batch_size=4)
        results = engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8, stop_ids={3})
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8, stop_ids={3})
        assert any(result.stop_reason == "stop_token" for result in results)
        lengths = {len(result.token_ids) for result in results}
        assert len(lengths) > 1  # at least one row finished early

    def test_static_batched_prefill_path(self, trained_model):
        # generate_greedy_batch prefills all rows in one left-padded
        # forward — the other padding-sensitive code path.
        results = generate_greedy_batch(trained_model, MIXED_PROMPTS, max_new_tokens=8)
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8)

    def test_static_batch_with_stop(self, trained_model):
        results = generate_greedy_batch(trained_model, MIXED_PROMPTS, max_new_tokens=8, stop_ids={3})
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8, stop_ids={3})

    def test_window_filling_rows_retire_individually(self, trained_model):
        # Long prompts with a huge budget: every row must hit context_full
        # at its *own* window boundary, not a neighbour's.
        prompts = [[1, 2, 3, 4] * 5, [1, 2, 3, 4] * 3, [2, 3, 4, 1] * 4]
        engine = InferenceEngine(trained_model)
        results = engine.generate_batch(prompts, max_new_tokens=50)
        assert_matches_sequential(trained_model, results, prompts, 50)
        assert all(result.stop_reason == "context_full" for result in results)

    def test_batch_size_one_degenerates_cleanly(self, trained_model):
        engine = InferenceEngine(trained_model, max_batch_size=1)
        results = engine.generate_batch(MIXED_PROMPTS[:3], max_new_tokens=6)
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS[:3], 6)


class TestPrefixCache:
    def test_lookup_reuses_longest_prefix(self, trained_model):
        engine = InferenceEngine(trained_model)
        prompt = [1, 2, 3, 4, 1, 2, 3, 4]
        engine.generate_batch([prompt], max_new_tokens=4)
        extended = prompt + [1, 2]
        results = engine.generate_batch([extended], max_new_tokens=4)
        want = generate_greedy(trained_model, extended, max_new_tokens=4)
        assert results[0].token_ids == want.token_ids
        stats = engine.stats()["prefix_cache"]
        assert stats["hits"] == 1
        assert stats["tokens_reused"] == len(prompt)

    def test_prefix_never_covers_whole_prompt(self):
        cache = PrefixCache()
        fake = [_fake_kv(4)]
        assert cache.insert([5, 6, 7, 8], fake)
        match = cache.lookup([5, 6, 7, 8])
        assert match is not None
        matched, caches = match
        assert matched == 3  # one token always left for live prefill
        assert caches[0].length == 3

    def test_insert_skips_covered_prompts(self):
        cache = PrefixCache()
        assert cache.insert([5, 6, 7, 8], [_fake_kv(4)])
        assert not cache.insert([5, 6], [_fake_kv(2)])
        assert len(cache) == 1

    def test_eviction_is_lru(self):
        cache = PrefixCache(capacity=2)
        cache.insert([1, 1], [_fake_kv(2)])
        cache.insert([2, 2], [_fake_kv(2)])
        cache.lookup([1, 1, 9])  # refresh the first entry
        cache.insert([3, 3], [_fake_kv(2)])  # evicts [2, 2]
        assert cache.lookup([2, 2, 9]) is None
        assert cache.lookup([1, 1, 9]) is not None
        assert cache.stats()["evictions"] == 1

    def test_clear_preserves_lifetime_counters(self):
        cache = PrefixCache(capacity=2)
        cache.lookup([9, 9, 9])  # miss
        cache.insert([1, 1, 1], [_fake_kv(3)])
        cache.lookup([1, 1, 1, 2])  # hit
        before = cache.stats()
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup([1, 1, 1, 2]) is None  # entries really are gone
        after = cache.stats()
        assert after["entries"] == 0
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"] + 1  # the probe above
        assert after["tokens_reused"] == before["tokens_reused"]
        assert after["evictions"] == 0  # clearing is not eviction

    def test_engine_stats_monotonic_across_cache_clear(self, trained_model):
        engine = InferenceEngine(trained_model)
        prompt = [1, 2, 3, 4, 1, 2, 3, 4]
        engine.generate_batch([prompt], max_new_tokens=4)
        engine.generate_batch([prompt + [1]], max_new_tokens=4)
        before = engine.stats()
        engine.prefix_cache.clear()
        engine.generate_batch([prompt], max_new_tokens=4)
        after = engine.stats()
        for key in ("completed_requests", "requests_submitted", "decode_tokens"):
            assert after[key] > before[key]
        for key in ("hits", "misses", "tokens_reused"):
            assert after["prefix_cache"][key] >= before["prefix_cache"][key], (
                f"prefix_cache.{key} went backwards across clear()"
            )

    def test_snapshot_is_isolated_from_caller(self):
        cache = PrefixCache()
        kv = _fake_kv(3)
        cache.insert([7, 8, 9], [kv])
        kv.keys[...] = -1.0  # mutate the caller's arrays after insert
        match = cache.lookup([7, 8, 9, 1])
        assert match is not None
        _, caches = match
        assert not np.any(caches[0].keys == -1.0)


def _fake_kv(length: int):
    from repro.nn.attention import KVCache

    cache = KVCache()
    cache.keys = np.arange(2 * length * 2, dtype=np.float32).reshape(1, 2, length, 2) / 7.0
    cache.values = cache.keys + 1.0
    return cache


class TestContinuousBatcher:
    def test_admission_respects_max_batch_size(self, trained_model):
        batcher = ContinuousBatcher(trained_model, max_batch_size=2)
        requests = [_request(trained_model, i, prompt) for i, prompt in enumerate(MIXED_PROMPTS)]
        for request in requests:
            batcher.submit(request)
        assert batcher.queue_depth == len(MIXED_PROMPTS)
        batcher.step()
        assert batcher.active_size <= 2
        assert batcher.peak_batch_size <= 2
        batcher.run()
        assert batcher.queue_depth == 0
        assert batcher.completed == len(MIXED_PROMPTS)
        assert all(request.is_finished for request in requests)

    def test_new_requests_join_mid_flight(self, trained_model):
        # With capacity 3 and 5 requests, later requests are admitted only
        # once earlier rows retire — continuous, not static, batching.
        batcher = ContinuousBatcher(trained_model, max_batch_size=3)
        requests = [
            _request(trained_model, i, prompt, max_new_tokens=2 + 2 * i)
            for i, prompt in enumerate(MIXED_PROMPTS)
        ]
        for request in requests:
            batcher.submit(request)
        joined_late = False
        while batcher.step():
            if batcher.completed and batcher.queue_depth < len(MIXED_PROMPTS) - 3:
                joined_late = batcher.active_size > 0
        assert batcher.completed == len(MIXED_PROMPTS)
        assert joined_late
        assert batcher.mean_occupancy > 1.0

    def test_token_budget_gate(self, trained_model):
        window = trained_model.config.n_positions
        batcher = ContinuousBatcher(trained_model, max_batch_size=8, max_batch_tokens=window)
        for i, prompt in enumerate(MIXED_PROMPTS[:3]):
            batcher.submit(_request(trained_model, i, prompt, max_new_tokens=10))
        batcher.step()
        # Footprints (prompt + budget) exceed one window each, so only the
        # head request fits; the empty-batch exemption admitted it anyway.
        assert batcher.active_size == 1
        batcher.run()
        assert batcher.completed == 3

    def test_oversized_request_not_wedged(self, trained_model):
        batcher = ContinuousBatcher(trained_model, max_batch_size=4, max_batch_tokens=4)
        batcher.submit(_request(trained_model, 0, [1, 2, 3, 4, 1, 2], max_new_tokens=8))
        batcher.run()
        assert batcher.completed == 1

    def test_request_lifecycle_and_timing(self, trained_model):
        # Timing runs on the swappable faults clock, so the assertions are
        # exact equalities, not >= 0 smoke checks against the wall clock.
        fake = FakeClock()
        with use(fake):
            batcher = ContinuousBatcher(trained_model, max_batch_size=2)
            request = _request(trained_model, 0, [1, 2, 3, 4], max_new_tokens=4)
            assert request.state is RequestState.QUEUED
            fake.advance(0.25)  # the request sits queued for exactly 0.25s
            batcher.submit(request)
            batcher.run()
            assert request.state is RequestState.FINISHED
            timings = request.timings()
            assert timings["queued_s"] == 0.25
            assert timings["prefill_s"] == 0.0  # no clock advance inside run()
            assert timings["decode_s"] == 0.0
        with pytest.raises(EngineError):
            request.finish("max_tokens")  # double-finish is a bug

    def test_timings_exact_across_transitions(self, trained_model):
        fake = FakeClock(start=10.0)
        with use(fake):
            request = _request(trained_model, 0, [1, 2], max_new_tokens=2)
            fake.advance(0.25)
            request.begin_prefill()
            fake.advance(0.5)
            request.begin_decode()
            fake.advance(1.25)
            request.finish("max_tokens")
        # finished_at is pinned, so reading after the fake clock is gone
        # still yields the exact phase durations.
        assert request.timings() == {"queued_s": 0.25, "prefill_s": 0.5, "decode_s": 1.25}

    def test_result_before_finish_raises(self, trained_model):
        request = _request(trained_model, 0, [1, 2], max_new_tokens=2)
        with pytest.raises(EngineError):
            _ = request.result


def _request(model, request_id, prompt, max_new_tokens=8, stop_ids=frozenset()):
    planned, effective = plan_prompt(model.config.n_positions, prompt, max_new_tokens)
    return GenerationRequest(
        request_id=request_id,
        prompt_ids=planned,
        max_new_tokens=max_new_tokens,
        effective_budget=effective,
        stop_ids=frozenset(stop_ids),
    )


class TestDecodingBatch:
    def test_step_on_empty_batch_raises(self, trained_model):
        with pytest.raises(EngineError):
            DecodingBatch(trained_model).step()

    def test_admit_prompts_requires_empty_batch(self, trained_model):
        batch = DecodingBatch(trained_model)
        batch.admit_prompts([[1, 2], [3, 4]], [0, 1])
        with pytest.raises(EngineError):
            batch.admit_prompts([[1, 2]], [2])

    def test_retire_trims_padding_columns(self, trained_model):
        batch = DecodingBatch(trained_model)
        batch.admit_prompts([[1, 2, 3, 4, 1, 2], [1, 2]], [0, 1])
        assert batch.total_columns == 6
        batch.retire([0])  # the long row leaves; 4 columns are now all-padding
        assert batch.total_columns == 2
        assert len(batch) == 1


class TestEngineFacade:
    def test_stats_shape(self, trained_model):
        engine = InferenceEngine(trained_model, max_batch_size=4)
        engine.generate_batch(MIXED_PROMPTS, max_new_tokens=4)
        stats = engine.stats()
        for key in (
            "queue_depth",
            "active_requests",
            "completed_requests",
            "decode_steps",
            "decode_tokens",
            "prefill_tokens",
            "mean_batch_occupancy",
            "prefix_cache",
        ):
            assert key in stats
        assert stats["completed_requests"] == len(MIXED_PROMPTS)
        assert stats["queue_depth"] == 0
        assert stats["active_requests"] == 0
        assert stats["mean_batch_occupancy"] > 1.0

    def test_empty_batch_returns_empty(self, trained_model):
        assert InferenceEngine(trained_model).generate_batch([]) == []

    def test_text_interface_requires_tokenizer(self, trained_model):
        engine = InferenceEngine(trained_model)
        with pytest.raises(EngineError):
            engine.complete_batch(["- name: install nginx\n"])

    def test_results_in_submission_order(self, trained_model):
        engine = InferenceEngine(trained_model, max_batch_size=2)
        prompts = list(reversed(MIXED_PROMPTS))
        results = engine.generate_batch(prompts, max_new_tokens=5)
        assert_matches_sequential(trained_model, results, prompts, 5)


class TestWisdomModelBatchInterface:
    def test_complete_batch_matches_complete(self, tiny_tokenizer, tiny_network):
        from repro.model.lm import WisdomModel

        model = WisdomModel("test", tiny_tokenizer, tiny_network)
        prompts = [
            "- name: Install SSH server\n",
            "- name: Start the service\n",
            "- name: Copy configuration\n",
            "- name: Install SSH server on RHEL\n",
        ]
        batched = model.complete_batch(prompts, max_new_tokens=8)
        sequential = [model.complete(prompt, max_new_tokens=8) for prompt in prompts]
        assert batched == sequential
        stats = model.engine().stats()
        assert stats["completed_requests"] == len(prompts)


class TestStatsSnapshotConsistency:
    """Satellite: stats() is one consistent pass that never blocks on decode."""

    def test_stats_does_not_block_behind_the_request_lock(self, trained_model):
        # the engine's request lock is held for an ENTIRE generate_batch
        # call; a stats probe must not queue behind it
        engine = InferenceEngine(trained_model, max_batch_size=2)
        engine.generate_batch([[1, 2, 3]], max_new_tokens=3)
        acquired = engine._lock.acquire()
        assert acquired
        try:
            import threading

            result: dict = {}
            probe = threading.Thread(target=lambda: result.update(engine.stats()))
            probe.start()
            probe.join(timeout=5.0)
            assert result, "stats() blocked behind the engine request lock"
            assert result["completed_requests"] == 1
        finally:
            engine._lock.release()

    def test_snapshot_internally_consistent_under_concurrent_decode(self, trained_model):
        # occupancy_ticks and decode_tokens advance together inside one
        # stats_lock section; any torn read across a decode step would
        # break the identity mean_occupancy * steps == tokens
        import threading

        engine = InferenceEngine(trained_model, max_batch_size=4)
        prompts = [[1, 2, 3], [2, 3, 4, 5], [3, 4], [5, 6, 7]] * 4
        worker = threading.Thread(
            target=lambda: engine.generate_batch(prompts, max_new_tokens=12)
        )
        worker.start()
        saw_midflight = False
        try:
            while worker.is_alive():
                stats = engine.stats()
                assert stats["mean_batch_occupancy"] * stats["decode_steps"] == pytest.approx(
                    stats["decode_tokens"]
                )
                if 0 < stats["completed_requests"] < len(prompts):
                    saw_midflight = True
        finally:
            worker.join()
        stats = engine.stats()
        assert stats["completed_requests"] == len(prompts)
        del saw_midflight  # timing-dependent; the invariant check above is the point

    def test_batcher_stats_lock_is_not_the_engine_lock(self, trained_model):
        engine = InferenceEngine(trained_model)
        assert engine.batcher.stats_lock is not engine._lock
