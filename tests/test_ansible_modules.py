"""Tests for repro.ansible.modules (the module catalog)."""

from __future__ import annotations

import pytest

from repro.ansible.keywords import TASK_KEYWORDS
from repro.ansible.modules import (
    CATALOG,
    all_modules,
    categories,
    get_module,
    is_known_module,
    modules_in_category,
)


class TestCatalogIntegrity:
    def test_catalog_is_reasonably_large(self):
        assert len(CATALOG) >= 80

    def test_fqcns_unique(self):
        fqcns = [spec.fqcn for spec in CATALOG]
        assert len(fqcns) == len(set(fqcns))

    def test_fqcn_shape(self):
        for spec in CATALOG:
            assert spec.fqcn.count(".") >= 2, spec.fqcn

    def test_every_module_has_description(self):
        for spec in CATALOG:
            assert spec.description

    def test_parameter_names_unique_per_module(self):
        for spec in CATALOG:
            names = [parameter.name for parameter in spec.parameters]
            assert len(names) == len(set(names)), spec.fqcn

    def test_no_module_name_collides_with_task_keywords(self):
        for spec in CATALOG:
            assert spec.short_name not in TASK_KEYWORDS, spec.fqcn

    def test_parameter_types_valid(self):
        valid = {"str", "int", "bool", "list", "dict", "path"}
        for spec in CATALOG:
            for parameter in spec.parameters:
                assert parameter.type in valid, f"{spec.fqcn}.{parameter.name}"

    def test_choices_are_strings(self):
        for spec in CATALOG:
            for parameter in spec.parameters:
                assert all(isinstance(choice, str) for choice in parameter.choices)

    def test_free_form_modules(self):
        for short in ("command", "shell", "raw", "script"):
            assert get_module(short).free_form
        assert not get_module("apt").free_form


class TestLookup:
    def test_by_fqcn(self):
        assert get_module("ansible.builtin.apt").short_name == "apt"

    def test_builtin_by_short_name(self):
        assert get_module("copy").fqcn == "ansible.builtin.copy"

    def test_legacy_alias(self):
        assert get_module("docker_container").fqcn == "community.docker.docker_container"
        assert get_module("firewalld").fqcn == "ansible.posix.firewalld"

    def test_unknown_returns_none(self):
        assert get_module("no.such.module") is None
        assert not is_known_module("made_up_module")

    def test_parameter_lookup_with_alias(self):
        apt = get_module("apt")
        assert apt.parameter("pkg").name == "name"
        assert apt.parameter("name").name == "name"
        assert apt.parameter("bogus") is None

    def test_required_parameters(self):
        copy = get_module("copy")
        assert "dest" in [parameter.name for parameter in copy.required_parameters]

    def test_collection_property(self):
        assert get_module("ansible.builtin.apt").collection == "ansible.builtin"
        assert get_module("kubernetes.core.k8s").collection == "kubernetes.core"


class TestCategories:
    def test_categories_nonempty(self):
        assert "packaging" in categories()
        assert "services" in categories()

    def test_modules_in_category(self):
        packaging = modules_in_category("packaging")
        assert any(spec.short_name == "apt" for spec in packaging)
        assert all(spec.category == "packaging" for spec in packaging)

    def test_all_modules_is_catalog(self):
        assert all_modules() == CATALOG

    @pytest.mark.parametrize("fqcn", ["vyos.vyos.vyos_facts", "vyos.vyos.vyos_config"])
    def test_paper_fig2_modules_present(self, fqcn):
        """The VyOS modules from the paper's Fig. 2 must resolve."""
        assert get_module(fqcn) is not None
