"""Fleet tier: consistent hashing, load profiles and the router.

The load-bearing properties:

* the hash ring moves only the departed worker's keys on membership
  change (minimal disruption), and ``preference()`` order IS the failover
  order — a key fails over to exactly where it would rebalance to;
* the router never drops a request across failover, spill or rebalance:
  every submitted prompt either completes or raises one of the typed
  serving errors;
* fleet ``/v1/stats`` aggregates per-replica counters into one consistent
  fleet view.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    FleetError,
    ServiceOverloadedError,
    ServingError,
    WorkerUnavailableError,
)
from repro.faults import FakeClock, use
from repro.faults import clock as faults_clock
from repro.fleet import (
    DEFAULT_PREFIX_DEPTH,
    LOAD_PROFILES,
    FleetRouter,
    HashRing,
    InProcessWorker,
    WorkerSpec,
    generate_prompts,
    prefix_bucket,
)

pytestmark = pytest.mark.fleet


# -- affinity primitives -----------------------------------------------------


class TestPrefixBucket:
    def test_same_head_same_bucket(self):
        # a realistic playbook head is longer than the bucket depth, so
        # differing tails never reach the key
        head = (
            "---\n- hosts: web01\n  tasks:\n    - name: Install nginx on web01\n"
            "      ansible.builtin.apt:\n        name: nginx\n        state: present\n"
        )
        assert len(head) >= DEFAULT_PREFIX_DEPTH
        assert prefix_bucket(head + "tail one") == prefix_bucket(head + "other tail")

    def test_normalises_editor_whitespace(self):
        assert prefix_bucket("  - name:  Install   nginx") == prefix_bucket("- name: Install nginx")

    def test_distinct_heads_distinct_buckets(self):
        assert prefix_bucket("- name: Install nginx\n") != prefix_bucket("- name: Install redis\n")

    def test_empty_prompt_gets_sentinel(self):
        assert prefix_bucket("   \n") == "<empty>"

    def test_depth_bounds_the_key(self):
        long = "x" * 500
        assert len(prefix_bucket(long)) <= DEFAULT_PREFIX_DEPTH


class TestHashRing:
    def test_route_is_stable_and_member(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in ("alpha", "beta", "gamma"):
            owner = ring.route(key)
            assert owner in ("w0", "w1", "w2")
            assert ring.route(key) == owner

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in ("alpha", "beta", "gamma"):
            order = ring.preference(key)
            assert order[0] == ring.route(key)
            assert sorted(order) == ["w0", "w1", "w2"]

    def test_remove_moves_only_departed_workers_keys(self):
        """The minimal-disruption property of consistent hashing."""
        ring = HashRing([f"w{i}" for i in range(4)])
        keys = [f"bucket-{i}" for i in range(200)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("w2")
        for key in keys:
            after = ring.route(key)
            if before[key] != "w2":
                assert after == before[key], f"{key} moved despite surviving owner"
            else:
                assert after != "w2"

    def test_failed_over_keys_land_on_second_preference(self):
        ring = HashRing([f"w{i}" for i in range(4)])
        keys = [f"bucket-{i}" for i in range(200)]
        expected = {key: ring.preference(key) for key in keys}
        ring.remove("w1")
        for key in keys:
            survivors = [worker for worker in expected[key] if worker != "w1"]
            assert ring.route(key) == survivors[0]

    def test_rejoin_restores_original_ownership(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"bucket-{i}" for i in range(100)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("w1")
        ring.add("w1")
        assert {key: ring.route(key) for key in keys} == before

    def test_reasonable_balance(self):
        ring = HashRing([f"w{i}" for i in range(4)], vnodes=64)
        counts: dict[str, int] = {}
        for i in range(1000):
            owner = ring.route(f"key-{i}")
            counts[owner] = counts.get(owner, 0) + 1
        assert min(counts.values()) > 1000 / 4 / 4  # no worker starves badly

    def test_membership_errors(self):
        ring = HashRing(["w0"])
        with pytest.raises(FleetError):
            ring.add("w0")
        with pytest.raises(FleetError):
            ring.remove("w9")
        ring.remove("w0")
        with pytest.raises(FleetError):
            ring.route("anything")
        assert ring.preference("anything") == []


class TestLoadProfiles:
    def test_deterministic_per_seed(self):
        for name in LOAD_PROFILES:
            assert generate_prompts(name, 16, seed=3) == generate_prompts(name, 16, seed=3)
            assert generate_prompts(name, 16, seed=3) != generate_prompts(name, 16, seed=4)

    def test_shared_prefix_bounded_buckets(self):
        prompts = generate_prompts("shared_prefix", 64, seed=0)
        buckets = {prefix_bucket(prompt) for prompt in prompts}
        assert len(buckets) <= LOAD_PROFILES["shared_prefix"].sessions

    def test_uniform_no_sharing(self):
        prompts = generate_prompts("uniform", 64, seed=0)
        assert len({prefix_bucket(prompt) for prompt in prompts}) == 64

    def test_keystroke_extends_session_buffer(self):
        prompts = generate_prompts("keystroke", 32, seed=0)
        by_bucket: dict[str, list[str]] = {}
        for prompt in prompts:
            by_bucket.setdefault(prefix_bucket(prompt), []).append(prompt)
        for series in by_bucket.values():
            for shorter, longer in zip(series, series[1:]):
                assert longer.startswith(shorter)

    def test_unknown_profile_rejected(self):
        with pytest.raises(FleetError):
            generate_prompts("bogus", 4)
        with pytest.raises(FleetError):
            generate_prompts("uniform", 0)


# -- router over scripted fake workers ---------------------------------------


class FakeWorker:
    """Scripted replica: records calls, dies or saturates on command."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self.dead = False
        self.overloaded = False
        self.killed = False
        self.calls: list[str] = []

    def _check(self):
        if self.dead:
            raise WorkerUnavailableError(f"{self.worker_id} down", worker_id=self.worker_id)
        if self.overloaded:
            raise ServiceOverloadedError(f"{self.worker_id} saturated", retry_after_s=0.25)

    def predict(self, prompt, max_new_tokens=None, deadline_s=None):
        self._check()
        self.calls.append(prompt)
        return {"completion": prompt + "!", "cached": False, "degraded": False}

    def predict_batch(self, prompts, max_new_tokens=None, deadline_s=None):
        self._check()
        self.calls.extend(prompts)
        return {
            "completions": [prompt + "!" for prompt in prompts],
            "cached": [False] * len(prompts),
            "degraded": [False] * len(prompts),
            "decoded": len(prompts),
        }

    def heartbeat(self):
        self._check()
        return faults_clock.now()

    def health(self):
        self._check()
        return {"status": "ok"}

    def stats(self):
        return {
            "requests": len(self.calls),
            "engine": {
                "decode_tokens": 10 * len(self.calls),
                "kv_arena": {"bytes_in_use": 0},
                "prefix_cache": {"hits": 3, "misses": 1, "tokens_reused": 30},
            },
        }

    def kill(self):
        self.killed = True
        self.dead = True

    def stop(self):
        self.dead = True


def fake_fleet(n=3, **kwargs) -> tuple[FleetRouter, list[FakeWorker]]:
    workers = [FakeWorker(f"w{i}") for i in range(n)]
    return FleetRouter(workers, **kwargs), workers


class TestRouterRouting:
    def test_affinity_groups_stick_to_one_replica(self):
        router, workers = fake_fleet()
        prompts = generate_prompts("shared_prefix", 32, seed=0)
        seen: dict[str, str] = {}
        for prompt in prompts:
            payload = router.predict(prompt)
            bucket = prefix_bucket(prompt)
            assert seen.setdefault(bucket, payload["worker"]) == payload["worker"]

    def test_round_robin_cycles(self):
        router, workers = fake_fleet(policy="round_robin")
        served = [router.predict(f"- name: prompt {i}\n")["worker"] for i in range(6)]
        assert served == ["w0", "w1", "w2", "w0", "w1", "w2"]

    def test_rejects_bad_inputs(self):
        router, _ = fake_fleet()
        with pytest.raises(ServingError):
            router.predict("   ")
        with pytest.raises(ServingError):
            router.predict_batch([])
        with pytest.raises(FleetError):
            FleetRouter(policy="zigzag")

    def test_batch_grouped_by_replica(self):
        router, workers = fake_fleet()
        prompts = generate_prompts("shared_prefix", 12, seed=1)
        payload = router.predict_batch(prompts)
        assert payload["completions"] == [prompt + "!" for prompt in prompts]
        assert payload["batch_size"] == 12
        for prompt, worker_id in zip(prompts, payload["workers"]):
            assert prompt in {w.worker_id: w for w in workers}[worker_id].calls


class TestRouterFailover:
    def test_dead_replica_fails_over_without_dropping(self):
        router, workers = fake_fleet()
        prompt = "- name: Install nginx on web01\n"
        primary = router.predict(prompt)["worker"]
        {w.worker_id: w for w in workers}[primary].dead = True
        payload = router.predict(prompt)
        assert payload["completion"] == prompt + "!"
        assert payload["worker"] != primary
        assert payload["failovers"] == 1
        stats = router.stats()
        assert stats["dead_workers"] == {primary: "dispatch_failed"}
        assert stats["failovers"] == 1
        assert primary not in stats["live_workers"]

    def test_dead_replica_is_drained(self):
        router, workers = fake_fleet()
        workers[0].dead = True
        router.remove_worker("w0", reason="dispatch_failed")
        assert workers[0].killed  # drain path ran

    def test_overload_spills_without_membership_change(self):
        router, workers = fake_fleet()
        prompt = "- name: Install nginx on web01\n"
        primary = router.predict(prompt)["worker"]
        {w.worker_id: w for w in workers}[primary].overloaded = True
        payload = router.predict(prompt)
        assert payload["worker"] != primary
        stats = router.stats()
        assert stats["spills"] == 1
        assert stats["dead_workers"] == {}  # saturated is not dead
        assert primary in stats["live_workers"]

    def test_all_saturated_sheds_with_retry_after(self):
        router, workers = fake_fleet()
        for worker in workers:
            worker.overloaded = True
        with pytest.raises(ServiceOverloadedError) as excinfo:
            router.predict("- name: anything\n")
        assert excinfo.value.retry_after_s == 0.25  # propagates the replica hint
        assert router.stats()["shed_requests"] == 1

    def test_all_dead_sheds(self):
        router, workers = fake_fleet()
        for worker in workers:
            worker.dead = True
        with pytest.raises(ServiceOverloadedError):
            router.predict("- name: anything\n")
        assert router.live_worker_ids == []

    def test_fleet_admission_control(self):
        router, _ = fake_fleet(max_inflight=1)
        assert router._try_admit()  # occupy the only slot
        with pytest.raises(ServiceOverloadedError):
            router.predict("- name: anything\n")
        router._release_admission()
        assert router.predict("- name: anything\n")["completion"]

    def test_batch_reenqueues_dead_groups(self):
        router, workers = fake_fleet()
        prompts = generate_prompts("shared_prefix", 16, seed=2)
        primary = {router.predict(prompts[0])["worker"]}
        {w.worker_id: w for w in workers}[primary.pop()].dead = True
        payload = router.predict_batch(prompts)
        assert payload["completions"] == [prompt + "!" for prompt in prompts]
        assert None not in payload["workers"]  # nothing dropped

    def test_batch_all_saturated_sheds_instead_of_spinning(self):
        router, workers = fake_fleet()
        for worker in workers:
            worker.overloaded = True
        with pytest.raises(ServiceOverloadedError):
            router.predict_batch(["- name: a\n", "- name: b\n"])


class TestRebalanceProperty:
    """Satellite: prefix affinity is stable under worker join/leave."""

    def test_surviving_buckets_do_not_move(self):
        router, workers = fake_fleet(4)
        prompts = generate_prompts("shared_prefix", 40, seed=3)
        before = {prefix_bucket(p): router.predict(p)["worker"] for p in prompts}
        victim = "w2"
        router.remove_worker(victim)
        for prompt in prompts:
            bucket = prefix_bucket(prompt)
            after = router.predict(prompt)["worker"]
            if before[bucket] != victim:
                assert after == before[bucket], f"bucket {bucket!r} moved without cause"
            else:
                assert after != victim

    def test_no_request_dropped_across_join_and_leave(self):
        router, workers = fake_fleet(3)
        prompts = generate_prompts("mixed", 30, seed=4)
        for index, prompt in enumerate(prompts):
            if index == 10:
                router.remove_worker("w1")
            if index == 20:
                router.add_worker(FakeWorker("w3"))
            payload = router.predict(prompt)
            assert payload["completion"] == prompt + "!"
        stats = router.stats()
        assert stats["requests"] == len(prompts)
        assert stats["rebalances"] >= 5  # 3 joins + leave + re-join

    def test_rejoin_restores_affinity(self):
        router, workers = fake_fleet(3)
        prompts = generate_prompts("shared_prefix", 24, seed=5)
        before = {prefix_bucket(p): router.predict(p)["worker"] for p in prompts}
        router.remove_worker("w0")
        router.add_worker(FakeWorker("w0"))
        after = {prefix_bucket(p): router.predict(p)["worker"] for p in prompts}
        assert after == before


class TestHeartbeats:
    def test_one_missed_probe_is_survivable(self):
        fake = FakeClock()
        with use(fake):
            router, workers = fake_fleet(heartbeat_timeout_s=1.0)
            workers[0].dead = True  # probe fails, but deadline not yet lapsed
            fake.advance(0.4)
            assert router.heartbeat_tick() == []
            assert router.stats()["heartbeat_misses"] == 1
            assert "w0" in router.live_worker_ids

    def test_heartbeat_deadline_declares_wedged_replica_dead(self):
        fake = FakeClock()
        with use(fake):
            router, workers = fake_fleet(heartbeat_timeout_s=1.0)
            workers[2].dead = True
            fake.advance(1.1)  # past the deadline; live replicas refresh, w2 cannot
            assert router.heartbeat_tick() == ["w2"]
            stats = router.stats()
            assert stats["dead_workers"] == {"w2": "heartbeat_timeout"}
            assert stats["workers_lost"] == 1
            assert workers[2].killed

    def test_successful_dispatch_refreshes_liveness(self):
        fake = FakeClock()
        with use(fake):
            router, workers = fake_fleet(heartbeat_timeout_s=1.0)
            fake.advance(5.0)  # all heartbeats stale on the fake clock
            prompt = "- name: Install nginx\n"
            served = router.predict(prompt)["worker"]
            dead = router.heartbeat_tick()  # probes succeed -> everyone refreshes
            assert served not in dead

    def test_spawner_replaces_dead_replica(self):
        fake = FakeClock()
        spawned: list[str] = []

        def spawner(worker_id: str) -> FakeWorker:
            spawned.append(worker_id)
            return FakeWorker(worker_id + "r")

        with use(fake):
            router, workers = fake_fleet(heartbeat_timeout_s=1.0, spawner=spawner)
            workers[1].dead = True
            fake.advance(1.1)
            assert router.heartbeat_tick() == ["w1"]
            assert spawned == ["w1"]
            stats = router.stats()
            assert stats["respawns"] == 1
            assert "w1r" in stats["live_workers"]


class TestStatsAggregation:
    def test_aggregate_sums_replica_counters(self):
        router, workers = fake_fleet()
        for index in range(6):
            router.predict(f"- name: prompt number {index} with some padding\n")
        stats = router.stats()
        aggregate = stats["aggregate"]
        assert aggregate["requests"] == 6
        assert aggregate["decode_tokens"] == 60
        assert aggregate["kv_arena_bytes_in_use"] == 0
        assert aggregate["prefix_cache"]["hits"] == 3 * len(workers)
        assert aggregate["prefix_cache"]["hit_rate"] == pytest.approx(0.75)
        assert set(stats["workers"]) == {"w0", "w1", "w2"}

    def test_health_reports_membership(self):
        router, workers = fake_fleet()
        assert router.health()["status"] == "ok"
        for worker_id in list(router.live_worker_ids):
            router.remove_worker(worker_id)
        health = router.health()
        assert health["status"] == "unavailable"
        assert health["live_workers"] == 0

    def test_metrics_surface(self):
        router, _ = fake_fleet()
        router.predict("- name: one prompt\n")
        payload = router.metrics()
        assert payload["fleet"]["requests"] == 1
        assert "fleet.requests" in payload["metrics"]["counters"]
        assert "fleet_requests_total" in router.metrics_prometheus()


# -- router over real engine replicas ----------------------------------------


@pytest.fixture(scope="module")
def engine_fleet():
    workers = [
        InProcessWorker(f"w{i}", spec=WorkerSpec(seed=i, max_new_tokens=8)).start()
        for i in range(2)
    ]
    router = FleetRouter(workers)
    yield router, workers
    router.stop()


class TestRouterOverEngines:
    def test_predict_end_to_end(self, engine_fleet):
        router, _ = engine_fleet
        payload = router.predict("- name: Install nginx\n", max_new_tokens=4)
        assert isinstance(payload["completion"], str)
        assert payload["worker"] in ("w0", "w1")

    def test_affinity_reuses_replica_prefix_cache(self, engine_fleet):
        router, _ = engine_fleet
        head = (
            "---\n- hosts: db01\n  tasks:\n    - name: Install postgresql on db01\n"
            "      ansible.builtin.apt:\n        name: postgresql\n        state: present\n"
        )
        assert len(head) >= DEFAULT_PREFIX_DEPTH
        first = router.predict(head + "  step: one\n", max_new_tokens=4)
        second = router.predict(head + "  step: two\n", max_new_tokens=4)
        assert first["worker"] == second["worker"]
        hits = router.stats()["aggregate"]["prefix_cache"]["hits"]
        assert hits >= 1  # the shared head hit the same replica's cache

    def test_batch_end_to_end(self, engine_fleet):
        router, _ = engine_fleet
        prompts = ["- name: Install redis\n", "- name: Start ssh\n", "- name: Copy file\n"]
        payload = router.predict_batch(prompts, max_new_tokens=4)
        assert len(payload["completions"]) == 3
        assert all(isinstance(c, str) for c in payload["completions"])
        assert payload["decoded"] >= 1

    def test_rest_server_fronts_the_fleet(self, engine_fleet):
        from repro.serving.client import PredictionClient
        from repro.serving.service import RestServer

        router, _ = engine_fleet
        with RestServer(router) as server:
            client = PredictionClient(server.url)
            out = client.predict("- name: Install nginx\n", max_new_tokens=4)
            assert out["worker"] in ("w0", "w1")
            health = client.health()
            assert health["model"] == "fleet"
            assert client.stats()["aggregate"]["requests"] >= 1


class TestProcessWorker:
    @pytest.mark.slow
    def test_process_replica_roundtrip(self):
        from repro.fleet import ProcessWorker

        worker = ProcessWorker("p0", WorkerSpec(seed=0, max_new_tokens=8)).start()
        try:
            assert worker.alive
            payload = worker.predict("- name: Install nginx\n", max_new_tokens=4)
            assert isinstance(payload["completion"], str)
            assert worker.health()["status"] == "ok"
        finally:
            worker.stop()
        assert not worker.alive

    @pytest.mark.slow
    def test_killed_process_surfaces_unavailable(self):
        from repro.fleet import ProcessWorker

        worker = ProcessWorker("p1", WorkerSpec(seed=0)).start()
        try:
            worker.kill()
            worker._process.join(timeout=10)
            with pytest.raises(WorkerUnavailableError):
                worker.predict("- name: anything\n")
        finally:
            worker.stop()
