"""Tests for repro.dataset.sources (source simulators + extraction)."""

from __future__ import annotations

from repro import yamlio
from repro.dataset.corpus import ANSIBLE, GENERIC
from repro.dataset.sources import (
    BigQuerySimulator,
    GalaxySimulator,
    GitSourceSimulator,
    RawFile,
    TABLE1_SOURCES,
    build_ansible_pretraining_corpus,
    build_galaxy_corpus,
    build_generic_pretraining_corpus,
    build_pile_corpus,
    extract_documents,
    is_ansible_repository,
    scaled_count,
)
from repro.utils.rng import SeededRng


class TestTable1Constants:
    def test_paper_counts(self):
        counts = {(s.source, s.yaml_type): s.paper_file_count for s in TABLE1_SOURCES}
        assert counts[("galaxy", ANSIBLE)] == 112_000
        assert counts[("gitlab", ANSIBLE)] == 64_000
        assert counts[("github+gbq", ANSIBLE)] == 1_100_000
        assert counts[("github+gbq", GENERIC)] == 2_200_000

    def test_usage_tags(self):
        assert {s.usage for s in TABLE1_SOURCES} == {"PT", "FT"}
        galaxy = next(s for s in TABLE1_SOURCES if s.source == "galaxy")
        assert galaxy.usage == "FT"

    def test_scaled_count(self):
        assert scaled_count(112_000, 0.001) == 112
        assert scaled_count(10, 0.0001) == 1  # floor of 1


class TestRepositoryFilter:
    def test_name_match(self):
        assert is_ansible_repository("ansible-deploy", "stuff")

    def test_description_match(self):
        assert is_ansible_repository("infra", "Ansible roles for infra")

    def test_case_insensitive(self):
        assert is_ansible_repository("ANSIBLE-x", "")

    def test_negative(self):
        assert not is_ansible_repository("terraform-config", "IaC modules")


class TestExtraction:
    def test_extension_filter(self):
        raw = [
            RawFile("repo/a.yml", "a: 1\n", "ansible-x", "", "github"),
            RawFile("repo/README.md", "# readme", "ansible-x", "", "github"),
            RawFile("repo/b.yaml", "b: 2\n", "ansible-x", "", "github"),
        ]
        corpus = extract_documents(raw, ANSIBLE)
        assert len(corpus) == 2

    def test_validity_filter(self):
        raw = [
            RawFile("r/a.yml", "a: [unclosed\n", "ansible-x", "", "github"),
            RawFile("r/b.yml", "ok: 1\n", "ansible-x", "", "github"),
            RawFile("r/c.yml", "x: &anchor 1\n", "ansible-x", "", "github"),
        ]
        corpus = extract_documents(raw, ANSIBLE)
        assert [d.content for d in corpus] == ["ok: 1\n"]

    def test_repo_filter(self):
        raw = [
            RawFile("r/a.yml", "a: 1\n", "terraform-x", "nothing", "github"),
            RawFile("r/b.yml", "b: 1\n", "x", "Ansible playbooks", "github"),
        ]
        corpus = extract_documents(raw, ANSIBLE, require_ansible_repo=True)
        assert len(corpus) == 1


class TestSimulators:
    def test_git_simulator_produces_requested_volume(self):
        files = GitSourceSimulator("github", SeededRng(0)).crawl(40)
        yaml_files = [f for f in files if f.path.endswith((".yml", ".yaml"))]
        assert len(yaml_files) >= 40

    def test_git_simulator_includes_noise(self):
        files = GitSourceSimulator("github", SeededRng(1)).crawl(150)
        contents = [f.content for f in files]
        assert len(set(contents)) < len(contents)  # duplicates exist
        assert any(not yamlio.is_valid(c) for c in contents)  # invalid YAML exists
        assert any(f.path.endswith(".md") for f in files)  # non-YAML exists

    def test_bigquery_mix(self):
        files = BigQuerySimulator(SeededRng(2)).crawl(n_ansible=5, n_generic=10)
        assert len(files) == 15

    def test_galaxy_simulator_clean(self):
        files = GalaxySimulator(SeededRng(3)).crawl(30)
        assert len(files) == 30
        assert all(yamlio.is_valid(f.content) for f in files)
        assert all(f.kind in ("playbook", "tasks") for f in files)


class TestCorpusBuilders:
    def test_galaxy_corpus(self):
        corpus = build_galaxy_corpus(SeededRng(4), scale=0.0005)
        assert len(corpus) >= 40
        assert all(d.yaml_type == ANSIBLE for d in corpus)
        assert set(corpus.counts_by_kind()) <= {"playbook", "tasks"}

    def test_ansible_pretraining_sources(self):
        corpus = build_ansible_pretraining_corpus(SeededRng(5), scale=0.00005)
        sources = set(corpus.counts_by_source())
        assert sources <= {"github", "gitlab"}
        assert len(sources) == 2

    def test_generic_pretraining(self):
        corpus = build_generic_pretraining_corpus(SeededRng(6), scale=0.00005)
        assert all(d.yaml_type == GENERIC for d in corpus)

    def test_pile_mostly_prose(self):
        corpus = build_pile_corpus(SeededRng(7), n_documents=300)
        counts = corpus.counts_by_type()
        assert counts.get("natural", 0) > counts.get("code", 0) > counts.get(ANSIBLE, 0)

    def test_deterministic(self):
        a = build_galaxy_corpus(SeededRng(8), scale=0.0003)
        b = build_galaxy_corpus(SeededRng(8), scale=0.0003)
        assert [d.content for d in a] == [d.content for d in b]

    def test_pretraining_corpora_deduplicated(self):
        corpus = build_ansible_pretraining_corpus(SeededRng(9), scale=0.0001)
        contents = [d.content for d in corpus]
        assert len(contents) == len(set(contents))
