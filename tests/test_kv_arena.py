"""Paged KV-arena: equivalence with the dense path, COW safety, zero-copy sharing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import InferenceEngine, PrefixCache, prefill_single
from repro.errors import ShapeError
from repro.nn.attention import causal_mask
from repro.nn.kv_arena import DenseKVCache, KVArena, KVCache
from repro.nn.parameter import numpy_rng
from repro.nn.rotary import shared_rotary_tables
from repro.nn.sampling import plan_prompt
from repro.nn.transformer import DecoderLM, TransformerConfig


@pytest.fixture(scope="module")
def network() -> DecoderLM:
    config = TransformerConfig(vocab_size=32, n_positions=96, dim=32, n_layers=2, n_heads=4)
    return DecoderLM(config, numpy_rng(7))


def _dense_greedy(network: DecoderLM, prompt_ids, max_new_tokens, stop_ids=frozenset()):
    """Greedy decode through the legacy concatenate caches (reference path)."""
    prompt, _ = plan_prompt(network.config.n_positions, prompt_ids, max_new_tokens)
    caches = network.new_dense_cache()
    logits = network.forward_incremental(np.array([prompt], dtype=np.int64), caches)
    next_id = int(logits[0, -1].argmax())
    window = network.config.n_positions
    out: list[int] = []
    while True:
        if next_id in stop_ids:
            break
        out.append(next_id)
        if len(out) >= max_new_tokens or len(prompt) + len(out) >= window:
            break
        logits = network.forward_incremental(np.array([[next_id]], dtype=np.int64), caches)
        next_id = int(logits[0, -1].argmax())
    return out


class TestDenseEquivalence:
    def test_single_row_decode_matches_dense(self, network):
        prompt = [3, 1, 4, 1, 5, 9, 2, 6]
        arena_caches = network.new_cache(KVArena(block_size=4))
        dense_caches = network.new_dense_cache()
        ids = np.array([prompt], dtype=np.int64)
        logits_arena = network.forward_incremental(ids, arena_caches)
        logits_dense = network.forward_incremental(ids, dense_caches)
        np.testing.assert_allclose(logits_arena, logits_dense, rtol=1e-5, atol=1e-6)
        token = int(logits_dense[0, -1].argmax())
        for _ in range(30):
            step = np.array([[token]], dtype=np.int64)
            logits_arena = network.forward_incremental(step, arena_caches)
            logits_dense = network.forward_incremental(step, dense_caches)
            np.testing.assert_allclose(logits_arena, logits_dense, rtol=1e-5, atol=1e-6)
            assert int(logits_arena[0, -1].argmax()) == int(logits_dense[0, -1].argmax())
            token = int(logits_dense[0, -1].argmax())

    def test_left_padded_batched_decode_matches_dense(self, network):
        prompts = [[1, 2, 3], [4, 5, 6, 7, 8, 9, 10], [11], [3, 1, 4, 1, 5]]
        engine = InferenceEngine(network, prefix_cache_capacity=0, max_batch_size=4)
        results = engine.generate_batch(prompts, max_new_tokens=12)
        for prompt, result in zip(prompts, results):
            assert result.token_ids == _dense_greedy(network, prompt, 12)

    def test_prefix_seeded_decode_matches_dense(self, network):
        base = [7, 8, 9, 10, 11, 12, 13, 14]
        extended = base + [15, 16]
        engine = InferenceEngine(network, prefix_cache_capacity=8, max_batch_size=2)
        engine.generate_batch([base], max_new_tokens=8)
        seeded = engine.generate_batch([extended], max_new_tokens=8)[0]
        assert engine.prefix_cache.hits >= 1  # the second call decoded off shared slabs
        assert seeded.token_ids == _dense_greedy(network, extended, 8)

    def test_float16_storage_stays_close_to_dense(self, network):
        prompt = [2, 7, 1, 8, 2, 8]
        caches = network.new_cache(KVArena(block_size=8, dtype=np.float16))
        dense = network.new_dense_cache()
        ids = np.array([prompt], dtype=np.int64)
        logits_fp16 = network.forward_incremental(ids, caches)
        logits_fp32 = network.forward_incremental(ids, dense)
        np.testing.assert_allclose(logits_fp16, logits_fp32, rtol=0.0, atol=0.05)
        token = int(logits_fp32[0, -1].argmax())
        for _ in range(10):
            step = np.array([[token]], dtype=np.int64)
            logits_fp16 = network.forward_incremental(step, caches)
            logits_fp32 = network.forward_incremental(step, dense)
            np.testing.assert_allclose(logits_fp16, logits_fp32, rtol=0.0, atol=0.05)
            token = int(logits_fp32[0, -1].argmax())
        assert caches[0].keys.dtype == np.float32  # reads upcast for compute
        assert engine_dtype(caches[0]) == np.float16


def engine_dtype(cache: KVCache):
    return cache._slab.k.dtype


class TestCopyOnWrite:
    @staticmethod
    def _filled_cache(arena: KVArena, length: int, seed: int = 0) -> KVCache:
        rng = np.random.default_rng(seed)
        cache = KVCache(arena)
        keys = rng.standard_normal((1, 2, length, 4)).astype(np.float32)
        values = rng.standard_normal((1, 2, length, 4)).astype(np.float32)
        cache.append(keys, values)
        return cache

    def test_sibling_views_survive_continuation_writes(self):
        arena = KVArena(block_size=4)
        cache = self._filled_cache(arena, 6)
        frozen_keys = cache.keys.copy()
        ref = cache.share(6)
        cache.release()

        first = ref.alias(6)
        second = ref.alias(6)
        extra = np.full((1, 2, 1, 4), 5.0, dtype=np.float32)
        first.append(extra, extra)  # promotes to in-place writer (seat was free)
        sibling_extra = np.full((1, 2, 1, 4), -3.0, dtype=np.float32)
        second.append(sibling_extra, sibling_extra)  # must copy-on-write

        assert arena.cow_copies == 1
        np.testing.assert_array_equal(first.keys[:, :, :6], frozen_keys)
        np.testing.assert_array_equal(second.keys[:, :, :6], frozen_keys)
        np.testing.assert_array_equal(first.keys[:, :, 6], extra[:, :, 0])
        np.testing.assert_array_equal(second.keys[:, :, 6], sibling_extra[:, :, 0])
        # The stored claim still reads the original columns.
        np.testing.assert_array_equal(ref.alias().keys, frozen_keys)

    def test_writes_below_frozen_mark_are_never_in_place(self):
        arena = KVArena(block_size=8)
        cache = self._filled_cache(arena, 4)
        ref = cache.share(4)
        cache.release()
        short = ref.alias(2)  # claims fewer columns than are frozen
        original = ref.alias().keys.copy()
        stomp = np.full((1, 2, 1, 4), 99.0, dtype=np.float32)
        short.append(stomp, stomp)  # would overwrite frozen column 2 in place
        assert arena.cow_copies == 1
        np.testing.assert_array_equal(ref.alias().keys, original)

    def test_share_beyond_length_rejected(self):
        arena = KVArena(block_size=4)
        cache = self._filled_cache(arena, 3)
        with pytest.raises(ShapeError):
            cache.share(5)


class TestZeroCopySharing:
    def test_insert_and_lookup_copy_nothing(self, network):
        arena = KVArena(block_size=8)
        prompt = [1, 2, 3, 4, 5]
        caches, _, _ = prefill_single(network, prompt, arena=arena)
        allocated = arena.slabs_allocated
        copied = arena.bytes_copied
        cache = PrefixCache(4)
        assert cache.insert(prompt, caches)
        hit = cache.lookup(prompt + [6])
        assert hit is not None
        matched, seeded = hit
        assert matched == len(prompt)
        assert arena.slabs_allocated == allocated
        assert arena.bytes_copied == copied
        assert seeded[0].length == len(prompt)

    def test_keystroke_extension_appends_in_place(self, network):
        """The dominant serving pattern — prompt grows by one token — is free."""
        arena = KVArena(block_size=8)
        prompt = [1, 2, 3, 4, 5]
        caches, _, _ = prefill_single(network, prompt, arena=arena)
        cache = PrefixCache(4)
        assert cache.insert(prompt, caches)
        for layer_cache in caches:
            layer_cache.release()  # the request retired; writer seats free up
        allocated = arena.slabs_allocated
        copied = arena.bytes_copied
        matched, seeded = cache.lookup(prompt + [6])
        _, _, prefilled = prefill_single(network, prompt + [6], seeded_caches=seeded, arena=arena)
        assert prefilled == 1
        assert arena.cow_copies == 0
        assert arena.slabs_allocated == allocated  # extended the shared slab in place
        assert arena.bytes_copied == copied

    def test_geometric_growth_amortizes_copies(self):
        arena = KVArena(block_size=4)
        cache = KVCache(arena)
        column = np.ones((1, 2, 1, 4), dtype=np.float32)
        for _ in range(256):
            cache.append(column, column)
        final_bytes = cache._slab.k.nbytes + cache._slab.v.nbytes
        assert cache.length == 256
        # Doubling growth copies each byte O(1) times on average.
        assert arena.bytes_copied < 3 * final_bytes
        assert arena.cow_copies == 0

    def test_append_within_capacity_allocates_nothing(self):
        arena = KVArena(block_size=32)
        cache = KVCache(arena)
        column = np.ones((1, 2, 1, 4), dtype=np.float32)
        cache.append(column, column)
        assert arena.slabs_allocated == 1
        baseline = cache.last_append_moved_bytes
        for _ in range(31):
            cache.append(column, column)
        assert arena.slabs_allocated == 1
        assert arena.bytes_copied == 0
        assert cache.last_append_moved_bytes == baseline  # flat per-step traffic

    def test_dense_cache_traffic_grows_with_length(self):
        cache = DenseKVCache()
        column = np.ones((1, 2, 1, 4), dtype=np.float32)
        cache.append(column, column)
        early = cache.last_append_moved_bytes
        for _ in range(31):
            cache.append(column, column)
        assert cache.length == 32
        assert cache.last_append_moved_bytes > 10 * early  # O(T) per append


class TestHotPathCaches:
    def test_causal_mask_is_memoized_and_readonly(self):
        a = causal_mask(4, 9, 6)
        b = causal_mask(4, 9, 6)
        assert a is b
        assert not a.flags.writeable
        expected = np.triu(np.ones((4, 9), dtype=bool), k=6)
        np.testing.assert_array_equal(a, expected)

    def test_vacuous_mask_is_none(self):
        assert causal_mask(1, 5, 5) is None  # the every-decode-step shape

    def test_rotary_tables_shared_across_layers_and_models(self, network):
        cos0 = network.blocks[0].attention._cos
        cos1 = network.blocks[1].attention._cos
        assert cos0 is cos1
        assert not cos0.flags.writeable
        twin = DecoderLM(network.config, numpy_rng(99))
        assert twin.blocks[0].attention._cos is cos0
        cos, sin = shared_rotary_tables(network.config.n_positions, network.config.dim // network.config.n_heads)
        assert cos is cos0


class TestPrefixCacheAccounting:
    def test_short_prompt_counts_as_skipped_not_miss(self):
        cache = PrefixCache(4)
        assert cache.lookup([5]) is None
        stats = cache.stats()
        assert stats["skipped"] == 1
        assert stats["misses"] == 0
        assert stats["hit_rate"] == 0.0
        # Backward-compatible keys are all still present.
        for key in ("entries", "capacity", "hits", "misses", "evictions", "tokens_reused", "hit_rate"):
            assert key in stats

    def test_vectorized_common_prefix_matches_reference(self):
        rng = np.random.default_rng(3)

        def reference(a, b):
            matched = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                matched += 1
            return matched

        for _ in range(50):
            shared = rng.integers(0, 4, size=rng.integers(0, 12)).tolist()
            a = shared + rng.integers(0, 4, size=rng.integers(0, 6)).tolist()
            b = shared + rng.integers(4, 8, size=rng.integers(0, 6)).tolist()
            got = PrefixCache._common_prefix(
                np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
            )
            assert got == reference(a, b)


class TestEngineIntegration:
    def test_engine_stats_expose_arena(self, network):
        engine = InferenceEngine(network, prefix_cache_capacity=4, kv_block_size=16)
        engine.generate_batch([[1, 2, 3], [4, 5]], max_new_tokens=6)
        stats = engine.stats()
        arena = stats["kv_arena"]
        assert arena["block_size"] == 16
        assert arena["dtype"] == "float32"
        assert arena["appends"] > 0
        assert arena["peak_bytes_in_use"] > 0
        assert stats["prefix_cache"]["skipped"] == 0

    def test_engine_float16_mode_runs(self, network):
        engine = InferenceEngine(network, prefix_cache_capacity=4, kv_dtype="float16")
        results = engine.generate_batch([[9, 8, 7, 6]], max_new_tokens=6)
        assert results[0].token_ids
        assert engine.stats()["kv_arena"]["dtype"] == "float16"

    def test_invalid_kv_dtype_rejected(self, network):
        with pytest.raises(ShapeError):
            InferenceEngine(network, kv_dtype="int8")


class TestSpeculativeRollback:
    """truncate()/realign_rows(): the speculative-decode rollback primitives."""

    @staticmethod
    def _filled(arena: KVArena, batch: int, length: int, seed: int = 0) -> KVCache:
        rng = np.random.default_rng(seed)
        cache = KVCache(arena)
        keys = rng.standard_normal((batch, 2, length, 4)).astype(np.float32)
        values = rng.standard_normal((batch, 2, length, 4)).astype(np.float32)
        cache.append(keys, values)
        return cache

    def test_truncate_forgets_columns_without_copying(self):
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 1, 6)
        before = cache.keys[:, :, :4].copy()
        copied = arena.bytes_copied
        cache.truncate(4)
        assert cache.length == 4
        assert arena.bytes_copied == copied  # zero-copy rollback
        np.testing.assert_array_equal(cache.keys, before)

    def test_truncate_bounds_checked(self):
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 1, 3)
        with pytest.raises(ShapeError):
            cache.truncate(4)
        with pytest.raises(ShapeError):
            cache.truncate(-1)
        cache.truncate(3)  # no-op at current length
        assert cache.length == 3

    def test_truncate_past_shared_prefix_forces_cow(self):
        """Rolling back below the frozen mark must not corrupt the sharer."""
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 1, 6)
        ref = cache.share(6)  # prefix cache holds columns 0..6
        sharer = ref.alias()
        frozen = sharer.keys.copy()
        cache.truncate(3)  # rollback below the frozen boundary
        stomp = np.full((1, 2, 1, 4), 99.0, dtype=np.float32)
        cache.append(stomp, stomp)  # would overwrite frozen column 3 in place
        assert arena.cow_copies == 1
        np.testing.assert_array_equal(sharer.keys, frozen)  # sharer intact
        np.testing.assert_array_equal(cache.keys[:, :, :3], frozen[:, :, :3])
        np.testing.assert_array_equal(cache.keys[:, :, 3], stomp[:, :, 0])
        cache.release()
        sharer.release()
        ref.release()
        assert arena.stats()["bytes_in_use"] == 0

    def test_truncate_exclusive_claim_clamps_stale_frozen_mark(self):
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 1, 6)
        ref = cache.share(6)
        ref.release()  # sharer gone; the frozen mark is now stale
        cache.truncate(2)
        grows = arena.grow_copies
        extra = np.full((1, 2, 1, 4), 1.0, dtype=np.float32)
        cache.append(extra, extra)  # exclusive again: in place, no copies
        assert arena.cow_copies == 0 and arena.grow_copies == grows
        assert cache.length == 3

    def test_truncate_above_frozen_keeps_writer_seat(self):
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 1, 6)
        ref = cache.share(3)
        cache.truncate(4)  # still above the frozen mark
        extra = np.full((1, 2, 1, 4), 2.0, dtype=np.float32)
        cache.append(extra, extra)
        assert arena.cow_copies == 0  # write landed above frozen columns, in place
        ref.release()
        cache.release()
        assert arena.stats()["bytes_in_use"] == 0

    def test_realign_rows_repacks_right_aligned(self):
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 3, 7)
        original = cache.keys.copy()
        # Row 0 keeps columns 1..6, row 1 keeps 0..7, row 2 keeps 3..7.
        cache.realign_rows([(1, 5), (0, 7), (3, 4)])
        assert cache.length == 7
        got = cache.keys
        np.testing.assert_array_equal(got[0, :, 2:], original[0, :, 1:6])
        np.testing.assert_array_equal(got[0, :, :2], 0)
        np.testing.assert_array_equal(got[1], original[1])
        np.testing.assert_array_equal(got[2, :, 3:], original[2, :, 3:7])
        np.testing.assert_array_equal(got[2, :, :3], 0)

    def test_realign_rows_leaves_sharers_intact(self):
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 1, 6)
        ref = cache.share(6)
        sharer = ref.alias()
        frozen = sharer.keys.copy()
        cache.realign_rows([(2, 3)])
        np.testing.assert_array_equal(sharer.keys, frozen)
        np.testing.assert_array_equal(cache.keys, frozen[:, :, 2:5])
        cache.release()
        sharer.release()
        ref.release()
        assert arena.stats()["bytes_in_use"] == 0

    def test_realign_rows_validates_spans(self):
        arena = KVArena(block_size=8)
        cache = self._filled(arena, 2, 5)
        with pytest.raises(ShapeError):
            cache.realign_rows([(0, 5)])  # wrong batch
        with pytest.raises(ShapeError):
            cache.realign_rows([(0, 6), (0, 5)])  # past the end
        with pytest.raises(ShapeError):
            cache.realign_rows([(-1, 3), (0, 5)])  # negative start

    def test_truncate_interacts_with_merge_and_select(self):
        """Rollback composes with mid-batch admission and retirement."""
        arena = KVArena(block_size=8)
        batch = self._filled(arena, 1, 5, seed=1)
        row = self._filled(arena, 1, 3, seed=2)
        row_data = row.keys.copy()
        batch.merge_row(row, 5)
        row.release()
        # Speculative step appends 3 columns, then rolls 2 back.
        rng = np.random.default_rng(3)
        keys = rng.standard_normal((2, 2, 3, 4)).astype(np.float32)
        batch.append(keys, keys)
        batch.truncate(6)
        np.testing.assert_array_equal(batch.keys[1, :, 2:5], row_data[0])
        np.testing.assert_array_equal(batch.keys[:, :, 5], keys[:, :, 0])
        # Retire row 0: bottom row keeps its columns, pads trimmed.
        batch.select_rows([1], trim=2)
        assert batch.length == 4
        np.testing.assert_array_equal(batch.keys[0, :, :3], row_data[0])
        batch.release()
        assert arena.stats()["bytes_in_use"] == 0

    def test_dense_reference_truncate(self):
        dense = DenseKVCache()
        keys = np.ones((1, 2, 5, 4), dtype=np.float32)
        dense.append(keys, keys)
        dense.truncate(2)
        assert dense.length == 2
        with pytest.raises(ShapeError):
            dense.truncate(3)
