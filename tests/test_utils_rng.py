"""Tests for repro.utils.rng."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.rng import SeededRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_labels_change_seed(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_base_seed_changes_seed(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_label_path_not_concatenation_ambiguous(self):
        # ("ab",) and ("a", "b") must be distinct streams.
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_int_labels_accepted(self):
        assert derive_seed(7, 1, 2) == derive_seed(7, 1, 2)


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(5)
        b = SeededRng(5)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]

    def test_child_streams_independent_of_parent_draws(self):
        a = SeededRng(5)
        a.randint(0, 10)  # consume parent draws
        b = SeededRng(5)
        assert a.child("x").randint(0, 1_000_000) == b.child("x").randint(0, 1_000_000)

    def test_shuffled_leaves_input_untouched(self):
        items = [1, 2, 3, 4, 5]
        result = SeededRng(0).shuffled(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(result) == items

    def test_shuffle_in_place_returns_same_list(self):
        items = [1, 2, 3]
        result = SeededRng(0).shuffle(items)
        assert result is items

    def test_sample_distinct(self):
        picked = SeededRng(0).sample(list(range(100)), 10)
        assert len(set(picked)) == 10

    def test_bernoulli_extremes(self):
        rng = SeededRng(0)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    @given(st.floats(min_value=0.1, max_value=5.0))
    def test_poisson_like_count_bounds(self, mean):
        rng = SeededRng(3)
        for _ in range(20):
            count = rng.poisson_like_count(mean, maximum=7)
            assert 0 <= count <= 7

    def test_poisson_like_count_zero_mean(self):
        assert SeededRng(0).poisson_like_count(0.0, 5) == 0

    def test_poisson_like_count_mean_roughly_respected(self):
        rng = SeededRng(11)
        draws = [rng.poisson_like_count(2.0, 50) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 1.6 < mean < 2.4

    def test_choices_weighted(self):
        rng = SeededRng(0)
        picks = rng.choices(["a", "b"], weights=[0.0, 1.0], k=20)
        assert picks == ["b"] * 20
