"""Tests for repro.nn.optim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import Adam, CosineSchedule, LinearSchedule, clip_grad_norm
from repro.nn.parameter import Parameter


def quadratic_parameter() -> Parameter:
    return Parameter("w", np.array([5.0, -3.0], dtype=np.float32))


class TestAdam:
    def test_minimizes_quadratic(self):
        parameter = quadratic_parameter()
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(300):
            parameter.zero_grad()
            parameter.grad += parameter.data  # gradient of ||w||^2 / 2
            optimizer.step()
        assert np.abs(parameter.data).max() < 1e-2

    def test_lr_override_per_step(self):
        parameter = quadratic_parameter()
        optimizer = Adam([parameter], learning_rate=1.0)
        parameter.grad += parameter.data
        before = parameter.data.copy()
        optimizer.step(learning_rate=0.0)
        assert np.array_equal(parameter.data, before)

    def test_weight_decay_pulls_to_zero(self):
        parameter = Parameter("w", np.array([1.0], dtype=np.float32))
        optimizer = Adam([parameter], learning_rate=0.05, weight_decay=0.5)
        for _ in range(200):
            parameter.zero_grad()  # zero task gradient; only decay acts
            optimizer.step()
        assert abs(float(parameter.data[0])) < 0.1

    def test_zero_grad_helper(self):
        parameter = quadratic_parameter()
        parameter.grad += 1.0
        Adam([parameter]).zero_grad()
        assert np.allclose(parameter.grad, 0.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        parameter = Parameter("w", np.zeros(3, dtype=np.float32))
        parameter.grad[:] = [0.1, 0.1, 0.1]
        before = parameter.grad.copy()
        norm = clip_grad_norm([parameter], max_norm=10.0)
        assert np.array_equal(parameter.grad, before)
        assert norm == pytest.approx(np.sqrt(0.03))

    def test_clips_to_max(self):
        parameter = Parameter("w", np.zeros(2, dtype=np.float32))
        parameter.grad[:] = [30.0, 40.0]
        clip_grad_norm([parameter], max_norm=5.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(5.0, rel=1e-5)

    def test_zero_grads_safe(self):
        parameter = Parameter("w", np.zeros(2, dtype=np.float32))
        assert clip_grad_norm([parameter], 1.0) == 0.0


class TestSchedules:
    def test_linear_decreases(self):
        schedule = LinearSchedule(peak_lr=1.0, total_steps=10)
        lrs = [schedule.lr_at(step) for step in range(11)]
        assert lrs[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))
        assert lrs[10] == pytest.approx(0.0)

    def test_linear_warmup(self):
        schedule = LinearSchedule(peak_lr=1.0, total_steps=20, warmup_steps=5)
        assert schedule.lr_at(0) == pytest.approx(0.2)
        assert schedule.lr_at(4) == pytest.approx(1.0)

    def test_linear_final_fraction(self):
        schedule = LinearSchedule(peak_lr=1.0, total_steps=10, final_fraction=0.1)
        assert schedule.lr_at(10) == pytest.approx(0.1)

    def test_cosine_shape(self):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=100)
        assert schedule.lr_at(0) == pytest.approx(1.0)
        assert schedule.lr_at(50) == pytest.approx(0.5, abs=0.02)
        assert schedule.lr_at(100) == pytest.approx(0.0, abs=1e-6)

    def test_cosine_monotone_after_warmup(self):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=50, warmup_steps=5)
        lrs = [schedule.lr_at(step) for step in range(5, 51)]
        assert all(a >= b - 1e-9 for a, b in zip(lrs, lrs[1:]))

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0)
        with pytest.raises(ValueError):
            CosineSchedule(1.0, -5)

    def test_beyond_total_steps_clamped(self):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=10, final_fraction=0.2)
        assert schedule.lr_at(1000) == pytest.approx(0.2)
