"""The paper's own figures as integration tests.

Fig. 1 (the SSH playbook) and Fig. 2 (the four generation types built from
the VyOS network playbook and the apache role) must flow through the whole
stack: parse, validate, classify, extract samples, score.
"""

from __future__ import annotations

import pytest

from repro import ansible, yamlio
from repro.dataset.corpus import Document
from repro.dataset.finetune import extract_from_playbook, extract_from_task_list
from repro.dataset.prompt import NL_TO_PB, NL_TO_T, PB_NL_TO_T, T_NL_TO_T
from repro.metrics import ansible_aware, is_schema_correct, sentence_bleu

FIG2_PLAYBOOK = """---
- name: Network Setup Playbook
  connection: ansible.netcommon.network_cli
  gather_facts: false
  hosts: all
  tasks:
    - name: Get config for VyOS devices
      vyos.vyos.vyos_facts:
        gather_subset: all
    - name: Update the hostname
      vyos.vyos.vyos_config:
        backup: true
        lines:
          - set system host-name vyos-changed
    - name: Get changed config for VyOS devices
      vyos.vyos.vyos_facts:
        gather_subset: all
"""

FIG2_TASKS = """---
- name: Ensure apache is at the latest version
  ansible.builtin.yum:
    name: httpd
    state: latest
- name: Write the apache config file
  ansible.builtin.template:
    src: /srv/httpd.j2
    dest: /etc/httpd.conf
"""


class TestFig1:
    def test_parses_and_validates(self, fig1_text):
        data = yamlio.loads(fig1_text)
        assert ansible.classify_snippet(data) == "playbook"
        assert ansible.validate(data) == []

    def test_roundtrip_preserves_text(self, fig1_text):
        assert yamlio.dumps(yamlio.loads(fig1_text)) == fig1_text

    def test_task_modules(self, fig1_text):
        playbook = ansible.Playbook.from_data(yamlio.loads(fig1_text))
        assert [task.fqcn for task in playbook.all_tasks()] == [
            "ansible.builtin.apt",
            "ansible.builtin.service",
        ]


class TestFig2GenerationTypes:
    """Each subfigure of Fig. 2 corresponds to one generation type."""

    def test_pb_nl_to_t_from_network_playbook(self):
        plays = yamlio.loads(FIG2_PLAYBOOK)
        document = Document("fig2a", "paper", "ansible", FIG2_PLAYBOOK)
        samples = extract_from_playbook(document, plays)
        assert [sample.generation_type for sample in samples] == [PB_NL_TO_T, PB_NL_TO_T]
        last = samples[-1]
        assert last.nl_prompt == "Get changed config for VyOS devices"
        assert "vyos.vyos.vyos_facts" in last.target_text
        # Fig 2a: the context is the playbook with the first two tasks.
        assert last.input_text.count("- name:") == 4  # play + 2 context + prompt

    def test_nl_to_pb_when_playbook_small(self):
        plays = yamlio.loads(FIG2_PLAYBOOK)
        plays[0]["tasks"] = plays[0]["tasks"][:2]
        document = Document("fig2b", "paper", "ansible", FIG2_PLAYBOOK)
        samples = extract_from_playbook(document, plays)
        assert [sample.generation_type for sample in samples] == [NL_TO_PB]
        sample = samples[0]
        assert sample.nl_prompt.startswith("Network Setup Playbook")
        assert "Update the hostname" in sample.nl_prompt

    def test_t_nl_to_t_from_apache_role(self):
        tasks = yamlio.loads(FIG2_TASKS)
        document = Document("fig2c", "paper", "ansible", FIG2_TASKS)
        samples = extract_from_task_list(document, tasks)
        assert [sample.generation_type for sample in samples] == [NL_TO_T, T_NL_TO_T]
        follow_up = samples[1]
        assert follow_up.nl_prompt == "Write the apache config file"
        assert "ansible.builtin.template" in follow_up.target_text
        # Fig 2c: the context is the first (yum) task.
        assert "ansible.builtin.yum" in follow_up.input_text

    def test_nl_to_t_first_task(self):
        tasks = yamlio.loads(FIG2_TASKS)
        document = Document("fig2d", "paper", "ansible", FIG2_TASKS)
        samples = extract_from_task_list(document, tasks)
        first = samples[0]
        assert first.generation_type == NL_TO_T
        assert first.input_text == "- name: Ensure apache is at the latest version\n"
        assert "ansible.builtin.yum" in first.target_text


class TestFig2Metrics:
    def test_paper_snippets_schema_correct(self):
        assert is_schema_correct(FIG2_PLAYBOOK)
        assert is_schema_correct(FIG2_TASKS)

    def test_copy_template_equivalence_on_fig2(self):
        reference = """- name: Write the apache config file
  ansible.builtin.template:
    src: /srv/httpd.j2
    dest: /etc/httpd.conf
"""
        prediction = reference.replace("template", "copy")
        score = ansible_aware(reference, prediction)
        assert score == pytest.approx(75.0)

    def test_bleu_sane_on_near_miss(self):
        reference = FIG2_TASKS
        prediction = FIG2_TASKS.replace("httpd", "nginx")
        assert 40.0 < sentence_bleu(reference, prediction) < 100.0
