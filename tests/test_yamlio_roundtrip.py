"""Property-based round-trip tests for the YAML engine.

The central invariant: for every value graph built from supported types,
``loads(dumps(v)) == v``, and PyYAML (the oracle the paper's pipeline used)
agrees with our parser on our emitter's output.
"""

from __future__ import annotations

import pytest
import yaml as pyyaml
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import yamlio

# Scalars whose YAML round trip is exact (floats excluded: repr formatting
# differences would need approx comparisons; they're covered separately).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**12, max_value=10**12),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF, exclude_characters="\x7f\x85\xa0"),
        max_size=24,
    ),
)

keys = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="'\"\\"),
    min_size=1,
    max_size=12,
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=20,
)


@settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(values)
def test_loads_dumps_roundtrip(value):
    assert yamlio.loads(yamlio.dumps(value)) == value


@settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(values)
def test_pyyaml_agrees_on_emitted_output(value):
    text = yamlio.dumps(value)
    assert pyyaml.safe_load(text) == value


@settings(max_examples=60, deadline=None)
@given(st.lists(values, min_size=1, max_size=3))
def test_multidocument_roundtrip(documents):
    text = yamlio.dumps_all(documents)
    assert yamlio.loads_all(text) == documents


@settings(max_examples=60, deadline=None)
@given(values)
def test_normalize_idempotent(value):
    text = yamlio.dumps(value)
    assert yamlio.normalize(yamlio.normalize(text)) == yamlio.normalize(text)


@settings(max_examples=80, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float_roundtrip_approximate(value):
    loaded = yamlio.loads(yamlio.dumps({"x": float(value)}))
    assert loaded["x"] == pytest.approx(value, rel=1e-6, abs=1e-12)


def test_synthetic_corpus_roundtrips(galaxy_corpus):
    """Every synthesized Galaxy file parses and re-emits identically."""
    for document in galaxy_corpus.documents[:50]:
        value = yamlio.loads(document.content)
        assert yamlio.loads(yamlio.dumps(value)) == value
        assert pyyaml.safe_load(document.content) == value


@pytest.mark.parametrize(
    "value",
    ["=", "0x_", "0o_", "0b_", "._", "1_", "0644x"],
    ids=repr,
)
def test_resolver_edge_scalars_quote_and_agree(value):
    """Strings a YAML 1.1 resolver matches but cannot construct must be
    quoted on emit: bare ``=`` resolves to the value-key tag and the
    underscore-only numeric bodies crash strict int/float constructors."""
    text = yamlio.dumps({"k": value})
    assert yamlio.loads(text) == {"k": value}
    assert pyyaml.safe_load(text) == {"k": value}


@pytest.mark.parametrize("raw", ["0x_", "._", "0o_"])
def test_parse_degenerate_numeric_stays_string(raw):
    assert yamlio.loads(f"k: {raw}") == {"k": raw}
