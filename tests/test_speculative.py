"""Tests for repro.engine.speculative (draft-then-verify decoding).

The load-bearing property is *greedy identity*: speculative decoding must
produce byte-identical output to non-speculative greedy for every request
— regardless of draft quality, k, storage dtype, or prefix-cache sharing.
A draft only ever changes how many greedy tokens one model forward
verifies, never which tokens come out.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.engine import (
    InferenceEngine,
    NgramDraft,
    RetrievalSuffixDraft,
    build_draft_model,
)
from repro.engine.speculative import DraftModel
from repro.errors import EngineError
from repro.nn.optim import Adam
from repro.nn.parameter import numpy_rng
from repro.nn.sampling import generate_greedy
from repro.nn.transformer import DecoderLM, TransformerConfig

pytestmark = pytest.mark.speculative


@pytest.fixture(scope="module")
def trained_model():
    """Same cycle-continuation model as test_engine: peaked, deterministic."""
    config = TransformerConfig(vocab_size=16, n_positions=24, dim=16, n_layers=2, n_heads=4)
    model = DecoderLM(config, numpy_rng(1))
    ids = np.array([[1, 2, 3, 4] * 5], dtype=np.int64)
    targets = np.roll(ids, -1, axis=1)
    targets[:, -1] = -1
    optimizer = Adam(model.parameters(), learning_rate=3e-3)
    for _ in range(150):
        model.zero_grad()
        model.loss_and_backward(ids, targets)
        optimizer.step()
    return model


MIXED_PROMPTS = [
    [1, 2, 3, 4, 1, 2],
    [2, 3, 4],
    [1, 2],
    [3, 4, 1, 2, 3, 4, 1],
    [4, 1, 2, 3, 4],
]


class CycleDraft:
    """A near-oracle drafter for the cycle model: proposes 1,2,3,4,1,..."""

    name = "cycle"

    def propose(self, context_ids: list[int], k: int) -> list[int]:
        last = context_ids[-1]
        return [((last - 1 + offset) % 4) + 1 for offset in range(1, k + 1)]


class JunkDraft:
    """Deterministic garbage: every draft token disagrees with the model."""

    name = "junk"

    def propose(self, context_ids: list[int], k: int) -> list[int]:
        return [((context_ids[-1] + 7 * offset) % 9) + 5 for offset in range(k)]


class SilentDraft:
    """Never has an opinion; the batcher must fall back to plain steps."""

    name = "silent"

    def propose(self, context_ids: list[int], k: int) -> list[int]:
        return []


def assert_matches_sequential(model, results, prompts, max_new_tokens, stop_ids=frozenset()):
    for prompt, got in zip(prompts, results):
        want = generate_greedy(model, prompt, max_new_tokens, stop_ids=stop_ids)
        assert got.token_ids == want.token_ids, f"prompt {prompt}: {got} != {want}"
        assert got.stop_reason == want.stop_reason
        assert got.effective_budget == want.effective_budget


class TestGreedyIdentity:
    """Speculative on/off must be byte-identical, whatever the draft says."""

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    @pytest.mark.parametrize("drafter", [CycleDraft(), JunkDraft(), SilentDraft()])
    def test_identity_across_k_and_draft_quality(self, trained_model, drafter, k):
        engine = InferenceEngine(
            trained_model, max_batch_size=3, speculative_k=k, draft_model=drafter
        )
        results = engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8)

    def test_identity_with_stop_tokens(self, trained_model):
        engine = InferenceEngine(
            trained_model, max_batch_size=4, speculative_k=4, draft_model=CycleDraft()
        )
        results = engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8, stop_ids={3})
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8, stop_ids={3})
        assert any(result.stop_reason == "stop_token" for result in results)

    def test_identity_with_fp16_kv(self, trained_model):
        plain = InferenceEngine(trained_model, max_batch_size=3, kv_dtype="float16")
        want = plain.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        spec = InferenceEngine(
            trained_model,
            max_batch_size=3,
            kv_dtype="float16",
            speculative_k=4,
            draft_model=CycleDraft(),
        )
        got = spec.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        for a, b in zip(want, got):
            assert a.token_ids == b.token_ids and a.stop_reason == b.stop_reason

    def test_identity_with_prefix_cache_shared_slabs(self, trained_model):
        """Later rounds prefill from frozen shared slabs, then roll back past them."""
        head = [1, 2, 3, 4, 1, 2, 3, 4]
        prompts = [head + tail for tail in ([1], [1, 2], [2, 3], [3], [4, 1])]
        engine = InferenceEngine(
            trained_model, max_batch_size=3, speculative_k=4, draft_model=CycleDraft()
        )
        for _ in range(3):  # repeat: rounds 2+ hit the prefix cache
            results = engine.generate_batch(prompts, max_new_tokens=6)
            assert_matches_sequential(trained_model, results, prompts, 6)
        assert engine.stats()["prefix_tokens_reused"] > 0
        engine.prefix_cache.clear()
        assert engine.stats()["kv_arena"]["bytes_in_use"] == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identity_on_random_models_and_prompts(self, seed):
        """Property sweep: random weights, random prompts, fitted drafters."""
        import random

        config = TransformerConfig(vocab_size=32, n_positions=48, dim=16, n_layers=2, n_heads=4)
        model = DecoderLM(config, numpy_rng(seed))
        rng = random.Random(seed)
        prompts = [
            [rng.randint(1, 31) for _ in range(rng.randint(2, 10))] for _ in range(7)
        ]
        want = InferenceEngine(model, max_batch_size=4).generate_batch(
            prompts, max_new_tokens=10
        )
        draft = RetrievalSuffixDraft()
        for prompt, result in zip(prompts, want):
            draft.observe(list(prompt) + list(result.token_ids))
        engine = InferenceEngine(model, max_batch_size=4, speculative_k=5, draft_model=draft)
        got = engine.generate_batch(prompts, max_new_tokens=10)
        for a, b in zip(want, got):
            assert a.token_ids == b.token_ids and a.stop_reason == b.stop_reason
        speculative = engine.stats()["speculative"]
        assert speculative["accepted_tokens"] > 0  # the fitted drafter actually helped

    def test_arena_drains_after_speculative_run(self, trained_model):
        engine = InferenceEngine(
            trained_model, max_batch_size=3, speculative_k=4, draft_model=JunkDraft()
        )
        engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        engine.prefix_cache.clear()
        assert engine.stats()["kv_arena"]["bytes_in_use"] == 0


class TestSpeculativeStats:
    def test_stats_section_present_and_consistent(self, trained_model):
        engine = InferenceEngine(
            trained_model, max_batch_size=3, speculative_k=4, draft_model=CycleDraft()
        )
        engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        stats = engine.stats()["speculative"]
        assert stats["k"] == 4
        assert stats["draft_model"] == "cycle"
        assert stats["steps"] > 0
        assert 0 < stats["accepted_tokens"] <= stats["proposed_tokens"]
        assert 0.0 < stats["acceptance_rate"] <= 1.0
        assert 1.0 <= stats["mean_accept_length"] <= 5.0
        # The near-oracle drafter should accept nearly everything.
        assert stats["acceptance_rate"] > 0.5

    def test_stats_absent_without_speculation(self, trained_model):
        engine = InferenceEngine(trained_model, max_batch_size=3)
        engine.generate_batch(MIXED_PROMPTS[:2], max_new_tokens=4)
        assert "speculative" not in engine.stats()

    def test_metrics_registered(self, trained_model):
        engine = InferenceEngine(
            trained_model, max_batch_size=3, speculative_k=3, draft_model=CycleDraft()
        )
        engine.generate_batch(MIXED_PROMPTS[:3], max_new_tokens=6)
        names = engine.obs.metrics.names()
        assert "engine.speculative_steps" in names
        assert "engine.draft_tokens_proposed" in names
        assert "engine.draft_tokens_accepted" in names
        assert "engine.speculative_accept_length" in names

    def test_configuration_validation(self, trained_model):
        with pytest.raises(EngineError):
            InferenceEngine(trained_model, speculative_k=2)  # no draft model
        with pytest.raises(EngineError):
            InferenceEngine(trained_model, speculative_k=-1, draft_model=CycleDraft())

    def test_enable_after_construction(self, trained_model):
        engine = InferenceEngine(trained_model, max_batch_size=3)
        engine.enable_speculative(CycleDraft(), 4)
        results = engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8)
        assert engine.stats()["speculative"]["steps"] > 0


class TestDrafters:
    def test_protocol_runtime_checkable(self):
        assert isinstance(CycleDraft(), DraftModel)
        assert isinstance(RetrievalSuffixDraft(), DraftModel)

    def test_retrieval_suffix_longest_match_wins(self):
        draft = RetrievalSuffixDraft(match_length=4, min_match=2)
        draft.observe([1, 2, 3, 4, 5, 6])
        draft.observe([9, 3, 4, 7, 8])
        # 4-token suffix match beats the 2-token one observed later.
        assert draft.propose([0, 1, 2, 3, 4], 2) == [5, 6]
        # A 3-token suffix (9, 3, 4) outranks the first sequence's 2-token (3, 4).
        assert draft.propose([9, 9, 3, 4], 2) == [7, 8]
        # Only the 2-token suffix (3, 4) matches: the first observation wins.
        assert draft.propose([0, 0, 3, 4], 2) == [5, 6]

    def test_retrieval_suffix_no_match_returns_empty(self):
        draft = RetrievalSuffixDraft()
        draft.observe([1, 2, 3])
        assert draft.propose([7, 8, 9], 3) == []
        assert draft.propose([1], 3) == []  # shorter than min_match

    def test_retrieval_suffix_deterministic_in_observation_order(self):
        first = RetrievalSuffixDraft()
        first.observe([1, 2, 5, 5])
        first.observe([1, 2, 9, 9])
        assert first.propose([0, 1, 2], 2) == [5, 5]  # first observation wins

    def test_retrieval_suffix_validation(self):
        with pytest.raises(EngineError):
            RetrievalSuffixDraft(match_length=2, min_match=3)

    def test_ngram_draft_iterates_next_token(self, tiny_tokenizer):
        draft = build_draft_model(
            "ngram", tiny_tokenizer, ["abab abab abab", "abab abab"]
        )
        assert isinstance(draft, NgramDraft)
        context = tiny_tokenizer.encode("abab abab", allow_special=False)
        proposed = draft.propose(context, 4)
        assert len(proposed) == 4
        assert proposed == draft.propose(context, 4)  # deterministic

    def test_build_draft_model_unknown_kind(self, tiny_tokenizer):
        with pytest.raises(EngineError):
            build_draft_model("transformer", tiny_tokenizer, [])


class TestBatcherFallbacks:
    def test_budget_one_requests_take_plain_steps(self, trained_model):
        """k is capped by remaining budget; budget-1 rows never draft."""
        engine = InferenceEngine(
            trained_model, max_batch_size=3, speculative_k=4, draft_model=CycleDraft()
        )
        results = engine.generate_batch(MIXED_PROMPTS, max_new_tokens=1)
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 1)
        assert engine.stats()["speculative"]["steps"] == 0

    def test_window_edge_caps_draft_width(self, trained_model):
        """Prompts near n_positions must not push positions past the window."""
        window = trained_model.config.n_positions
        long_prompt = ([1, 2, 3, 4] * 8)[: window - 4]
        engine = InferenceEngine(
            trained_model, max_batch_size=2, speculative_k=8, draft_model=CycleDraft()
        )
        results = engine.generate_batch([long_prompt], max_new_tokens=16)
        assert_matches_sequential(trained_model, results, [long_prompt], 16)

    def test_mixed_accept_lengths_within_batch(self, trained_model):
        """Rows accepting different draft counts exercise realign_rows."""

        class RowBiasedDraft:
            # Correct for contexts ending on even tokens, junk otherwise:
            # rows genuinely accept different lengths in the same step.
            name = "row-biased"

            def propose(self, context_ids, k):
                if context_ids[-1] % 2 == 0:
                    return CycleDraft().propose(context_ids, k)
                return JunkDraft().propose(context_ids, k)

        engine = InferenceEngine(
            trained_model, max_batch_size=4, speculative_k=4, draft_model=RowBiasedDraft()
        )
        results = engine.generate_batch(MIXED_PROMPTS, max_new_tokens=8)
        assert_matches_sequential(trained_model, results, MIXED_PROMPTS, 8)


@pytest.mark.faults
class TestSpeculativeChaos:
    def test_chaos_cli_replay_byte_identical_with_speculation(self, tmp_path):
        """`repro chaos --speculative-k --verify`: the acceptance criterion."""
        out = tmp_path / "chaos.jsonl"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "chaos",
                "--seed",
                "5",
                "--speculative-k",
                "4",
                "--verify",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "byte-identical" in result.stderr
        events = [json.loads(line) for line in out.read_text().splitlines()]
        summary = events[-1]
        assert summary["kind"] == "summary"
        assert summary["arena_bytes_in_use"] == 0
        assert summary["speculative_k"] == 4
        assert summary["speculative_steps"] > 0
