"""Tests for repro.yamlio.parser."""

from __future__ import annotations

import pytest
import yaml as pyyaml

from repro import yamlio
from repro.errors import YamlParseError


def both(text: str):
    """Parse with our engine and PyYAML; assert agreement; return value."""
    ours = yamlio.loads(text)
    theirs = pyyaml.safe_load(text)
    assert ours == theirs, f"engine={ours!r} pyyaml={theirs!r}"
    return ours


class TestMappings:
    def test_flat(self):
        assert both("a: 1\nb: two\n") == {"a": 1, "b": "two"}

    def test_nested(self):
        assert both("a:\n  b:\n    c: 3\n") == {"a": {"b": {"c": 3}}}

    def test_null_value(self):
        assert both("a:\nb: 1\n") == {"a": None, "b": 1}

    def test_quoted_keys(self):
        assert both("'a: b': 1\n\"c\": 2\n") == {"a: b": 1, "c": 2}

    def test_integer_key(self):
        assert both("80: http\n") == {80: "http"}

    def test_duplicate_key_rejected(self):
        # stricter than PyYAML, which silently overrides
        with pytest.raises(YamlParseError):
            yamlio.loads("a: 1\na: 2\n")

    def test_quoted_values(self):
        assert both("a: 'x: y'\nb: \"z # w\"\n") == {"a": "x: y", "b": "z # w"}


class TestSequences:
    def test_flat(self):
        assert both("- 1\n- two\n") == [1, "two"]

    def test_nested_via_indent(self):
        assert both("-\n  - 1\n  - 2\n- 3\n") == [[1, 2], 3]

    def test_compact_nested(self):
        assert both("- - 1\n  - 2\n") == [[1, 2]]

    def test_compact_mapping_item(self):
        assert both("- name: x\n  state: present\n") == [{"name": "x", "state": "present"}]

    def test_sequence_under_key_same_indent(self):
        assert both("tasks:\n- a\n- b\n") == {"tasks": ["a", "b"]}

    def test_sequence_under_key_indented(self):
        assert both("tasks:\n  - a\n  - b\n") == {"tasks": ["a", "b"]}

    def test_null_item(self):
        assert both("- \n- 1\n") == [None, 1]


class TestFlowInBlock:
    def test_flow_sequence_value(self):
        assert both("groups: [wheel, docker]\n") == {"groups": ["wheel", "docker"]}

    def test_flow_mapping_value(self):
        assert both("args: {chdir: /tmp, creates: /tmp/x}\n") == {
            "args": {"chdir": "/tmp", "creates": "/tmp/x"}
        }

    def test_flow_item_in_sequence(self):
        assert both("- [1, 2]\n- {a: 1}\n") == [[1, 2], {"a": 1}]


class TestLiteralBlocks:
    def test_literal_clip(self):
        assert both("msg: |\n  line one\n  line two\n") == {"msg": "line one\nline two\n"}

    def test_literal_strip(self):
        assert both("msg: |-\n  a\n  b\n") == {"msg": "a\nb"}

    def test_literal_keep(self):
        assert both("msg: |+\n  a\n\nnext: 1\n") == {"msg": "a\n\n", "next": 1}

    def test_folded(self):
        assert both("msg: >\n  a\n  b\n") == {"msg": "a b\n"}

    def test_folded_paragraphs(self):
        assert both("msg: >-\n  a\n  b\n\n  c\n") == {"msg": "a b\nc"}

    def test_literal_preserves_deeper_indent(self):
        assert both("msg: |\n  def f():\n      return 1\n") == {"msg": "def f():\n    return 1\n"}

    def test_literal_interior_blank_line(self):
        assert both("msg: |\n  a\n\n  b\n") == {"msg": "a\n\nb\n"}

    def test_literal_in_sequence_item(self):
        assert both("- |\n  content\n- 2\n") == ["content\n", 2]

    def test_explicit_indentation_indicator(self):
        assert both("msg: |2\n    indented\n") == {"msg": "  indented\n"}

    def test_keys_after_literal(self):
        assert both("a: |\n  x\nb: 2\n") == {"a": "x\n", "b": 2}


class TestDocuments:
    def test_leading_marker(self):
        assert both("---\na: 1\n") == {"a": 1}

    def test_multi_document(self):
        docs = yamlio.loads_all("---\na: 1\n---\nb: 2\n")
        assert docs == [{"a": 1}, {"b": 2}]

    def test_end_marker(self):
        docs = yamlio.loads_all("a: 1\n...\n")
        assert docs == [{"a": 1}]

    def test_loads_rejects_multi_document(self):
        with pytest.raises(YamlParseError):
            yamlio.loads("---\na: 1\n---\nb: 2\n")

    def test_empty_document(self):
        assert yamlio.loads("") is None


class TestUnsupportedFeatures:
    @pytest.mark.parametrize("text", ["a: &anchor 1\n", "a: *alias\n", "<<: *defaults\n"])
    def test_rejected(self, text):
        with pytest.raises(YamlParseError):
            yamlio.loads(text)

    def test_is_valid_false(self):
        assert not yamlio.is_valid("a: &x 1\nb: *x\n")


class TestErrors:
    def test_orphan_indent(self):
        with pytest.raises(YamlParseError):
            yamlio.loads("a: 1\n    dangling\n")

    def test_scalar_then_content(self):
        with pytest.raises(YamlParseError):
            yamlio.loads("scalar\nmore: 1\n")

    def test_unterminated_quote_value(self):
        with pytest.raises(yamlio.YamlError):
            yamlio.loads("a: 'open\n")

    def test_error_carries_line_number(self):
        try:
            yamlio.loads("a: 1\na: 2\n")
        except YamlParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected YamlParseError")


class TestAnsibleShapedDocuments:
    def test_fig1(self, fig1_text):
        assert both(fig1_text)

    def test_task_with_when_expression(self):
        text = (
            "- name: Conditional\n"
            "  ansible.builtin.debug:\n"
            "    msg: hi\n"
            "  when: ansible_os_family == 'Debian'\n"
        )
        assert both(text)[0]["when"] == "ansible_os_family == 'Debian'"

    def test_jinja_templates_kept_verbatim(self):
        text = "- name: t\n  ansible.builtin.apt:\n    name: '{{ item }}'\n  loop: [a, b]\n"
        assert both(text)[0]["ansible.builtin.apt"]["name"] == "{{ item }}"
