"""Tests for repro.yamlio.emitter."""

from __future__ import annotations

import pytest

from repro import yamlio
from repro.errors import YamlEmitError
from repro.yamlio.emitter import EmitStyle


class TestEmitBasics:
    def test_scalar_document(self):
        assert yamlio.dumps(3) == "---\n3\n"

    def test_mapping(self):
        assert yamlio.dumps({"a": 1, "b": "x"}) == "---\na: 1\nb: x\n"

    def test_no_marker(self):
        style = EmitStyle(start_marker=False)
        assert yamlio.dumps({"a": 1}, style) == "a: 1\n"

    def test_empty_collections_flow(self):
        assert yamlio.dumps({"a": [], "b": {}}) == "---\na: []\nb: {}\n"

    def test_sequence_item_indent(self):
        out = yamlio.dumps({"tasks": [{"name": "x"}]}, EmitStyle(start_marker=False))
        assert out == "tasks:\n  - name: x\n"

    def test_nested_mapping_indent(self):
        out = yamlio.dumps({"a": {"b": {"c": 1}}}, EmitStyle(start_marker=False))
        assert out == "a:\n  b:\n    c: 1\n"

    def test_string_needing_quotes(self):
        out = yamlio.dumps({"a": "yes"}, EmitStyle(start_marker=False))
        assert out == "a: 'yes'\n"

    def test_multiline_string_literal_block(self):
        out = yamlio.dumps({"msg": "a\nb\n"}, EmitStyle(start_marker=False))
        assert out == "msg: |\n  a\n  b\n"

    def test_multiline_no_trailing_newline(self):
        out = yamlio.dumps({"msg": "a\nb"}, EmitStyle(start_marker=False))
        assert out == "msg: |-\n  a\n  b\n"

    def test_unsupported_type_rejected(self):
        with pytest.raises(YamlEmitError):
            yamlio.dumps({"a": object()})

    def test_unsupported_key_rejected(self):
        with pytest.raises(YamlEmitError):
            yamlio.dumps({(1, 2): "x"})

    def test_emit_all(self):
        out = yamlio.dumps_all([{"a": 1}, {"b": 2}])
        assert out == "---\na: 1\n---\nb: 2\n"


class TestStyleValidation:
    def test_bad_indent(self):
        with pytest.raises(ValueError):
            EmitStyle(indent=0)

    def test_bad_sequence_indent(self):
        with pytest.raises(ValueError):
            EmitStyle(sequence_indent=-1)


class TestRoundTrips:
    CASES = [
        {"a": 1, "b": [1, 2, {"c": True}]},
        [{"name": "t", "ansible.builtin.apt": {"name": "nginx", "state": "present"}}],
        {"deep": {"list": [[1, 2], [3]], "map": {"x": None}}},
        {"msg": "line1\nline2\n", "other": 3},
        {"mode": "0644", "count": 420, "flag": False},
        [],
        {},
        "plain string",
        [None, True, 1.5],
    ]

    @pytest.mark.parametrize("value", CASES, ids=range(len(CASES)))
    def test_parse_emit_roundtrip(self, value):
        assert yamlio.loads(yamlio.dumps(value)) == value

    @pytest.mark.parametrize("value", CASES, ids=range(len(CASES)))
    def test_pyyaml_can_read_our_output(self, value):
        import yaml as pyyaml

        assert pyyaml.safe_load(yamlio.dumps(value)) == value


class TestNormalize:
    def test_normalize_canonicalizes_style(self):
        messy = "a:   1\nb:\n    - x\n    - y\n"
        assert yamlio.normalize(messy) == "---\na: 1\nb:\n  - x\n  - y\n"

    def test_normalize_idempotent(self, fig1_text):
        once = yamlio.normalize(fig1_text)
        assert yamlio.normalize(once) == once
