"""Cross-process trace stitching, telemetry endpoints and SLOs in the fleet.

The end-to-end claims of the distributed-observability tier:

* a traced seeded chaos run merges every collected worker span into the
  Chrome trace exactly once, with each traced router span parenting its
  worker spans across the process boundary (joined on span *references*,
  not process-local ids);
* the merged trace and the SLO report are pure functions of the seed —
  two replays serialize byte-identically;
* the service's HTTP surface carries the contract: request headers adopt
  the context, the response echoes the trace id, and ``/v1/telemetry``
  drains spans exactly once.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.faults import FakeClock, use
from repro.fleet import build_chaos_fleet, run_fleet_chaos
from repro.fleet.router import FleetRouter
from repro.obs import Observability
from repro.obs.distributed import PARENT_SPAN_HEADER, TRACE_ID_HEADER, TraceContext
from repro.serving.client import PredictionClient
from repro.serving.service import PredictionService, RestServer

pytestmark = [pytest.mark.faults, pytest.mark.fleet]


@pytest.fixture(scope="module")
def traced_run() -> dict:
    return run_fleet_chaos(seed=1)


def _span_events(trace: dict) -> list[dict]:
    return [event for event in trace["traceEvents"] if event["ph"] == "X"]


class TestChaosTraceStitching:
    def test_every_collected_worker_span_appears_exactly_once(self, traced_run):
        trace = traced_run["chrome_trace"]
        collected = traced_run["collector"]["spans_collected"]
        names = {
            event["pid"]: event["args"]["name"].removeprefix("worker ")
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        per_replica: dict[str, list] = {}
        for event in _span_events(trace):
            if event["pid"] != 0:
                per_replica.setdefault(names[event["pid"]], []).append(
                    event["args"]["span_id"]
                )
        assert {
            replica: len(ids) for replica, ids in per_replica.items()
        } == collected, "merged trace dropped or duplicated worker spans"
        for replica, ids in per_replica.items():
            assert len(ids) == len(set(ids)), f"duplicate span ids on {replica}"

    def test_router_spans_parent_worker_spans(self, traced_run):
        events = _span_events(traced_run["chrome_trace"])
        router_refs = {
            event["args"]["span_ref"]
            for event in events
            if event["pid"] == 0 and "span_ref" in event["args"]
        }
        worker_parents = {
            event["args"]["parent_span"]
            for event in events
            if event["pid"] != 0 and "parent_span" in event["args"]
        }
        assert router_refs, "no router span carried a span_ref"
        assert worker_parents, "no worker span adopted a parent reference"
        assert worker_parents <= router_refs
        # every parent link belongs to the trace id it claims
        for event in events:
            parent = event["args"].get("parent_span")
            if parent is not None:
                assert parent == f"{event['args']['trace_id']}/r"

    def test_flow_arrows_bridge_the_processes(self, traced_run):
        events = traced_run["chrome_trace"]["traceEvents"]
        starts = {event["id"] for event in events if event["ph"] == "s"}
        finishes = {event["id"] for event in events if event["ph"] == "f"}
        assert finishes <= starts, "flow finish without a matching start"
        assert starts, "no flow arrows emitted"

    def test_replay_is_byte_identical(self, traced_run):
        replay = run_fleet_chaos(seed=1)
        assert replay["chrome_trace_json"] == traced_run["chrome_trace_json"]
        assert replay["slo_json"] == traced_run["slo_json"]
        assert replay["log"] == traced_run["log"]

    def test_slo_report_covers_the_declared_objectives(self, traced_run):
        report = traced_run["slo"]
        assert report["total_observed"] == 24
        assert len(report["slos"]) >= 3
        assert {slo["signal"] for slo in report["slos"]} >= {"latency", "shed", "error"}
        # summary event carries the verdict so the JSONL log tells the story
        summary = traced_run["events"][-1]
        assert summary["slos_met"] == report["all_met"]
        assert summary["slos_alerting"] == report["any_alerting"]

    def test_untraced_run_omits_observability_keys(self):
        result = run_fleet_chaos(seed=1, tracing=False, slo_specs=())
        assert "chrome_trace" not in result
        assert "slo" not in result


class TestRouterTelemetry:
    def test_fleet_prometheus_merges_replica_labels(self):
        with use(FakeClock()):
            router, _ = build_chaos_fleet(0, 2, tracing=True)
            router.predict("- name: install nginx\n", max_new_tokens=4)
            router.heartbeat_tick()
            merged = router.fleet_prometheus()
            assert 'replica="w0"' in merged or 'replica="w1"' in merged
            assert 'replica="router"' in merged

    def test_collect_telemetry_force_drains_all_live_workers(self):
        with use(FakeClock()):
            router, _ = build_chaos_fleet(0, 2, tracing=True)
            router.predict("- name: install nginx\n", max_new_tokens=4)
            stats = router.collect_telemetry()
            assert stats["replicas"]  # drained without a heartbeat tick
            assert sum(stats["spans_collected"].values()) > 0

    def test_trace_ids_are_minted_per_request(self):
        with use(FakeClock()):
            router, _ = build_chaos_fleet(0, 2, tracing=True)
            first = router.predict("- name: a\n", max_new_tokens=4)
            second = router.predict("- name: b\n", max_new_tokens=4)
            assert first["trace_id"] == "t-00000001"
            assert second["trace_id"] == "t-00000002"

    def test_inbound_context_adopted_end_to_end(self):
        # a client that already traces keeps its id through router AND worker
        with use(FakeClock()):
            router, _ = build_chaos_fleet(0, 2, tracing=True)
            inbound = TraceContext(trace_id="client-7", parent_span="client-7/c")
            payload = router.predict(
                "- name: install nginx\n", max_new_tokens=4, trace_context=inbound
            )
            assert payload["trace_id"] == "client-7"
            (root,) = router.obs.tracer.spans("fleet.predict")
            assert root.attrs["trace_id"] == "client-7"
            assert root.attrs["parent_span"] == "client-7/c"  # client parents the router
            router.collect_telemetry()
            worker_roots = [
                span
                for span in router.collector.spans()
                if span.parent_id is None and "trace_id" in span.attrs
            ]
            assert worker_roots
            for span in worker_roots:
                assert span.attrs["trace_id"] == "client-7"
                assert span.attrs["parent_span"] == "client-7/r"  # router parents the worker


class _NoneStatsWorker:
    """A degenerate worker whose stats carry nulls where numbers belong."""

    worker_id = "w0"
    dead = False

    def heartbeat(self):
        return 0.0

    def stats(self):
        return {
            "requests": None,
            "engine": {
                "decode_tokens": None,
                "kv_arena": None,
                "prefix_cache": {"hits": None, "misses": None, "tokens_reused": None,
                                 "tokens_missed": None},
            },
        }


class TestAggregateStatsHardening:
    def test_null_worker_stats_do_not_crash_aggregation(self):
        router = FleetRouter([_NoneStatsWorker()])
        aggregate = router.stats()["aggregate"]
        assert aggregate["decode_tokens"] == 0
        assert aggregate["prefix_cache"]["token_reuse_rate"] == 0.0
        assert aggregate["prefix_cache"]["hit_rate"] == 0.0


class _StubCompleter:
    def complete(self, prompt: str, max_new_tokens: int = 96) -> str:
        del max_new_tokens
        return "  ansible.builtin.apt:\n    name: nginx\n"


class TestServiceTelemetryHttp:
    def test_headers_adopt_context_and_echo_trace_id(self):
        service = PredictionService(_StubCompleter(), obs=Observability.with_tracing())
        with RestServer(service) as server:
            body = json.dumps({"prompt": "- name: install nginx\n"}).encode()
            request = urllib.request.Request(
                server.url + "/v1/completions",
                data=body,
                headers={
                    "Content-Type": "application/json",
                    TRACE_ID_HEADER: "t-00000042",
                    PARENT_SPAN_HEADER: "t-00000042/r",
                },
            )
            with urllib.request.urlopen(request) as response:
                assert response.headers[TRACE_ID_HEADER] == "t-00000042"
                payload = json.loads(response.read())
        assert payload["trace_id"] == "t-00000042"
        (root,) = service.obs.tracer.spans("serving.predict")
        assert root.attrs["trace_id"] == "t-00000042"
        assert root.attrs["parent_span"] == "t-00000042/r"

    def test_untraced_request_echoes_nothing(self):
        service = PredictionService(_StubCompleter(), obs=Observability.with_tracing())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            payload = client.predict("- name: install nginx\n")
        assert "trace_id" not in payload
        (root,) = service.obs.tracer.spans("serving.predict")
        assert "trace_id" not in root.attrs

    def test_telemetry_endpoint_drains_exactly_once(self):
        service = PredictionService(_StubCompleter(), obs=Observability.with_tracing())
        with RestServer(service) as server:
            client = PredictionClient(server.url)
            client.predict("- name: install nginx\n")
            first = client.telemetry()
            second = client.telemetry()
        assert [span["name"] for span in first["spans"]] == ["serving.predict"]
        assert second["spans"] == []
        assert "serving_requests_total" in first["metrics_prometheus"]
        assert first["profile"] is None  # profiler not enabled on this service
