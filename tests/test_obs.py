"""Tests for repro.obs (span tracer, metrics registry, report rendering).

The tracer's load-bearing properties: correct parent/child nesting across
context-manager and retroactive-record APIs, bounded memory via the ring
buffer, a lossless JSONL round-trip, and zero effect when disabled.  The
registry's: monotonic counters, histogram bucket math whose percentile
summaries bracket the true order statistics, and no lost updates under a
concurrent hammer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    Span,
    Tracer,
    exponential_buckets,
    linear_buckets,
    load_spans_jsonl,
    read_spans_jsonl,
)
from repro.obs.report import format_metrics_snapshot, format_span_tree


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = {span.name: span for span in tracer.spans()}
        assert spans["inner"].parent_id == outer.span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].span_id == outer.span_id
        assert spans["inner"].span_id == inner.span_id

    def test_children_finish_first_but_nest_correctly(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["c"].parent_id == by_name["b"].span_id
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert by_name["d"].parent_id == by_name["a"].span_id
        # ring order is completion order: children before parents
        assert [span.name for span in tracer.spans()] == ["c", "b", "d", "a"]

    def test_timing_is_monotonic_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        by_name = {span.name: span for span in tracer.spans()}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner.duration_s >= 0.002
        assert outer.duration_s >= inner.duration_s
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            span.set(result="ok")
        recorded = tracer.spans("work")[0]
        assert recorded.attrs == {"size": 3, "result": "ok"}

    def test_decorator_records_span(self):
        tracer = Tracer()

        @tracer.traced("compute", kind="test")
        def compute(x):
            return x + 1

        assert compute(1) == 2
        span = tracer.spans("compute")[0]
        assert span.attrs == {"kind": "test"}

    def test_decorator_defaults_to_function_name(self):
        tracer = Tracer()

        @tracer.traced()
        def some_function():
            return 7

        assert some_function() == 7
        assert len(tracer.spans()) == 1
        assert "some_function" in tracer.spans()[0].name

    def test_record_with_explicit_parent(self):
        tracer = Tracer()
        root = tracer.record("request", 1.0, 3.0, phase="all")
        child = tracer.record("decode", 2.0, 3.0, parent_id=root)
        assert child is not None and root is not None
        spans = tracer.spans()
        assert spans[1].parent_id == root
        assert spans[0].duration_s == pytest.approx(2.0)

    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(label):
            with tracer.span(f"outer-{label}"):
                barrier.wait()
                with tracer.span(f"inner-{label}"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        by_name = {span.name: span for span in tracer.spans()}
        for label in range(2):
            assert by_name[f"inner-{label}"].parent_id == by_name[f"outer-{label}"].span_id


class TestTracerDisabled:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            span.set(anything="goes")
        assert tracer.record("also-invisible", 0.0, 1.0) is None
        assert tracer.spans() == []
        assert tracer.total_recorded == 0

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled

    def test_noop_span_is_shared(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")


class TestRingBuffer:
    def test_eviction_keeps_newest(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.record(f"span-{index}", float(index), float(index) + 0.5)
        names = [span.name for span in tracer.spans()]
        assert names == ["span-6", "span-7", "span-8", "span-9"]
        assert len(tracer) == 4
        assert tracer.total_recorded == 10
        assert tracer.evicted == 6

    def test_clear_preserves_lifetime_counter(self):
        tracer = Tracer(capacity=8)
        for index in range(3):
            tracer.record(f"s{index}", 0.0, 1.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.total_recorded == 3
        tracer.record("after", 0.0, 1.0)
        assert tracer.total_recorded == 4

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestJsonlRoundTrip:
    def test_export_and_load(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", request=1):
            with tracer.span("inner"):
                pass
        tracer.record("retro", 5.0, 6.0, stop_reason="max_tokens")
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(path)
        assert written == 3
        loaded = load_spans_jsonl(path)
        assert loaded == tracer.spans()

    def test_span_dict_round_trip(self):
        span = Span("x", 1.0, 2.5, span_id=3, parent_id=1, attrs={"tokens": 4})
        assert Span.from_dict(span.to_dict()) == span

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"name": "a", "start_s": 0.0, "end_s": 1.0, "span_id": 1}\n\n'
        )
        loaded = load_spans_jsonl(path)
        assert len(loaded) == 1
        assert loaded[0].attrs == {}


class TestCorruptSpanLines:
    """Regression: a dump truncated mid-write must not poison the load."""

    def export_three_spans(self, tmp_path):
        tracer = Tracer()
        for index in range(3):
            tracer.record(f"span-{index}", float(index), float(index) + 0.5)
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        return path, tracer.spans()

    def test_truncated_trailing_line_skipped_and_counted(self, tmp_path):
        path, spans = self.export_three_spans(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 15])  # kill -9 mid final write
        loaded, skipped = read_spans_jsonl(path)
        assert loaded == spans[:2]
        assert skipped == 1
        assert load_spans_jsonl(path) == spans[:2]

    def test_json_line_missing_span_fields_skipped(self, tmp_path):
        path, spans = self.export_three_spans(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"valid_json": "but not a span"}\n')
            handle.write('["a list, not an object"]\n')
        loaded, skipped = read_spans_jsonl(path)
        assert loaded == spans
        assert skipped == 2

    def test_strict_mode_raises_with_line_number(self, tmp_path):
        path, _ = self.export_three_spans(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"truncated')
        with pytest.raises(ObservabilityError, match="line 4"):
            read_spans_jsonl(path, strict=True)

    def test_clean_file_reports_zero_skipped(self, tmp_path):
        path, spans = self.export_three_spans(tmp_path)
        loaded, skipped = read_spans_jsonl(path)
        assert loaded == spans
        assert skipped == 0


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ObservabilityError):
            counter.inc(-1)
        assert counter.value == 6


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_bound(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 100.0):
            histogram.observe(value)
        counts = dict(histogram.bucket_counts())
        assert counts[1.0] == 2  # 0.5 and the exactly-on-bound 1.0
        assert counts[2.0] == 2  # 1.5, 2.0
        assert counts[4.0] == 1  # 3.0
        assert counts[float("inf")] == 1  # 100.0 overflows
        assert histogram.count == 6
        assert histogram.total == pytest.approx(108.0)

    def test_summary_on_empty(self):
        summary = Histogram("h", buckets=(1.0,)).summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_single_value_collapses_percentiles(self):
        histogram = Histogram("h", buckets=linear_buckets(1, 1, 10))
        for _ in range(50):
            histogram.observe(3.5)
        summary = histogram.summary()
        assert summary["min"] == summary["max"] == 3.5
        # interpolation is clamped to the observed range
        assert summary["p50"] == pytest.approx(3.5)
        assert summary["p99"] == pytest.approx(3.5)
        assert summary["mean"] == pytest.approx(3.5)

    def test_percentiles_bracket_order_statistics(self):
        histogram = Histogram("h", buckets=linear_buckets(10, 10, 10))
        for value in range(1, 101):  # 1..100 uniformly
            histogram.observe(float(value))
        # The true p50 is 50; the estimate must stay within its bucket.
        assert 40.0 <= histogram.percentile(50) <= 50.0
        assert 80.0 <= histogram.percentile(90) <= 90.0
        assert 90.0 <= histogram.percentile(99) <= 100.0
        # extremes are clamped to the observed range
        assert 1.0 <= histogram.percentile(0) <= 10.0
        assert 90.0 <= histogram.percentile(100) <= 100.0
        with pytest.raises(ObservabilityError):
            histogram.percentile(101)

    def test_bucket_helpers(self):
        assert exponential_buckets(1, 2, 3) == (1, 2, 4)
        assert linear_buckets(0, 5, 3) == (0, 5, 10)
        with pytest.raises(ObservabilityError):
            exponential_buckets(0, 2, 3)
        with pytest.raises(ObservabilityError):
            linear_buckets(0, 0, 3)

    def test_bucket_helpers_single_bucket(self):
        assert exponential_buckets(0.5, 2, 1) == (0.5,)
        assert linear_buckets(3, 1, 1) == (3,)
        histogram = Histogram("h", buckets=exponential_buckets(1.0, 2, 1))
        histogram.observe(0.5)
        histogram.observe(2.0)
        counts = dict(histogram.bucket_counts())
        assert counts[1.0] == 1 and counts[float("inf")] == 1

    def test_bucket_helpers_reject_inverted_bounds(self):
        # factor <= 1 / width <= 0 would make bounds non-increasing
        with pytest.raises(ObservabilityError):
            exponential_buckets(1, 1, 3)
        with pytest.raises(ObservabilityError):
            exponential_buckets(1, 0.5, 3)
        with pytest.raises(ObservabilityError):
            linear_buckets(10, -5, 3)
        with pytest.raises(ObservabilityError):
            exponential_buckets(1, 2, 0)
        with pytest.raises(ObservabilityError):
            linear_buckets(0, 1, 0)

    def test_observations_beyond_last_edge_land_in_overflow(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for value in (2.001, 50.0, 1e12):
            histogram.observe(value)
        counts = dict(histogram.bucket_counts())
        assert counts[float("inf")] == 3
        assert counts[1.0] == 0 and counts[2.0] == 0
        assert histogram.count == 3
        # percentile estimates clamp to the observed range, not +inf
        assert histogram.percentile(99) <= 1e12
        summary = histogram.summary()
        assert summary["max"] == 1e12
        assert summary["p50"] <= summary["max"]

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(1.0, 1.0))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("inflight").set(2)
        registry.histogram("latency", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"requests": 3}
        assert snapshot["gauges"] == {"inflight": 2}
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert registry.names() == ["inflight", "latency", "requests"]

    def test_concurrent_hammer_loses_no_updates(self):
        registry = MetricsRegistry()
        per_thread = 500
        threads = 8

        def hammer(index):
            counter = registry.counter("hits")
            histogram = registry.histogram("lat", buckets=(0.5, 1.0, 2.0))
            gauge = registry.gauge("busy")
            for i in range(per_thread):
                counter.inc()
                histogram.observe((index + i) % 3 * 0.7)
                gauge.inc()
                gauge.dec()

        workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("hits").value == threads * per_thread
        assert registry.histogram("lat").count == threads * per_thread
        assert registry.gauge("busy").value == 0


class TestObservability:
    def test_default_is_metrics_on_tracing_off(self):
        obs = Observability()
        assert not obs.tracing_enabled
        obs.metrics.counter("c").inc()
        assert obs.metrics.snapshot()["counters"] == {"c": 1}

    def test_with_tracing(self):
        obs = Observability.with_tracing(capacity=16)
        assert obs.tracing_enabled
        with obs.tracer.span("x"):
            pass
        assert len(obs.tracer.spans()) == 1

    def test_attach_tracer_swaps_in_place(self):
        obs = Observability()
        tracer = Tracer()
        obs.attach_tracer(tracer)
        assert obs.tracer is tracer
        assert obs.tracing_enabled


class TestReportRendering:
    def test_metrics_tables(self):
        registry = MetricsRegistry()
        registry.counter("serving.requests").inc(2)
        registry.gauge("serving.inflight").set(1)
        registry.histogram("serving.completions_s", buckets=(0.1, 1.0)).observe(0.05)
        text = format_metrics_snapshot(registry.snapshot())
        assert "serving.requests" in text
        assert "Histograms" in text
        assert "p99" in text

    def test_empty_snapshot(self):
        assert "no metrics" in format_metrics_snapshot({})

    def test_span_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        text = format_span_tree(tracer.spans())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_span_tree_orphans_become_roots(self):
        spans = [Span("orphan", 0.0, 1.0, span_id=5, parent_id=99)]
        assert format_span_tree(spans).startswith("orphan")

    def test_empty_span_tree(self):
        assert "no spans" in format_span_tree([])
