"""Tests for repro.metrics.exact_match."""

from __future__ import annotations

import pytest

from repro.metrics.exact_match import (
    canonical_exact_match,
    exact_match,
    exact_match_rate,
    normalize_text,
)


class TestNormalizeText:
    def test_trailing_spaces_stripped(self):
        assert normalize_text("a  \nb\t\n") == "a\nb"

    def test_surrounding_blank_lines_stripped(self):
        assert normalize_text("\n\na\n\n") == "a"

    def test_crlf(self):
        assert normalize_text("a\r\nb") == "a\nb"

    def test_interior_blank_lines_kept(self):
        assert normalize_text("a\n\nb") == "a\n\nb"


class TestExactMatch:
    def test_identical(self):
        assert exact_match("- a: 1\n", "- a: 1\n")

    def test_whitespace_insensitive_at_edges(self):
        assert exact_match("- a: 1", "- a: 1  \n\n")

    def test_indentation_differences_matter(self):
        assert not exact_match("a:\n  b: 1\n", "a:\n    b: 1\n")

    def test_content_difference(self):
        assert not exact_match("a: 1", "a: 2")


class TestCanonicalExactMatch:
    def test_formatting_insensitive(self):
        assert canonical_exact_match("a:   1\n", "a: 1\n")

    def test_quoting_insensitive(self):
        assert canonical_exact_match("a: 'x'\n", "a: x\n")

    def test_unparseable_prediction(self):
        assert not canonical_exact_match("a: 1\n", "a: [unclosed\n")

    def test_unparseable_both_textual_fallback(self):
        assert canonical_exact_match("a: [unclosed", "a: [unclosed")

    def test_different_values(self):
        assert not canonical_exact_match("a: 1\n", "a: 2\n")


class TestExactMatchRate:
    def test_rate(self):
        assert exact_match_rate(["a", "b"], ["a", "c"]) == 50.0

    def test_empty(self):
        assert exact_match_rate([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            exact_match_rate(["a"], [])
