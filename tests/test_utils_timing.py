"""Tests for repro.utils.timing."""

from __future__ import annotations

import pytest

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        with watch:
            pass
        assert len(watch.laps) == 2
        assert watch.elapsed == pytest.approx(sum(watch.laps))

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_mean_lap_empty(self):
        assert Stopwatch().mean_lap == 0.0

    def test_mean_lap(self):
        watch = Stopwatch()
        with watch:
            pass
        assert watch.mean_lap == pytest.approx(watch.laps[0])
