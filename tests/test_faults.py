"""Chaos tests: deadlines, cancellation, shedding and fault injection.

The load-bearing property: under *any* seeded fault schedule, every
admitted request terminates in exactly one of {completed, cancelled,
deadline_exceeded, shed}, and all KV accounting returns to zero — no
leaked slabs, no poisoned caches, no wedged queues.  Everything runs on
the fake clock, so timing assertions are exact and schedules replay
byte-identically.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.engine import (
    ContinuousBatcher,
    GenerationRequest,
    InferenceEngine,
    PrefixCache,
    RetrievalSuffixDraft,
)
from repro.errors import (
    DeadlineExceededError,
    InjectedFault,
    ServiceOverloadedError,
    ServingError,
)
from repro.faults import FakeClock, FaultInjector, KNOWN_SEAMS, fire, shield, use
from repro.faults import clock as faults_clock
from repro.nn.kv_arena import KVArena
from repro.nn.optim import Adam
from repro.nn.parameter import numpy_rng
from repro.nn.sampling import generate_greedy, plan_prompt
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.serving.client import PredictionClient, RetryPolicy
from repro.serving.service import PredictionService, RestServer
from repro.utils.rng import SeededRng

pytestmark = pytest.mark.faults

TERMINAL_OUTCOMES = {"completed", "cancelled", "deadline_exceeded", "shed"}


@pytest.fixture(scope="module")
def chaos_model():
    """Same cycle-continuation model as test_engine: peaked, deterministic."""
    config = TransformerConfig(vocab_size=16, n_positions=24, dim=16, n_layers=2, n_heads=4)
    model = DecoderLM(config, numpy_rng(1))
    ids = np.array([[1, 2, 3, 4] * 5], dtype=np.int64)
    targets = np.roll(ids, -1, axis=1)
    targets[:, -1] = -1
    optimizer = Adam(model.parameters(), learning_rate=3e-3)
    for _ in range(150):
        model.zero_grad()
        model.loss_and_backward(ids, targets)
        optimizer.step()
    return model


def _request(model, request_id, prompt, max_new_tokens=8, deadline_s=None):
    planned, effective = plan_prompt(model.config.n_positions, prompt, max_new_tokens)
    return GenerationRequest(
        request_id=request_id,
        prompt_ids=planned,
        max_new_tokens=max_new_tokens,
        effective_budget=effective,
        deadline_s=deadline_s,
    )


# -- clock --------------------------------------------------------------------


class TestFakeClock:
    def test_advance_and_sleep_move_time(self):
        fake = FakeClock(start=5.0)
        assert fake.now() == 5.0
        fake.advance(0.5)
        fake.sleep(0.25)
        assert fake.now() == 5.75

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_use_installs_and_restores(self):
        fake = FakeClock(start=100.0)
        before = faults_clock.now()
        with use(fake):
            assert faults_clock.now() == 100.0
            faults_clock.sleep(1.0)  # module-level sleep routes to the fake
            assert faults_clock.now() == 101.0
        assert faults_clock.now() != 101.0
        assert faults_clock.now() >= before


# -- injector -----------------------------------------------------------------


class TestFaultInjector:
    def test_fire_is_noop_without_injector(self):
        fire("kv_arena.acquire")  # must not raise

    def test_at_calls_fires_exactly_there(self):
        injector = FaultInjector(seed=0).on("tokenizer.encode", at_calls=[2])
        with injector:
            fire("tokenizer.encode")
            with pytest.raises(InjectedFault) as exc_info:
                fire("tokenizer.encode")
            fire("tokenizer.encode")
        assert exc_info.value.seam == "tokenizer.encode"
        assert exc_info.value.call == 2
        assert injector.calls("tokenizer.encode") == 3

    def test_probability_schedule_replays(self):
        def run(seed):
            # Fake clock: event timestamps must replay too, not just the schedule.
            injector = FaultInjector(seed=seed).on("engine.decode_step", probability=0.3)
            with use(FakeClock()), injector:
                for _ in range(50):
                    try:
                        fire("engine.decode_step")
                    except InjectedFault:
                        pass
            return injector.event_log()

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_max_fires_caps_schedule(self):
        injector = FaultInjector(seed=0).on("checkpoint.read", probability=1.0, max_fires=2)
        fired = 0
        with injector:
            for _ in range(10):
                try:
                    fire("checkpoint.read")
                except InjectedFault:
                    fired += 1
        assert fired == 2

    def test_shield_suppresses_injection(self):
        injector = FaultInjector(seed=0).on("kv_arena.acquire", probability=1.0)
        with injector:
            with shield():
                fire("kv_arena.acquire")  # suppressed, not even counted
            with pytest.raises(InjectedFault):
                fire("kv_arena.acquire")
        assert injector.calls("kv_arena.acquire") == 1

    def test_delay_fault_sleeps_on_shared_clock(self):
        fake = FakeClock()
        injector = FaultInjector(seed=0).on(
            "engine.decode_step", at_calls=[1], error=None, delay_s=0.75
        )
        with use(fake), injector:
            fire("engine.decode_step")
        assert fake.now() == 0.75
        assert injector.events()[0]["action"] == "delay"

    def test_event_log_is_canonical_jsonl(self, tmp_path):
        injector = FaultInjector(seed=0).on("tokenizer.encode", at_calls=[1])
        with injector:
            with pytest.raises(InjectedFault):
                fire("tokenizer.encode")
        lines = injector.event_log().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["seam"] == "tokenizer.encode" and event["action"] == "raise"
        assert lines[0] == json.dumps(event, sort_keys=True)
        out = tmp_path / "events.jsonl"
        assert injector.export_jsonl(out) == 1
        assert out.read_text() == injector.event_log()

    def test_known_seams_are_instrumented(self):
        # Every advertised seam must actually fire from its call site.
        assert set(KNOWN_SEAMS) == {
            "kv_arena.acquire",
            "engine.decode_step",
            "tokenizer.encode",
            "checkpoint.read",
            "fleet.spawn",
            "fleet.heartbeat",
            "fleet.dispatch",
        }

    def test_kv_arena_seam_fires(self):
        arena = KVArena()
        injector = FaultInjector(seed=0).on("kv_arena.acquire", at_calls=[1])
        with injector:
            with pytest.raises(InjectedFault):
                arena.acquire(1, 4, 4, 8)
        assert arena.stats()["bytes_in_use"] == 0

    def test_tokenizer_seam_fires(self, tiny_tokenizer):
        injector = FaultInjector(seed=0).on("tokenizer.encode", at_calls=[1])
        with injector:
            with pytest.raises(InjectedFault):
                tiny_tokenizer.encode("- name: Install nginx")

    def test_checkpoint_seam_fires(self, tmp_path):
        from repro.model.checkpoints import load_checkpoint

        injector = FaultInjector(seed=0).on("checkpoint.read", at_calls=[1])
        with injector:
            with pytest.raises(InjectedFault):
                load_checkpoint(tmp_path / "nope")


# -- engine chaos -------------------------------------------------------------


def _drive_chaos(model, seed: int, requests: int = 10, speculative_k: int = 0):
    """The test-side twin of ``repro chaos``: drive a seeded failure storm."""
    rng = SeededRng(seed).child("chaos")
    fake = FakeClock()
    injector = (
        FaultInjector(seed=seed)
        .on("kv_arena.acquire", probability=0.15, max_fires=4)
        .on("engine.decode_step", probability=0.1, max_fires=4)
        .on("engine.decode_step", probability=0.1, error=None, delay_s=0.25, max_fires=4)
    )
    with use(fake):
        jobs = []
        for index in range(requests):
            prompt = [rng.randint(1, model.config.vocab_size - 1) for _ in range(rng.randint(2, 8))]
            jobs.append(
                _request(
                    model, index, prompt,
                    deadline_s=rng.uniform(0.3, 2.0) if rng.bernoulli(0.4) else None,
                )
            )
        cancel_at: dict[int, list] = {}
        for job in jobs:
            if rng.bernoulli(0.2):
                cancel_at.setdefault(rng.randint(1, 12), []).append(job)
        draft = None
        if speculative_k:
            # Warm the drafter on the model's own greedy continuations before
            # the injector goes live: warm-up forwards must not consume the
            # fault schedule, or the schedule would stop replaying.
            draft = RetrievalSuffixDraft()
            for job in jobs:
                warm = generate_greedy(model, list(job.prompt_ids), 8)
                draft.observe(list(job.prompt_ids) + list(warm.token_ids))
        with injector:
            arena = KVArena()
            prefix_cache = PrefixCache(8)
            batcher = ContinuousBatcher(
                model,
                max_batch_size=3,
                prefix_cache=prefix_cache,
                arena=arena,
                speculative_k=speculative_k,
                draft_model=draft,
            )
            arrivals = list(jobs)
            step_index = 0
            while True:
                for _ in range(2):
                    if arrivals:
                        batcher.submit(arrivals.pop(0))
                for job in cancel_at.get(step_index, ()):
                    job.cancel()
                more = batcher.step()
                fake.advance(0.05)
                step_index += 1
                assert step_index < 10_000, "chaos run failed to terminate"
                if not more and not arrivals:
                    break
            prefix_cache.clear()
    return jobs, batcher, arena


class TestEngineChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_every_request_terminates_and_nothing_leaks(self, chaos_model, seed):
        jobs, batcher, arena = _drive_chaos(chaos_model, seed)
        outcomes = [job.outcome for job in jobs]
        assert all(outcome in TERMINAL_OUTCOMES for outcome in outcomes), outcomes
        assert batcher.queue_depth == 0 and batcher.active_size == 0
        # Slot accounting returns to zero: with the batch drained and the
        # prefix cache cleared, every KV slab went back to the arena.
        assert arena.stats()["bytes_in_use"] == 0
        stats = batcher.stats()
        accounted = (
            stats["completed_requests"]
            + stats["cancelled_requests"]
            + stats["deadline_expired_requests"]
            + stats["shed_requests"]
        )
        assert accounted == len(jobs)

    @pytest.mark.speculative
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_speculation_terminates_and_leaks_nothing(self, chaos_model, seed):
        """The chaos property is speculation-agnostic: same storm, draft on."""
        jobs, batcher, arena = _drive_chaos(chaos_model, seed, speculative_k=4)
        outcomes = [job.outcome for job in jobs]
        assert all(outcome in TERMINAL_OUTCOMES for outcome in outcomes), outcomes
        assert batcher.queue_depth == 0 and batcher.active_size == 0
        assert arena.stats()["bytes_in_use"] == 0
        stats = batcher.stats()
        accounted = (
            stats["completed_requests"]
            + stats["cancelled_requests"]
            + stats["deadline_expired_requests"]
            + stats["shed_requests"]
        )
        assert accounted == len(jobs)
        spec = stats["speculative"]
        assert spec["k"] == 4
        assert spec["steps"] > 0
        assert spec["accepted_tokens"] <= spec["proposed_tokens"]

    def test_cancel_retires_mid_decode_row(self, chaos_model):
        batcher = ContinuousBatcher(chaos_model, max_batch_size=4)
        victim = _request(chaos_model, 0, [1, 2, 3, 4], max_new_tokens=8)
        survivor = _request(chaos_model, 1, [2, 3, 4, 1], max_new_tokens=8)
        batcher.submit(victim)
        batcher.submit(survivor)
        batcher.step()  # both admitted, one decode step done
        assert batcher.active_size == 2
        assert victim.cancel()
        batcher.step()
        assert victim.outcome == "cancelled"
        assert victim.result.stop_reason == "cancelled"  # partial result, no raise
        assert batcher.active_size == 1
        batcher.run()
        assert survivor.outcome == "completed"
        want = generate_greedy(chaos_model, [2, 3, 4, 1], 8)
        assert survivor.result.token_ids == want.token_ids

    def test_cancel_after_finish_is_noop(self, chaos_model):
        batcher = ContinuousBatcher(chaos_model, max_batch_size=2)
        request = _request(chaos_model, 0, [1, 2, 3], max_new_tokens=2)
        batcher.submit(request)
        batcher.run()
        assert request.outcome == "completed"
        assert request.cancel() is False
        assert request.outcome == "completed"

    def test_slow_decode_blows_deadline(self, chaos_model):
        fake = FakeClock()
        injector = FaultInjector(seed=0).on(
            "engine.decode_step", at_calls=[2], error=None, delay_s=1.0
        )
        with use(fake), injector:
            batcher = ContinuousBatcher(chaos_model, max_batch_size=2)
            request = _request(chaos_model, 0, [1, 2, 3, 4], max_new_tokens=8, deadline_s=0.5)
            batcher.submit(request)
            batcher.run()
        assert request.outcome == "deadline_exceeded"
        assert 0 < len(request.generated) < 8  # partial generation survives

    def test_queued_request_expires_without_prefill(self, chaos_model):
        fake = FakeClock()
        with use(fake):
            batcher = ContinuousBatcher(chaos_model, max_batch_size=1)
            # Occupy the only slot so the second request has to wait.
            blocker = _request(chaos_model, 0, [1, 2, 3, 4], max_new_tokens=8)
            waiter = _request(chaos_model, 1, [2, 3, 4, 1], max_new_tokens=8, deadline_s=0.2)
            batcher.submit(blocker)
            batcher.submit(waiter)
            batcher.step()
            fake.advance(0.5)  # waiter's deadline passes while queued
            batcher.run()
        assert blocker.outcome == "completed"
        assert waiter.outcome == "deadline_exceeded"
        assert waiter.prefill_started_at is None
        assert waiter.timings()["prefill_s"] == 0.0 and waiter.timings()["decode_s"] == 0.0

    def test_alloc_fault_sheds_only_chargeable_request(self, chaos_model):
        arena = KVArena()
        injector = FaultInjector(seed=0).on("kv_arena.acquire", at_calls=[1])
        with injector:
            batcher = ContinuousBatcher(chaos_model, max_batch_size=2, arena=arena)
            unlucky = _request(chaos_model, 0, [1, 2, 3, 4], max_new_tokens=4)
            lucky = _request(chaos_model, 1, [2, 3, 4, 1], max_new_tokens=4)
            batcher.submit(unlucky)
            batcher.submit(lucky)
            batcher.run()
        assert unlucky.outcome == "shed"
        assert unlucky.result.token_ids == []
        assert lucky.outcome == "completed"
        assert arena.stats()["bytes_in_use"] == 0
        assert batcher.stats()["shed_requests"] == 1

    def test_decode_fault_is_transient(self, chaos_model):
        injector = FaultInjector(seed=0).on("engine.decode_step", at_calls=[2, 3])
        with injector:
            batcher = ContinuousBatcher(chaos_model, max_batch_size=2)
            request = _request(chaos_model, 0, [1, 2, 3, 4], max_new_tokens=6)
            batcher.submit(request)
            batcher.run()
        assert request.outcome == "completed"
        assert batcher.stats()["decode_faults"] == 2
        want = generate_greedy(chaos_model, [1, 2, 3, 4], 6)
        assert request.result.token_ids == want.token_ids  # retries don't skew tokens


class TestPrefixCacheInvalidation:
    def test_abnormal_finish_invalidates_inserted_prefix(self, chaos_model):
        """A failed request's prefill K/V must not seed later requests."""
        fake = FakeClock()
        prefix_cache = PrefixCache(8)
        prompt = [1, 2, 3, 4, 1, 2]
        injector = FaultInjector(seed=0).on(
            "engine.decode_step", at_calls=[2], error=None, delay_s=1.0
        )
        with use(fake), injector:
            batcher = ContinuousBatcher(chaos_model, max_batch_size=2, prefix_cache=prefix_cache)
            doomed = _request(chaos_model, 0, prompt, max_new_tokens=8, deadline_s=0.5)
            batcher.submit(doomed)
            batcher.run()
            assert doomed.outcome == "deadline_exceeded"
            # The prefill-time insert was rolled back on abnormal finish...
            assert prefix_cache.stats()["invalidations"] == 1
            assert len(prefix_cache) == 0
            # ...so an identical prompt misses instead of reusing suspect K/V.
            retry = _request(chaos_model, 1, prompt, max_new_tokens=8)
            batcher.submit(retry)
            batcher.run()
        assert retry.outcome == "completed"
        assert retry.prefix_reused == 0
        assert prefix_cache.stats()["misses"] >= 1
        want = generate_greedy(chaos_model, prompt, 8)
        assert retry.result.token_ids == want.token_ids

    def test_completed_requests_still_populate_prefix_cache(self, chaos_model):
        prefix_cache = PrefixCache(8)
        batcher = ContinuousBatcher(chaos_model, max_batch_size=2, prefix_cache=prefix_cache)
        first = _request(chaos_model, 0, [1, 2, 3, 4, 1, 2], max_new_tokens=4)
        batcher.submit(first)
        batcher.run()
        assert len(prefix_cache) == 1
        again = _request(chaos_model, 1, [1, 2, 3, 4, 1, 2], max_new_tokens=4)
        batcher.submit(again)
        batcher.run()
        assert again.prefix_reused > 0


# -- serving under faults -----------------------------------------------------


class _BlockingCompleter:
    """Parks in ``complete`` until released; saturates admission for real."""

    name = "blocking"

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def complete(self, prompt, max_new_tokens=96):
        self.entered.set()
        assert self.release.wait(timeout=10), "test forgot to release the completer"
        return "blocked: done"


class _FallbackCompleter:
    name = "fallback"

    def complete(self, prompt, max_new_tokens=96):
        return "fallback: ok"


class TestServingBackpressure:
    def _saturated_service(self, **kwargs):
        blocker = _BlockingCompleter()
        service = PredictionService(blocker, max_queue_depth=1, **kwargs)
        thread = threading.Thread(target=service.predict, args=("occupy the slot",))
        thread.start()
        assert blocker.entered.wait(timeout=10)
        return service, blocker, thread

    def test_saturation_degrades_to_fallback(self):
        service, blocker, thread = self._saturated_service(fallback=_FallbackCompleter())
        try:
            payload = service.predict("another prompt")
            assert payload["degraded"] is True
            assert payload["completion"] == "fallback: ok"
            # Degraded output is never cached: a later (unsaturated) call
            # must regenerate, not replay the fallback's answer.
            assert service.cache.get("another prompt") is None
            assert service.degraded_count == 1
        finally:
            blocker.release.set()
            thread.join(timeout=10)

    def test_saturation_sheds_typed_503_without_fallback(self):
        service, blocker, thread = self._saturated_service(shed_retry_after_s=0.25)
        try:
            with pytest.raises(ServiceOverloadedError) as exc_info:
                service.predict("another prompt")
            assert exc_info.value.retry_after_s == 0.25
            assert service.shed_count == 1
            assert service.obs.metrics.snapshot()["counters"]["serving.shed"] == 1
        finally:
            blocker.release.set()
            thread.join(timeout=10)

    def test_cache_hits_served_even_when_saturated(self):
        service, blocker, thread = self._saturated_service()
        try:
            service.cache.put("warm prompt", "warm answer")
            payload = service.predict("warm prompt")
            assert payload["cached"] is True and payload["completion"] == "warm answer"
        finally:
            blocker.release.set()
            thread.join(timeout=10)

    def test_engine_shed_degrades_and_counts(self, tiny_tokenizer, tiny_network):
        engine = InferenceEngine(tiny_network, tiny_tokenizer, max_batch_size=2)
        service = PredictionService(engine, engine=engine, fallback=_FallbackCompleter())
        prompt = "- name: Install nginx"
        injector = FaultInjector(seed=0).on("kv_arena.acquire", at_calls=[1])
        with injector:
            payload = service.predict(prompt, max_new_tokens=4)
        assert payload["degraded"] is True
        assert payload["completion"] == "fallback: ok"
        assert service.cache.get(prompt) is None
        counters = service.metrics()["metrics"]["counters"]
        assert counters["serving.degraded"] == 1
        assert counters["engine.requests_shed"] == 1
        assert engine.kv_arena.stats()["bytes_in_use"] == 0
        # With the fault gone the same prompt completes and is cached.
        payload = service.predict(prompt, max_new_tokens=4)
        assert "degraded" not in payload
        assert service.cache.get(prompt) is not None

    def test_deadline_maps_to_typed_error_and_skips_cache(self, tiny_tokenizer, tiny_network):
        engine = InferenceEngine(tiny_network, tiny_tokenizer, max_batch_size=2)
        service = PredictionService(engine, engine=engine)
        with pytest.raises(DeadlineExceededError):
            service.predict("- name: Install nginx", max_new_tokens=4, deadline_s=1e-9)
        assert service.deadline_exceeded_count == 1
        assert service.cache.get("- name: Install nginx") is None
        assert engine.kv_arena.stats()["bytes_in_use"] == 0


class TestServingHttpFaults:
    def test_503_shed_with_retry_after_header_and_metrics(self):
        service, blocker, thread = self._start_saturated()
        server = RestServer(service)
        try:
            with server:
                import urllib.error
                import urllib.request

                body = json.dumps({"prompt": "another"}).encode()
                request = urllib.request.Request(
                    server.url + "/v1/completions", data=body, method="POST",
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(request, timeout=10)
                assert exc_info.value.code == 503
                assert exc_info.value.headers["Retry-After"] == "1"
                payload = json.loads(exc_info.value.read().decode())
                assert payload["retry_after_s"] == 0.5
                # Shed counter is visible on /v1/metrics.
                client = PredictionClient(server.url)
                assert client.metrics()["metrics"]["counters"]["serving.shed"] == 1
        finally:
            blocker.release.set()
            thread.join(timeout=10)

    def _start_saturated(self):
        blocker = _BlockingCompleter()
        service = PredictionService(blocker, max_queue_depth=1)
        thread = threading.Thread(target=service.predict, args=("occupy the slot",))
        thread.start()
        assert blocker.entered.wait(timeout=10)
        return service, blocker, thread

    def test_client_maps_503_to_typed_error(self):
        service, blocker, thread = self._start_saturated()
        try:
            with RestServer(service) as server:
                client = PredictionClient(server.url)
                with pytest.raises(ServiceOverloadedError) as exc_info:
                    client.predict("another prompt")
                assert exc_info.value.retry_after_s == 0.5
        finally:
            blocker.release.set()
            thread.join(timeout=10)

    def test_client_retries_with_backoff_honoring_retry_after(self):
        service, blocker, thread = self._start_saturated()
        sleeps: list[float] = []
        try:
            with RestServer(service) as server:
                client = PredictionClient(
                    server.url,
                    retry_policy=RetryPolicy(max_retries=2, base_delay_s=0.05, seed=3),
                    sleep=sleeps.append,
                )
                with pytest.raises(ServiceOverloadedError):
                    client.predict("another prompt")
        finally:
            blocker.release.set()
            thread.join(timeout=10)
        assert len(sleeps) == 2 and client.retries == 2
        # Retry-After (0.5s) floors the backoff regardless of base delay.
        assert all(delay >= 0.5 for delay in sleeps)

    def test_retry_policy_backoff_is_seeded_and_bounded(self):
        a = [RetryPolicy(seed=9).delay(n) for n in (1, 2, 3)]
        b = [RetryPolicy(seed=9).delay(n) for n in (1, 2, 3)]
        assert a == b  # same seed, same jittered schedule
        assert RetryPolicy(jitter=0.0, base_delay_s=1.0, max_delay_s=2.0).delay(5) == 2.0
        assert RetryPolicy(jitter=0.0).delay(1, retry_after_s=4.0) == 4.0


# -- chaos CLI ----------------------------------------------------------------


class TestChaosCli:
    def test_replay_is_byte_identical(self, tmp_path):
        from repro.cli import main

        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        assert main(["chaos", "--seed", "5", "--requests", "6", "--out", str(first)]) == 0
        assert main(["chaos", "--seed", "5", "--requests", "6", "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        events = [json.loads(line) for line in first.read_text().splitlines()]
        summary = events[-1]
        assert summary["kind"] == "summary"
        assert summary["arena_bytes_in_use"] == 0
        outcomes = [event["outcome"] for event in events if event["kind"] == "request"]
        assert len(outcomes) == 6
        assert all(outcome in TERMINAL_OUTCOMES for outcome in outcomes)

    def test_different_seeds_differ(self, tmp_path):
        from repro.cli import main

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert main(["chaos", "--seed", "1", "--out", str(a)]) == 0
        assert main(["chaos", "--seed", "2", "--out", str(b)]) == 0
        assert a.read_bytes() != b.read_bytes()
