"""Tests for repro.baselines (retrieval, n-gram, Codex simulator)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.baselines.codex_sim import CodexSimulator, RECALL_THRESHOLD
from repro.baselines.ngram import NgramLM
from repro.baselines.retrieval import RetrievalBaseline, jaccard
from repro.dataset.finetune import extract_samples
from repro.tokenizer.bpe import BpeTokenizer


class TestJaccard:
    def test_identical(self):
        assert jaccard(frozenset({"a"}), frozenset({"a"})) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_partial(self):
        assert jaccard(frozenset({"a", "b"}), frozenset({"b", "c"})) == pytest.approx(1 / 3)


class TestRetrievalBaseline:
    def test_exact_recall(self):
        baseline = RetrievalBaseline()
        baseline.index("- name: Install nginx\n", "  apt:\n    name: nginx\n")
        baseline.index("- name: Start redis\n", "  service:\n    name: redis\n")
        assert "nginx" in baseline.complete("- name: Install nginx\n")
        assert "redis" in baseline.complete("- name: Start redis\n")

    def test_nearest_score(self):
        baseline = RetrievalBaseline()
        baseline.index("- name: Install nginx\n", "X")
        score, completion = baseline.nearest("- name: Install nginx\n")
        assert score == 1.0 and completion == "X"

    def test_empty_store(self):
        baseline = RetrievalBaseline()
        assert baseline.complete("anything") == ""
        assert baseline.nearest("anything") == (0.0, "")

    def test_index_samples(self, finetune_dataset):
        baseline = RetrievalBaseline()
        baseline.index_samples(finetune_dataset.train[:10])
        assert len(baseline) == 10

    def test_fingerprint_uses_prompt_tail(self):
        baseline = RetrievalBaseline()
        long_context = "\n".join(f"line {i}" for i in range(100))
        baseline.index(long_context + "\n- name: target task\n", "FOUND")
        score, completion = baseline.nearest("other prefix\n- name: target task\n")
        assert completion == "FOUND"
        assert score > 0


@pytest.fixture(scope="module")
def shared_tokenizer(galaxy_corpus):
    return BpeTokenizer.train(galaxy_corpus.texts()[:40], vocab_size=400)


class TestNgram:
    def test_order_validation(self, shared_tokenizer):
        with pytest.raises(ValueError):
            NgramLM(shared_tokenizer, order=1)

    def test_memorizes_repeated_text(self, shared_tokenizer):
        model = NgramLM(shared_tokenizer, order=4).fit(["abc abc abc abc"] * 5)
        out = model.complete("abc abc ", max_new_tokens=8)
        assert "abc" in out

    def test_untrained_returns_empty(self, shared_tokenizer):
        model = NgramLM(shared_tokenizer, order=3)
        assert model.complete("anything") == ""

    def test_next_token_backoff(self, shared_tokenizer):
        model = NgramLM(shared_tokenizer, order=3).fit(["x y z"] * 3)
        # unseen context backs off to unigram (most frequent token)
        assert model.next_token([999999 % shared_tokenizer.vocab_size]) is not None

    def test_stops_at_eot(self, shared_tokenizer):
        model = NgramLM(shared_tokenizer, order=3).fit(["short"])
        out = model.complete("short", max_new_tokens=50)
        assert len(out) < 400


class TestCodexSimulator:
    def test_contaminated_recall_gives_exact_match(self, galaxy_corpus, shared_tokenizer, rng):
        codex = CodexSimulator(shared_tokenizer, recall_fidelity=1.0)
        codex.fit(galaxy_corpus, galaxy_corpus, contamination=1.0, rng=rng.child("codex"))
        samples = extract_samples(galaxy_corpus)[:5]
        hits = sum(codex.complete(s.input_text) == s.target_text for s in samples)
        assert hits >= 3  # byte-for-byte recall on leaked content

    def test_recall_fidelity_degrades_exactness(self, galaxy_corpus, shared_tokenizer, rng):
        """Imperfect memory: lower fidelity means fewer verbatim recalls."""
        samples = extract_samples(galaxy_corpus)[:20]
        perfect = CodexSimulator(shared_tokenizer, recall_fidelity=1.0)
        perfect.fit(galaxy_corpus, galaxy_corpus, contamination=1.0, rng=rng.child("c1"))
        lossy = CodexSimulator(shared_tokenizer, recall_fidelity=0.0)
        lossy.fit(galaxy_corpus, galaxy_corpus, contamination=1.0, rng=rng.child("c1"))
        perfect_hits = sum(perfect.complete(s.input_text) == s.target_text for s in samples)
        lossy_hits = sum(lossy.complete(s.input_text) == s.target_text for s in samples)
        assert lossy_hits < perfect_hits

    def test_no_contamination_lowers_recall(self, galaxy_corpus, shared_tokenizer, rng):
        samples = extract_samples(galaxy_corpus)
        half = len(samples) // 2
        codex = CodexSimulator(shared_tokenizer).fit_samples(samples[:half])
        unseen = samples[half:half + 5]
        exact = sum(codex.complete(s.input_text) == s.target_text for s in unseen)
        assert exact <= 4  # mostly not byte-exact on unseen prompts

    def test_fallback_on_unrelated_prompt(self, galaxy_corpus, shared_tokenizer):
        codex = CodexSimulator(shared_tokenizer).fit(galaxy_corpus)
        out = codex.complete("- name: zzz qqq completely unrelated vvv\n")
        assert isinstance(out, str)

    def test_threshold_constant_sane(self):
        assert 0.0 < RECALL_THRESHOLD < 1.0

    def test_name_and_labels(self, shared_tokenizer):
        codex = CodexSimulator(shared_tokenizer)
        assert codex.size_label == "175B"
        assert codex.context_window_label == 2048


class TestNgramTieBreaking:
    """Regression: Counter.most_common broke count ties by insertion order."""

    def test_context_ties_break_to_smallest_token_id(self, shared_tokenizer):
        lm = NgramLM(shared_tokenizer, order=2)
        # Insert the higher token id first: most_common(1) would return it.
        lm._tables[1][(7,)] = Counter({9: 3, 4: 3, 11: 1})
        assert lm.next_token([7]) == 4

    def test_unigram_ties_break_to_smallest_token_id(self, shared_tokenizer):
        lm = NgramLM(shared_tokenizer, order=2)
        lm._unigrams = Counter({12: 5, 3: 5, 8: 2})
        assert lm.next_token([99]) == 3

    def test_insertion_order_is_irrelevant(self, shared_tokenizer):
        forward = NgramLM(shared_tokenizer, order=2)
        forward._tables[1][(1,)] = Counter({2: 4, 6: 4})
        reversed_lm = NgramLM(shared_tokenizer, order=2)
        reversed_lm._tables[1][(1,)] = Counter({6: 4, 2: 4})
        assert forward.next_token([1]) == reversed_lm.next_token([1]) == 2

    def test_higher_count_still_wins(self, shared_tokenizer):
        lm = NgramLM(shared_tokenizer, order=2)
        lm._tables[1][(5,)] = Counter({2: 1, 30: 6})
        assert lm.next_token([5]) == 30


class TestRetrievalInvertedIndex:
    """The token->entry index must reproduce the brute-force scan exactly."""

    @staticmethod
    def _populated(seed: int = 0) -> RetrievalBaseline:
        rng = random.Random(seed)
        words = ["nginx", "redis", "install", "service", "copy", "state", "name", "apt"]
        baseline = RetrievalBaseline()
        for index in range(40):
            prompt = " ".join(rng.choice(words) for _ in range(rng.randint(1, 6)))
            baseline.index(f"- name: {prompt}\n", f"completion-{index}")
        baseline.index("\n", "empty-fingerprint")  # no word tokens at all
        return baseline

    def test_matches_brute_force_on_random_queries(self):
        baseline = self._populated()
        rng = random.Random(1)
        words = ["nginx", "redis", "install", "service", "copy", "unseen", "zzz"]
        for _ in range(60):
            query = " ".join(rng.choice(words) for _ in range(rng.randint(1, 5)))
            assert baseline.nearest(query) == baseline.nearest_scan(query)

    def test_empty_query_falls_back_to_scan(self):
        baseline = self._populated()
        # "\n###\n" has no [A-Za-z0-9_] tokens: empty fingerprint, which
        # scores 1.0 against the empty-fingerprint entry.
        assert baseline.nearest("\n###\n") == baseline.nearest_scan("\n###\n")
        assert baseline.nearest("\n###\n")[0] == 1.0

    def test_no_candidate_overlap_returns_first_entry(self):
        baseline = RetrievalBaseline()
        baseline.index("- name: install nginx\n", "first")
        baseline.index("- name: copy config\n", "second")
        assert baseline.nearest("qqq zzz vvv") == (0.0, "first")
        assert baseline.nearest("qqq zzz vvv") == baseline.nearest_scan("qqq zzz vvv")

    def test_tie_breaks_to_earliest_entry(self):
        baseline = RetrievalBaseline()
        baseline.index("alpha beta", "early")
        baseline.index("alpha beta", "late")  # identical fingerprint
        assert baseline.nearest("alpha beta") == (1.0, "early")

    def test_empty_store(self):
        assert RetrievalBaseline().nearest("anything") == (0.0, "")
