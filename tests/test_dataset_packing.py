"""Tests for repro.dataset.packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.corpus import Corpus, Document
from repro.dataset.packing import next_token_targets, pack_documents, token_stream
from repro.errors import EmptyCorpusError
from repro.tokenizer.bpe import BpeTokenizer


@pytest.fixture(scope="module")
def tokenizer():
    return BpeTokenizer.train(["alpha beta gamma delta\n" * 5], vocab_size=300)


def corpus_of(texts):
    return Corpus("c", [Document(str(i), "s", "ansible", t) for i, t in enumerate(texts)])


class TestTokenStream:
    def test_separator_between_files(self, tokenizer):
        corpus = corpus_of(["alpha", "beta"])
        stream = token_stream(corpus, tokenizer)
        assert stream.count(tokenizer.separator_id) == 2
        # separator follows each document
        assert stream[-1] == tokenizer.separator_id

    def test_special_text_in_document_not_special_id(self, tokenizer):
        corpus = corpus_of(["<|sep|>"])
        stream = token_stream(corpus, tokenizer)
        assert stream.count(tokenizer.separator_id) == 1  # only the appended one


class TestPackDocuments:
    def test_window_shape(self, tokenizer):
        corpus = corpus_of(["alpha beta gamma delta " * 10] * 4)
        rows = pack_documents(corpus, tokenizer, window=16)
        assert rows.shape[1] == 16
        assert rows.dtype == np.int64

    def test_drop_last_default(self, tokenizer):
        corpus = corpus_of(["alpha beta gamma delta " * 10] * 4)
        stream_length = len(token_stream(corpus, tokenizer))
        rows = pack_documents(corpus, tokenizer, window=16)
        assert rows.size == (stream_length // 16) * 16

    def test_keep_last_pads(self, tokenizer):
        corpus = corpus_of(["alpha beta gamma delta " * 10] * 4)
        rows = pack_documents(corpus, tokenizer, window=16, drop_last=False)
        assert tokenizer.pad_id in rows[-1]

    def test_too_small_corpus_rejected(self, tokenizer):
        with pytest.raises(EmptyCorpusError):
            pack_documents(corpus_of(["alpha"]), tokenizer, window=512)

    def test_content_preserved(self, tokenizer):
        corpus = corpus_of(["alpha beta gamma delta " * 10])
        rows = pack_documents(corpus, tokenizer, window=8)
        decoded = tokenizer.decode([token for row in rows for token in row])
        assert decoded.startswith("alpha beta gamma")


class TestNextTokenTargets:
    def test_shift(self):
        rows = np.array([[1, 2, 3, 4]])
        targets = next_token_targets(rows)
        assert targets.tolist() == [[2, 3, 4, -1]]

    def test_pad_targets_ignored(self):
        rows = np.array([[1, 2, 9, 9]])
        targets = next_token_targets(rows, pad_id=9)
        assert targets.tolist() == [[2, -1, -1, -1]]

    def test_custom_ignore_index(self):
        rows = np.array([[1, 2]])
        targets = next_token_targets(rows, ignore_index=-100)
        assert targets.tolist() == [[2, -100]]
