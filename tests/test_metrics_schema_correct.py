"""Tests for repro.metrics.schema_correct — the paper's novel metric #2."""

from __future__ import annotations

from repro.metrics.schema_correct import (
    is_schema_correct,
    schema_correct_rate,
    schema_violations,
)

GOOD = "- name: t\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
HISTORICAL = "- name: t\n  apt: name=nginx state=present\n"
INVALID_YAML = "- name: t\n  apt: {unclosed\n"
UNKNOWN_MODULE = "- name: t\n  frobnicate:\n    x: 1\n"


class TestIsSchemaCorrect:
    def test_good(self):
        assert is_schema_correct(GOOD)

    def test_invalid_yaml(self):
        assert not is_schema_correct(INVALID_YAML)

    def test_unknown_module(self):
        assert not is_schema_correct(UNKNOWN_MODULE)

    def test_historical_form_strict_fails_lenient_passes(self):
        assert not is_schema_correct(HISTORICAL)
        assert is_schema_correct(HISTORICAL, level="lenient")

    def test_bare_task_mapping(self):
        # A body without the leading dash parses as a dict: still validated.
        assert is_schema_correct("ansible.builtin.apt:\n  name: nginx\n  state: present\n")

    def test_playbook(self, fig1_text):
        assert is_schema_correct(fig1_text)


class TestSchemaViolations:
    def test_none_for_invalid_yaml(self):
        assert schema_violations(INVALID_YAML) is None

    def test_empty_for_good(self):
        assert schema_violations(GOOD) == []

    def test_rule_ids_reported(self):
        violations = schema_violations(UNKNOWN_MODULE)
        assert any(violation.rule == "module-unknown" for violation in violations)


class TestRate:
    def test_rate(self):
        assert schema_correct_rate([GOOD, INVALID_YAML]) == 50.0

    def test_empty(self):
        assert schema_correct_rate([]) == 0.0

    def test_paper_caveat_em_perfect_schema_zero(self):
        """A perfect-EM prediction may still be schema-incorrect (the paper's
        explicit caveat about unfiltered training data)."""
        reference = HISTORICAL
        prediction = HISTORICAL
        from repro.metrics.exact_match import exact_match

        assert exact_match(reference, prediction)
        assert not is_schema_correct(prediction)
