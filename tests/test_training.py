"""Tests for repro.training (trainer, pretrain, finetune)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.lm import WisdomModel
from repro.nn.optim import Adam
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.training.finetune import encode_samples, finetune, validation_bleu
from repro.training.pretrain import continue_pretraining, pretrain
from repro.training.trainer import TrainingHistory, iterate_batches, pad_sequences, run_epoch


class TestPadSequences:
    def test_padding_and_targets(self):
        ids, targets = pad_sequences([[1, 2, 3], [4, 5]], pad_id=0, window=8)
        assert ids.tolist() == [[1, 2, 3], [4, 5, 0]]
        assert targets.tolist() == [[2, 3, -1], [5, -1, -1]]

    def test_left_truncation_to_window(self):
        ids, _ = pad_sequences([[1, 2, 3, 4, 5]], pad_id=0, window=3)
        assert ids.tolist() == [[3, 4, 5]]


class TestIterateBatches:
    def test_covers_all_rows(self):
        rows = np.arange(10)[:, None]
        targets = rows.copy()
        seen = []
        for batch_ids, _ in iterate_batches(rows, targets, 3, np.random.default_rng(0)):
            seen.extend(batch_ids[:, 0].tolist())
        assert sorted(seen) == list(range(10))


class TestRunEpoch:
    def test_loss_decreases_over_epochs(self, tiny_network):
        rows = np.tile(np.arange(12), (4, 1)).astype(np.int64) % tiny_network.config.vocab_size
        targets = np.roll(rows, -1, axis=1)
        targets[:, -1] = -1
        optimizer = Adam(tiny_network.parameters(), learning_rate=2e-3)
        history = TrainingHistory()
        rng = np.random.default_rng(0)
        first, _ = run_epoch(tiny_network, optimizer, rows, targets, 2, rng, history=history)
        for _ in range(6):
            last, _ = run_epoch(tiny_network, optimizer, rows, targets, 2, rng, history=history)
        assert last < first
        assert history.improved()


class TestPretrain:
    def test_pretrain_reduces_loss(self, galaxy_corpus, tiny_tokenizer):
        config = TransformerConfig(
            vocab_size=tiny_tokenizer.vocab_size, n_positions=32, dim=16, n_layers=1, n_heads=2
        )
        network = DecoderLM(config, numpy_rng(0))
        history = pretrain(network, galaxy_corpus, tiny_tokenizer, epochs=3, batch_size=8, learning_rate=2e-3, max_batches_per_epoch=8)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_continue_pretraining(self, galaxy_corpus, tiny_tokenizer):
        config = TransformerConfig(
            vocab_size=tiny_tokenizer.vocab_size, n_positions=32, dim=16, n_layers=1, n_heads=2
        )
        model = WisdomModel("m", tiny_tokenizer, DecoderLM(config, numpy_rng(0)))
        history = continue_pretraining(model, galaxy_corpus, epochs=1, batch_size=8, max_batches_per_epoch=4)
        assert len(history.epoch_losses) == 1


@pytest.fixture()
def tiny_wisdom(tiny_tokenizer):
    config = TransformerConfig(
        vocab_size=tiny_tokenizer.vocab_size, n_positions=48, dim=16, n_layers=1, n_heads=2
    )
    return WisdomModel("tiny", tiny_tokenizer, DecoderLM(config, numpy_rng(3)))


class TestFinetune:
    def test_encode_appends_eot(self, tiny_wisdom, finetune_dataset):
        encoded = encode_samples(finetune_dataset.train[:3], tiny_wisdom)
        assert all(sequence[-1] == tiny_wisdom.tokenizer.end_of_text_id for sequence in encoded)

    def test_finetune_reduces_loss(self, tiny_wisdom, finetune_dataset):
        history = finetune(
            tiny_wisdom,
            finetune_dataset.train[:24],
            validation_samples=None,
            epochs=3,
            batch_size=8,
            learning_rate=2e-3,
            select_best_by_bleu=False,
        )
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_finetune_empty_rejected(self, tiny_wisdom):
        with pytest.raises(ValueError):
            finetune(tiny_wisdom, [], epochs=1)

    def test_best_checkpoint_restored(self, tiny_wisdom, finetune_dataset):
        history = finetune(
            tiny_wisdom,
            finetune_dataset.train[:16],
            finetune_dataset.validation[:4],
            epochs=2,
            batch_size=8,
            learning_rate=2e-3,
            validation_subset=2,
        )
        # validation BLEU recorded once per epoch (stored negated)
        assert len(history.validation_losses) == 2

    def test_validation_bleu_bounds(self, tiny_wisdom, finetune_dataset):
        score = validation_bleu(tiny_wisdom, finetune_dataset.validation[:2], max_samples=2, max_new_tokens=12)
        assert 0.0 <= score <= 100.0

    def test_validation_bleu_empty(self, tiny_wisdom):
        assert validation_bleu(tiny_wisdom, []) == 0.0
