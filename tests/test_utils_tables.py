"""Tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5]])
        lines = text.split("\n")
        assert lines[0].startswith("a")
        assert "2.50" in lines[2]

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table 1")
        assert text.startswith("Table 1\n=======")

    def test_column_width_follows_longest_cell(self):
        text = format_table(["x"], [["longvalue"], ["s"]])
        header, separator, *rows = text.split("\n")
        assert len(separator) >= len("longvalue")
        assert rows[0].startswith("longvalue")

    def test_precision(self):
        text = format_table(["v"], [[1.23456]], precision=3)
        assert "1.235" in text

    def test_ints_not_float_formatted(self):
        text = format_table(["v"], [[3]])
        assert "3.00" not in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text
