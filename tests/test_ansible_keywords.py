"""Tests for repro.ansible.keywords."""

from __future__ import annotations

from repro.ansible.keywords import (
    BLOCK_KEYS,
    LOOP_KEYWORDS,
    PLAY_KEYWORDS,
    PLAY_TASK_SECTIONS,
    TASK_KEYWORDS,
    is_play_keyword,
    is_task_keyword,
    looks_like_play,
)


class TestKeywordTables:
    def test_core_play_keywords_present(self):
        for keyword in ("hosts", "tasks", "vars", "become", "gather_facts", "roles", "handlers"):
            assert is_play_keyword(keyword)

    def test_core_task_keywords_present(self):
        for keyword in ("name", "when", "loop", "register", "become", "notify", "tags"):
            assert is_task_keyword(keyword)

    def test_module_names_are_not_keywords(self):
        for module in ("apt", "ansible.builtin.copy", "service", "debug"):
            assert not is_task_keyword(module)
            assert not is_play_keyword(module)

    def test_task_sections_are_play_keywords(self):
        assert set(PLAY_TASK_SECTIONS) <= PLAY_KEYWORDS

    def test_block_keys(self):
        assert BLOCK_KEYS == {"block", "rescue", "always"}

    def test_loop_keywords_cover_legacy_forms(self):
        assert "loop" in LOOP_KEYWORDS
        assert "with_items" in LOOP_KEYWORDS
        assert all(k.startswith("with_") or k == "loop" for k in LOOP_KEYWORDS)

    def test_hosts_is_not_a_task_keyword(self):
        assert "hosts" not in TASK_KEYWORDS


class TestLooksLikePlay:
    def test_hosts_makes_play(self):
        assert looks_like_play({"hosts": "all"})

    def test_task_mapping_is_not_play(self):
        assert not looks_like_play({"name": "t", "ansible.builtin.apt": {"name": "x"}})

    def test_non_dict(self):
        assert not looks_like_play([1, 2])

    def test_tasks_section_with_only_play_keys(self):
        assert looks_like_play({"name": "p", "tasks": []})

    def test_tasks_key_with_module_key_is_not_play(self):
        # e.g. a task with a weird extra key should not be classified as play
        assert not looks_like_play({"tasks": [], "ansible.builtin.apt": None})
