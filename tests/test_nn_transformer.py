"""Tests for repro.nn.transformer (the full decoder LM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.optim import Adam
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM, TransformerConfig


@pytest.fixture()
def small_model():
    config = TransformerConfig(vocab_size=32, n_positions=16, dim=16, n_layers=2, n_heads=4)
    return DecoderLM(config, numpy_rng(0))


class TestConfig:
    def test_head_divisibility(self):
        with pytest.raises(ShapeError):
            TransformerConfig(vocab_size=8, dim=30, n_heads=4)

    def test_even_dim_required(self):
        with pytest.raises(ShapeError):
            TransformerConfig(vocab_size=8, dim=33, n_heads=3)

    def test_mlp_dim(self):
        config = TransformerConfig(vocab_size=8, dim=16, n_heads=4, mlp_ratio=4)
        assert config.mlp_dim == 64


class TestForward:
    def test_logits_shape(self, small_model):
        logits = small_model.forward(np.zeros((2, 5), dtype=np.int64), training=False)
        assert logits.shape == (2, 5, 32)

    def test_requires_2d(self, small_model):
        with pytest.raises(ShapeError):
            small_model.forward(np.zeros(5, dtype=np.int64))

    def test_deterministic(self, small_model):
        ids = np.arange(10, dtype=np.int64)[None]
        a = small_model.forward(ids, training=False)
        b = small_model.forward(ids, training=False)
        assert np.array_equal(a, b)

    def test_causality_end_to_end(self, small_model):
        ids = np.arange(8, dtype=np.int64)[None]
        base = small_model.forward(ids, training=False)
        changed = ids.copy()
        changed[0, 7] = 31
        out = small_model.forward(changed, training=False)
        assert np.allclose(out[0, :7], base[0, :7], atol=1e-4)


class TestTraining:
    def test_full_model_gradient_check(self, small_model):
        ids = np.array([[1, 2, 3, 4, 5, 6]], dtype=np.int64)
        targets = np.roll(ids, -1, axis=1)
        targets[:, -1] = -1
        small_model.zero_grad()
        small_model.loss_and_backward(ids, targets)
        parameter = small_model.token_embedding.weight
        eps = 1e-3
        for i, j in [(1, 0), (3, 7)]:
            original = parameter.data[i, j]
            parameter.data[i, j] = original + eps
            up = small_model.evaluate_loss(ids, targets)
            parameter.data[i, j] = original - eps
            down = small_model.evaluate_loss(ids, targets)
            parameter.data[i, j] = original
            numerical = (up - down) / (2 * eps)
            assert parameter.grad[i, j] == pytest.approx(numerical, abs=5e-3)

    def test_memorizes_repeating_sequence(self, small_model):
        ids = np.array([[1, 2, 3, 4] * 4], dtype=np.int64)
        targets = np.roll(ids, -1, axis=1)
        targets[:, -1] = -1
        optimizer = Adam(small_model.parameters(), learning_rate=3e-3)
        first_loss = None
        for _ in range(120):
            small_model.zero_grad()
            loss = small_model.loss_and_backward(ids, targets)
            if first_loss is None:
                first_loss = loss
            optimizer.step()
        assert loss < first_loss * 0.2
        logits = small_model.forward(ids, training=False)
        predictions = logits[0, :-1].argmax(axis=-1)
        assert (predictions == targets[0, :-1]).mean() > 0.9

    def test_evaluate_loss_does_not_touch_grads(self, small_model):
        ids = np.array([[1, 2, 3]], dtype=np.int64)
        targets = np.array([[2, 3, -1]], dtype=np.int64)
        small_model.zero_grad()
        small_model.evaluate_loss(ids, targets)
        for parameter in small_model.parameters():
            assert np.allclose(parameter.grad, 0.0)


class TestIncremental:
    def test_matches_full_forward(self, small_model):
        ids = np.arange(10, dtype=np.int64)[None]
        full = small_model.forward(ids, training=False)
        caches = small_model.new_cache()
        chunks = [small_model.forward_incremental(ids[:, :4], caches)]
        for position in range(4, 10):
            chunks.append(small_model.forward_incremental(ids[:, position:position + 1], caches))
        stitched = np.concatenate(chunks, axis=1)
        assert np.allclose(stitched, full, atol=1e-4)


class TestStateDict:
    def test_roundtrip(self, small_model):
        state = small_model.state_dict()
        clone = DecoderLM(small_model.config, numpy_rng(99))
        clone.load_state_dict(state)
        ids = np.arange(6, dtype=np.int64)[None]
        assert np.allclose(
            clone.forward(ids, training=False), small_model.forward(ids, training=False)
        )

    def test_missing_key_rejected(self, small_model):
        state = small_model.state_dict()
        state.pop("ln_f.gamma")
        clone = DecoderLM(small_model.config, numpy_rng(0))
        with pytest.raises(ShapeError):
            clone.load_state_dict(state)

    def test_shape_mismatch_rejected(self, small_model):
        state = small_model.state_dict()
        state["ln_f.gamma"] = np.zeros(99, dtype=np.float32)
        clone = DecoderLM(small_model.config, numpy_rng(0))
        with pytest.raises(ShapeError):
            clone.load_state_dict(state)

    def test_parameter_names_unique(self, small_model):
        names = [parameter.name for parameter in small_model.parameters()]
        assert len(names) == len(set(names))
