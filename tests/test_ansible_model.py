"""Tests for repro.ansible.model (the structured data model)."""

from __future__ import annotations

import pytest

from repro import yamlio
from repro.ansible.model import (
    Block,
    Play,
    Playbook,
    Task,
    TaskList,
    classify_snippet,
    parse_task_entry,
)
from repro.errors import AnsibleError


TASK = {
    "name": "Install nginx",
    "ansible.builtin.apt": {"name": "nginx", "state": "present"},
    "become": True,
    "when": "ansible_os_family == 'Debian'",
}


class TestTask:
    def test_from_data_splits_fields(self):
        task = Task.from_data(TASK)
        assert task.name == "Install nginx"
        assert task.module == "ansible.builtin.apt"
        assert task.args == {"name": "nginx", "state": "present"}
        assert task.keywords == {"become": True, "when": "ansible_os_family == 'Debian'"}

    def test_to_data_canonical_order(self):
        task = Task.from_data({"become": True, "ansible.builtin.apt": None, "name": "t"})
        assert list(task.to_data()) == ["name", "ansible.builtin.apt", "become"]

    def test_roundtrip_same_content(self):
        task = Task.from_data(TASK)
        assert task.to_data() == TASK

    def test_fqcn_resolution(self):
        task = Task.from_data({"name": "t", "apt": {"name": "x"}})
        assert task.fqcn == "ansible.builtin.apt"

    def test_keyword_only_task(self):
        task = Task.from_data({"name": "t", "when": "x"})
        assert task.module is None
        assert task.fqcn is None

    def test_multiple_module_keys_rejected(self):
        with pytest.raises(AnsibleError):
            Task.from_data({"apt": None, "yum": None})

    def test_non_mapping_rejected(self):
        with pytest.raises(AnsibleError):
            Task.from_data(["not", "a", "task"])

    def test_normalized_args_kv(self):
        task = Task.from_data({"name": "t", "apt": "name=nginx state=present"})
        assert task.normalized_args() == {"name": "nginx", "state": "present"}

    def test_normalized_args_free_form(self):
        task = Task.from_data({"name": "t", "shell": "echo hi chdir=/tmp"})
        assert task.normalized_args() == {"_raw_params": "echo hi", "chdir": "/tmp"}

    def test_normalized_args_dict_passthrough(self):
        task = Task.from_data(TASK)
        assert task.normalized_args() == TASK["ansible.builtin.apt"]


class TestBlock:
    BLOCK = {
        "name": "handle failures",
        "block": [{"name": "try", "ansible.builtin.command": "might_fail"}],
        "rescue": [{"name": "recover", "ansible.builtin.debug": {"msg": "failed"}}],
        "always": [{"name": "cleanup", "ansible.builtin.file": {"path": "/tmp/x", "state": "absent"}}],
        "when": "do_it",
    }

    def test_from_data(self):
        block = Block.from_data(self.BLOCK)
        assert len(block.block) == 1
        assert len(block.rescue) == 1
        assert len(block.always) == 1
        assert block.keywords == {"when": "do_it"}

    def test_flat_tasks_order(self):
        block = Block.from_data(self.BLOCK)
        assert [task.name for task in block.flat_tasks()] == ["try", "recover", "cleanup"]

    def test_roundtrip(self):
        block = Block.from_data(self.BLOCK)
        assert block.to_data() == self.BLOCK

    def test_parse_task_entry_dispatches(self):
        assert isinstance(parse_task_entry(self.BLOCK), Block)
        assert isinstance(parse_task_entry(TASK), Task)

    def test_not_a_block_rejected(self):
        with pytest.raises(AnsibleError):
            Block.from_data({"name": "x"})

    def test_nested_blocks(self):
        nested = {"block": [{"block": [TASK]}]}
        block = Block.from_data(nested)
        assert [task.name for task in block.flat_tasks()] == ["Install nginx"]


class TestPlayAndPlaybook:
    def test_playbook_from_fig1(self, fig1_text):
        playbook = Playbook.from_data(yamlio.loads(fig1_text))
        assert len(playbook.plays) == 1
        play = playbook.plays[0]
        assert play.hosts == "servers"
        assert [task.name for task in play.all_tasks()] == ["Install SSH server", "Start SSH server"]

    def test_playbook_roundtrip(self, fig1_text):
        data = yamlio.loads(fig1_text)
        playbook = Playbook.from_data(data)
        assert playbook.to_data() == data

    def test_play_sections(self):
        play = Play.from_data(
            {
                "hosts": "all",
                "pre_tasks": [TASK],
                "tasks": [TASK],
                "handlers": [{"name": "h", "ansible.builtin.service": {"name": "x", "state": "restarted"}}],
            }
        )
        assert len(play.all_tasks()) == 3

    def test_bad_section_type(self):
        with pytest.raises(AnsibleError):
            Play.from_data({"hosts": "all", "tasks": "oops"})

    def test_playbook_requires_list(self):
        with pytest.raises(AnsibleError):
            Playbook.from_data({"hosts": "all"})


class TestTaskList:
    def test_roundtrip(self):
        data = [TASK, {"name": "second", "ansible.builtin.debug": {"msg": "done"}}]
        tasks = TaskList.from_data(data)
        assert tasks.to_data() == data
        assert [task.name for task in tasks.flat_tasks()] == ["Install nginx", "second"]

    def test_requires_list(self):
        with pytest.raises(AnsibleError):
            TaskList.from_data(TASK)


class TestClassifySnippet:
    def test_playbook(self, fig1_text):
        assert classify_snippet(yamlio.loads(fig1_text)) == "playbook"

    def test_tasks(self):
        assert classify_snippet([TASK]) == "tasks"

    def test_other_for_mixed(self):
        assert classify_snippet([{"hosts": "all"}, TASK]) == "other"

    def test_other_for_scalars(self):
        assert classify_snippet([1, 2]) == "other"
        assert classify_snippet({"a": 1}) == "other"
        assert classify_snippet([]) == "other"

    def test_corpus_classification_agrees_with_generator(self, galaxy_corpus):
        for document in galaxy_corpus.documents[:40]:
            kind = classify_snippet(yamlio.loads(document.content))
            assert kind == document.kind
