"""Tests for repro.obs.profile (op-level profiler, FLOPs/roofline model).

The load-bearing properties: the analytic cost model is exact where the
ISSUE pins it (Linear forward is ``2*m*n*k`` FLOPs, bias adds ``m*k``),
attach/detach leaves layer instances exactly as found, self time nests
correctly (a parent's self excludes its profiled children), a disabled
profiler records nothing, and profiling never changes the numbers a
layer returns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.model import SIZE_350M, transformer_config
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM
from repro.obs import NULL_PROFILER, OpProfiler
from repro.obs.profile import iter_layers
from repro.obs.report import format_op_table


def small_network() -> DecoderLM:
    return DecoderLM(transformer_config(64, SIZE_350M, 32), numpy_rng(0))


class TestLinearFlops:
    def test_forward_matches_2mnk_exactly(self):
        batch, seq, fan_in, fan_out = 3, 5, 8, 16
        layer = Linear("proj", fan_in, fan_out, numpy_rng(0), bias=False)
        profiler = OpProfiler().attach(layer)
        x = numpy_rng(1).normal(size=(batch, seq, fan_in)).astype(np.float32)
        layer.forward(x, training=False)
        (stat,) = profiler.stats()
        m = batch * seq
        assert stat.name == "Linear.forward"
        assert stat.calls == 1
        assert stat.flops == 2 * m * fan_in * fan_out  # exact, no tolerance
        assert stat.bytes_moved == 4 * (m * fan_in + fan_in * fan_out + m * fan_out)
        profiler.detach()

    def test_bias_adds_m_times_k(self):
        batch, seq, fan_in, fan_out = 2, 4, 6, 10
        m = batch * seq
        x = numpy_rng(1).normal(size=(batch, seq, fan_in)).astype(np.float32)
        flops = {}
        for bias in (False, True):
            layer = Linear("proj", fan_in, fan_out, numpy_rng(0), bias=bias)
            profiler = OpProfiler().attach(layer)
            layer.forward(x, training=False)
            flops[bias] = profiler.stats()[0].flops
            profiler.detach()
        assert flops[True] - flops[False] == m * fan_out

    def test_flops_accumulate_over_calls(self):
        layer = Linear("proj", 4, 4, numpy_rng(0), bias=False)
        profiler = OpProfiler().attach(layer)
        x = np.ones((2, 4), dtype=np.float32)
        for _ in range(3):
            layer.forward(x, training=False)
        (stat,) = profiler.stats()
        assert stat.calls == 3
        assert stat.flops == 3 * (2 * 2 * 4 * 4)
        profiler.detach()

    def test_backward_counts_both_matmuls(self):
        layer = Linear("proj", 4, 6, numpy_rng(0), bias=False)
        profiler = OpProfiler().attach(layer)
        x = np.ones((5, 4), dtype=np.float32)
        out = layer.forward(x, training=True)
        layer.backward(np.ones_like(out))
        by_name = {stat.name: stat for stat in profiler.stats()}
        # dW = x^T @ g plus dx = g @ W^T: twice the forward matmul work.
        assert by_name["Linear.backward"].flops == 2 * by_name["Linear.forward"].flops
        profiler.detach()


class TestAttachDetach:
    def test_attach_wraps_detach_restores(self):
        layer = Linear("proj", 4, 4, numpy_rng(0))
        original = type(layer).forward
        profiler = OpProfiler().attach(layer)
        assert getattr(layer.forward, "_repro_profiled", False)
        profiler.detach()
        assert "forward" not in vars(layer)  # instance attr gone
        assert type(layer).forward is original

    def test_attach_is_idempotent(self):
        layer = Linear("proj", 4, 4, numpy_rng(0))
        profiler = OpProfiler().attach(layer)
        profiler.attach(layer)  # second attach must not double-wrap
        layer.forward(np.ones((1, 4), dtype=np.float32), training=False)
        assert profiler.stats()[0].calls == 1
        profiler.detach()
        layer.forward(np.ones((1, 4), dtype=np.float32), training=False)
        assert profiler.stats()[0].calls == 1  # detached: no new records

    def test_iter_layers_walks_whole_tree(self):
        network = small_network()
        classes = {type(layer).__name__ for layer in iter_layers(network)}
        assert {"DecoderLM", "Block", "CausalSelfAttention", "Mlp",
                "Linear", "LayerNorm", "Embedding"} <= classes

    def test_iter_layers_rejects_non_layer(self):
        with pytest.raises(ObservabilityError):
            iter_layers(object())

    def test_profiled_output_is_identical(self):
        x = numpy_rng(1).normal(size=(2, 3, 8)).astype(np.float32)
        layer = Linear("proj", 8, 8, numpy_rng(0))
        expected = layer.forward(x, training=False)
        profiler = OpProfiler().attach(layer)
        profiled = layer.forward(x, training=False)
        profiler.detach()
        np.testing.assert_array_equal(profiled, expected)


class TestDisabledAndNull:
    def test_disabled_profiler_records_nothing(self):
        layer = Linear("proj", 4, 4, numpy_rng(0))
        profiler = OpProfiler(enabled=False).attach(layer)
        layer.forward(np.ones((1, 4), dtype=np.float32), training=False)
        assert profiler.stats() == []
        assert profiler.total_calls == 0
        profiler.detach()

    def test_null_profiler_is_disabled(self):
        assert not NULL_PROFILER.enabled

    def test_context_manager_toggles_enabled(self):
        layer = Linear("proj", 4, 4, numpy_rng(0))
        profiler = OpProfiler(enabled=False).attach(layer)
        x = np.ones((1, 4), dtype=np.float32)
        with profiler:
            layer.forward(x, training=False)
        layer.forward(x, training=False)  # outside: disabled again
        assert profiler.stats()[0].calls == 1
        profiler.detach()

    def test_capacity_validated(self):
        with pytest.raises(ObservabilityError):
            OpProfiler(capacity=0)


class TestSelfTimeNesting:
    def test_parent_self_excludes_children(self):
        network = small_network()
        profiler = OpProfiler().attach(network)
        ids = np.array([[1, 2, 3, 4]], dtype=np.int64)
        network.forward(ids, training=False)
        by_name = {stat.name: stat for stat in profiler.stats()}
        block = by_name["Block.forward"]
        assert block.self_s < block.total_s  # children subtracted
        total_self = sum(stat.self_s for stat in by_name.values())
        root_total = by_name["DecoderLM.forward"].total_s
        # Self times partition the root's wall time (within timer noise).
        assert total_self <= root_total * 1.05
        profiler.detach()

    def test_stats_sorted_by_self_time(self):
        network = small_network()
        profiler = OpProfiler().attach(network)
        network.forward(np.array([[1, 2, 3]], dtype=np.int64), training=False)
        self_times = [stat.self_s for stat in profiler.stats()]
        assert self_times == sorted(self_times, reverse=True)
        profiler.detach()


class TestAggregatesAndMemory:
    def test_reset_keeps_total_calls_monotonic(self):
        layer = Linear("proj", 4, 4, numpy_rng(0))
        profiler = OpProfiler().attach(layer)
        x = np.ones((1, 4), dtype=np.float32)
        layer.forward(x, training=False)
        layer.forward(x, training=False)
        profiler.reset()
        assert profiler.stats() == []
        assert profiler.total_calls == 2
        layer.forward(x, training=False)
        assert profiler.total_calls == 3
        profiler.detach()

    def test_event_ring_is_bounded(self):
        layer = Linear("proj", 4, 4, numpy_rng(0))
        profiler = OpProfiler(capacity=4).attach(layer)
        x = np.ones((1, 4), dtype=np.float32)
        for _ in range(10):
            layer.forward(x, training=False)
        assert len(profiler.events()) == 4
        assert profiler.total_calls == 10
        profiler.detach()

    def test_alloc_high_water_covers_args_and_result(self):
        layer = Linear("proj", 64, 128, numpy_rng(0), bias=False)
        profiler = OpProfiler().attach(layer)
        x = np.ones((8, 64), dtype=np.float32)
        layer.forward(x, training=False)
        # at peak both the input and the fresh output were live
        assert profiler.alloc_high_water_bytes >= x.nbytes + 8 * 128 * 4
        profiler.detach()

    def test_roofline_properties(self):
        layer = Linear("proj", 4, 4, numpy_rng(0), bias=False)
        profiler = OpProfiler().attach(layer)
        layer.forward(np.ones((2, 4), dtype=np.float32), training=False)
        (stat,) = profiler.stats()
        assert stat.achieved_gflops == stat.flops / stat.self_s / 1e9
        assert stat.arithmetic_intensity == stat.flops / stat.bytes_moved
        assert stat.to_dict()["achieved_gflops"] == stat.achieved_gflops
        profiler.detach()

    def test_tracemalloc_peak_when_tracked(self):
        layer = Linear("proj", 32, 32, numpy_rng(0))
        profiler = OpProfiler(track_memory=True).attach(layer)
        with profiler:
            layer.forward(np.ones((16, 32), dtype=np.float32), training=False)
        assert profiler.tracemalloc_peak_bytes > 0
        profiler.detach()


class TestCostModelCoverage:
    def test_embedding_moves_bytes_no_flops(self):
        layer = Embedding("wte", 16, 8, numpy_rng(0))
        profiler = OpProfiler().attach(layer)
        ids = np.array([[1, 2, 3]], dtype=np.int64)
        out = layer.forward(ids, training=False)
        (stat,) = profiler.stats()
        assert stat.flops == 0.0
        assert stat.bytes_moved == 2 * out.size * 4
        profiler.detach()

    def test_layernorm_cost_scales_with_elements(self):
        layer = LayerNorm("ln", 8)
        profiler = OpProfiler().attach(layer)
        x = np.ones((2, 3, 8), dtype=np.float32)
        layer.forward(x, training=False)
        (stat,) = profiler.stats()
        assert stat.flops == 8 * x.size
        profiler.detach()

    def test_incremental_attention_uses_post_append_kv_length(self):
        network = small_network()
        caches = network.new_cache()
        network.forward_incremental(np.array([[1, 2, 3, 4]], dtype=np.int64), caches)
        profiler = OpProfiler().attach(network)
        network.forward_incremental(np.array([[5]], dtype=np.int64), caches)
        by_name = {stat.name: stat for stat in profiler.stats()}
        stat = by_name["CausalSelfAttention.forward_incremental"]
        layers = network.config.n_layers
        heads = SIZE_350M.n_heads
        head_dim = SIZE_350M.dim // heads
        dim = SIZE_350M.dim
        scores = 1 * heads * 1 * 5  # one new query over 5 total keys
        expected_per_layer = 2 * scores * head_dim * 2 + 5 * scores + 12 * (1 * 1 * dim)
        assert stat.flops == pytest.approx(layers * expected_per_layer)
        profiler.detach()


class TestSmokeEndToEnd:
    """Fast tier-1 smoke half of the S5 overhead benchmark."""

    def test_forward_backward_profile_on_tiny_model(self):
        network = small_network()
        profiler = OpProfiler().attach(network)
        ids = np.array([[1, 2, 3, 4, 5]], dtype=np.int64)
        targets = np.roll(ids, -1, axis=1).copy()
        targets[:, -1] = -1
        network.zero_grad()
        network.loss_and_backward(ids, targets)
        names = {stat.name for stat in profiler.stats()}
        assert "Linear.forward" in names
        assert "Linear.backward" in names
        assert "CausalSelfAttention.forward" in names
        assert profiler.total_flops > 0
        assert profiler.alloc_high_water_bytes > 0
        table = format_op_table(profiler.stats(), top=5)
        assert "Linear.forward" in table
        assert "GFLOP/s" in table
        profiler.detach()
