"""Tests for repro.eval (truncation + harness)."""

from __future__ import annotations

from repro.dataset.prompt import NL_TO_PB, NL_TO_T, T_NL_TO_T, build_task_sample
from repro.eval.harness import breakdown_by_type, evaluate
from repro.eval.truncation import truncate_generation, truncate_to_first_task

TASK = {"name": "Install nginx", "ansible.builtin.apt": {"name": "nginx", "state": "present"}}

BODY = "  ansible.builtin.apt:\n    name: nginx\n    state: present\n"


class TestTruncateToFirstTask:
    def test_single_task_untouched(self):
        assert truncate_to_first_task(BODY, 0) == BODY

    def test_second_task_removed(self):
        overflow = BODY + "- name: Another task\n  ansible.builtin.debug:\n    msg: x\n"
        assert truncate_to_first_task(overflow, 0) == BODY

    def test_dedent_out_of_task_stops(self):
        indented_body = "      ansible.builtin.apt:\n        name: nginx\n"
        overflow = indented_body + "  handlers:\n    - name: h\n"
        assert truncate_to_first_task(overflow, 4) == indented_body

    def test_document_marker_stops(self):
        overflow = BODY + "---\n- name: new doc\n"
        assert truncate_to_first_task(overflow, 0) == BODY

    def test_interior_blank_lines_kept(self):
        body = "  ansible.builtin.apt:\n\n    name: nginx\n"
        assert truncate_to_first_task(body, 0) == body

    def test_trailing_blanks_stripped(self):
        assert truncate_to_first_task(BODY + "\n\n", 0) == BODY

    def test_empty(self):
        assert truncate_to_first_task("", 0) == ""


class TestTruncateGeneration:
    def test_task_types_truncate(self):
        overflow = BODY + "- name: extra\n  ansible.builtin.debug:\n    msg: x\n"
        assert truncate_generation(overflow, 0, NL_TO_T) == BODY

    def test_playbook_type_untruncated(self):
        text = "  hosts: all\n  tasks:\n    - name: a\n      ansible.builtin.debug:\n        msg: x\n"
        assert truncate_generation(text, 0, NL_TO_PB) == text

    def test_empty_playbook_generation(self):
        assert truncate_generation("   \n", 0, NL_TO_PB) == ""


class _EchoCompleter:
    """Returns the stored mapping from prompt to completion."""

    name = "echo"

    def __init__(self, answers):
        self.answers = answers
        self.prompts = []

    def complete(self, prompt, max_new_tokens=96):
        self.prompts.append(prompt)
        return self.answers.get(prompt, "")


class TestEvaluate:
    def make_sample(self, generation_type=NL_TO_T):
        return build_task_sample(generation_type, "Install nginx", "", TASK, 0, "src")

    def test_perfect_completion_scores_perfect(self):
        sample = self.make_sample()
        completer = _EchoCompleter({sample.input_text: sample.target_text})
        report = evaluate(completer, [sample])
        assert report.exact_match == 100.0
        assert report.schema_correct == 100.0
        assert report.ansible_aware == 100.0

    def test_empty_completion_scores_zero_em(self):
        sample = self.make_sample()
        completer = _EchoCompleter({})
        report = evaluate(completer, [sample])
        assert report.exact_match == 0.0

    def test_context_priming_applied_to_contextless_types(self):
        sample = self.make_sample(NL_TO_T)
        completer = _EchoCompleter({})
        evaluate(completer, [sample], context_priming="Ansible\n")
        assert completer.prompts[0].startswith("Ansible\n")

    def test_context_priming_not_applied_to_contextual_types(self):
        sample = build_task_sample(T_NL_TO_T, "Install nginx", "- name: prev\n  ansible.builtin.debug:\n    msg: x\n", TASK, 0, "src")
        completer = _EchoCompleter({})
        evaluate(completer, [sample], context_priming="Ansible\n")
        assert not completer.prompts[0].startswith("Ansible\n")

    def test_max_samples(self):
        samples = [self.make_sample() for _ in range(5)]
        completer = _EchoCompleter({})
        report = evaluate(completer, samples, max_samples=2)
        assert report.count == 2

    def test_breakdown_by_type(self):
        samples = [self.make_sample(NL_TO_T), self.make_sample(T_NL_TO_T)]
        completer = _EchoCompleter({samples[0].input_text: samples[0].target_text})
        report = evaluate(completer, samples)
        reports = breakdown_by_type(report)
        labels = [r.label for r in reports]
        assert len(reports) == 3  # combined + 2 types
        assert any(NL_TO_T in label for label in labels[1:])
