"""Observability: request-level tracing and process-local metrics.

The operational substrate for the serving stack — the paper's system runs
as a latency-sensitive editor service, and you cannot operate (or
optimise) one without knowing where time goes.  Two primitives:

* :mod:`repro.obs.trace` — a span tracer with context-manager/decorator
  API, parent/child nesting, a bounded ring buffer and JSONL export;
* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms with percentile summaries.

:class:`Observability` bundles one of each and is what instrumented
components (:class:`~repro.engine.engine.InferenceEngine`,
:class:`~repro.serving.service.PredictionService`, the training loops)
accept.  The default posture is *metrics on, tracing off*: metrics are
cheap enough to always collect, while span tracing is opt-in via
:meth:`Observability.with_tracing` or the components' ``attach_tracer``
hooks, and must never change what the model generates.

Surfaced through ``GET /v1/metrics``, the extended ``/v1/stats`` and the
``repro obs`` CLI subcommand (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer, load_spans_jsonl


class Observability:
    """A tracer plus a metrics registry, shared across a serving stack.

    Components cache instrument handles from :attr:`metrics` at
    construction time, so the registry is fixed for the object's lifetime;
    the tracer, by contrast, may be swapped in later via
    :meth:`attach_tracer` (that is what makes tracing default-off cheap —
    the slot holds a disabled tracer until someone attaches a real one).
    """

    def __init__(self, tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def with_tracing(cls, capacity: int = 4096) -> "Observability":
        """An Observability whose tracer is enabled from the start."""
        return cls(tracer=Tracer(capacity=capacity))

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled

    def attach_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer


__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "NULL_TRACER",
    "load_spans_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "exponential_buckets",
    "linear_buckets",
]
