"""Observability: tracing, metrics, op profiling and training run logs.

The operational substrate for the serving stack — the paper's system runs
as a latency-sensitive editor service, and you cannot operate (or
optimise) one without knowing where time goes.  Four primitives:

* :mod:`repro.obs.trace` — a span tracer with context-manager/decorator
  API, parent/child nesting, a bounded ring buffer and JSONL export;
* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms with percentile summaries;
* :mod:`repro.obs.profile` — an op-level profiler hooking every layer's
  forward/backward with analytic FLOPs, bytes-moved and roofline
  accounting (achieved GFLOP/s, arithmetic intensity);
* :mod:`repro.obs.runlog` — a structured JSONL training-run recorder
  with rendering and a two-run compare mode.

:mod:`repro.obs.export` turns all of it into standard formats: Chrome
trace-event JSON (Perfetto-loadable span + op timelines) and Prometheus
text exposition (served via ``GET /v1/metrics?format=prometheus``).

:class:`Observability` bundles a tracer, a metrics registry and a
profiler, and is what instrumented components
(:class:`~repro.engine.engine.InferenceEngine`,
:class:`~repro.serving.service.PredictionService`, the training loops)
accept.  The default posture is *metrics on, tracing and profiling off*:
metrics are cheap enough to always collect, while span tracing and op
profiling are opt-in via :meth:`Observability.with_tracing` /
:meth:`Observability.attach_profiler` (or the components'
``attach_tracer`` / ``attach_profiler`` hooks), and must never change
what the model generates.

Surfaced through ``GET /v1/metrics``, the extended ``/v1/stats`` and the
``repro obs`` / ``repro profile`` CLI subcommands (see
:mod:`repro.obs.report`).
"""

from __future__ import annotations

from repro.obs.distributed import (
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    FleetCollector,
    TraceContext,
    TraceIdAllocator,
    fleet_chrome_trace,
    router_span_ref,
    write_fleet_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from repro.obs.profile import NULL_PROFILER, OpEvent, OpProfiler, OpStat
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    DEFAULT_SLOS,
    BurnWindow,
    SloMonitor,
    SloSpec,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer, load_spans_jsonl, read_spans_jsonl


class Observability:
    """A tracer, metrics registry and profiler shared across a stack.

    Components cache instrument handles from :attr:`metrics` at
    construction time, so the registry is fixed for the object's lifetime;
    the tracer and profiler, by contrast, may be swapped in later via
    :meth:`attach_tracer` / :meth:`attach_profiler` (that is what makes
    tracing and profiling default-off cheap — the slots hold disabled
    instances until someone attaches real ones).
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: OpProfiler | None = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @classmethod
    def with_tracing(cls, capacity: int = 4096) -> "Observability":
        """An Observability whose tracer is enabled from the start."""
        return cls(tracer=Tracer(capacity=capacity))

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled

    @property
    def profiling_enabled(self) -> bool:
        return self.profiler.enabled

    def attach_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def attach_profiler(self, profiler: OpProfiler) -> None:
        """Adopt ``profiler``; the owner of the layer tree attaches it."""
        self.profiler = profiler


__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "NULL_TRACER",
    "load_spans_jsonl",
    "read_spans_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "exponential_buckets",
    "linear_buckets",
    "OpProfiler",
    "OpStat",
    "OpEvent",
    "NULL_PROFILER",
    "TraceContext",
    "TraceIdAllocator",
    "TRACE_ID_HEADER",
    "PARENT_SPAN_HEADER",
    "FleetCollector",
    "fleet_chrome_trace",
    "write_fleet_chrome_trace",
    "router_span_ref",
    "SloSpec",
    "SloMonitor",
    "BurnWindow",
    "DEFAULT_SLOS",
    "DEFAULT_BURN_WINDOWS",
]
