"""Op-level profiling with analytic FLOPs and roofline accounting.

Request spans (:mod:`repro.obs.trace`) say where a *request* spends time
— queue, prefill, decode — but not which ops inside the numpy transformer
burn it.  :class:`OpProfiler` closes that gap: :meth:`OpProfiler.attach`
walks a :class:`~repro.nn.layers.Layer` tree and wraps every ``forward``
/ ``backward`` / ``forward_incremental`` method on the *instances*, so
each call records

* wall time, split into **total** and **self** time (self = total minus
  time spent inside nested profiled ops, via a thread-local frame stack);
* an **analytic FLOP count** from the layer type and the shapes that
  actually flowed through (``2*m*n*k`` for a :class:`Linear` matmul, the
  QK^T / PV matmuls for attention, elementwise costs for norms and
  activations — see ``_COST_MODEL`` and the DESIGN.md op taxonomy);
* **bytes moved** under the same analytic model, giving the two roofline
  coordinates: achieved GFLOP/s (``flops / self_s``) and arithmetic
  intensity (``flops / bytes``);
* a **tensor-allocation high-water mark**: the peak, over the profiled
  call stack, of concurrently live ndarray arguments and results — an
  analytic stand-in for activation memory (opt-in ``track_memory=True``
  additionally samples :mod:`tracemalloc` for the true process peak).

Mirroring ``NULL_TRACER``, the shared :data:`NULL_PROFILER` is disabled
and never attached; a wrapped method on a *disabled* profiler pays one
attribute check (``profiler.enabled``) before delegating to the original,
and an unattached layer pays nothing at all.  Profiling, like tracing,
only reads clocks and shapes — it never touches the RNG or any model
state, so profiled generation is token-identical to unprofiled.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ObservabilityError

_F32 = 4  # bytes per float32 element; the model runs in float32 throughout


def iter_layers(root) -> list:
    """Every :class:`~repro.nn.layers.Layer` reachable from ``root``.

    Walks instance attributes the same way ``Layer.parameters`` does
    (direct attributes, plus lists/tuples of layers), depth-first,
    de-duplicated by identity, root included first.
    """
    from repro.nn.layers import Layer

    found: list = []
    seen: set[int] = set()

    def walk(node) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        found.append(node)
        for value in vars(node).values():
            if isinstance(value, Layer):
                walk(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Layer):
                        walk(item)

    if not isinstance(root, Layer):
        raise ObservabilityError(f"can only profile Layer trees, got {type(root).__name__}")
    walk(root)
    return found


# -- analytic cost model -------------------------------------------------------
#
# Each entry maps (layer class name, method name) -> a *factory* that is
# called once per layer at attach time and returns the per-call cost
# function ``(args, kwargs, result) -> (flops, bytes_moved)``.  Static
# facts — weight shapes, bias presence, head counts — are bound into the
# closure at attach time so the per-call path only reads the shapes that
# vary.  Cost functions run *after* the wrapped call, so post-call state
# (e.g. the appended KV-cache length) is available.  Only the op's own
# work is counted: attention's projections are Linear layers profiled as
# their own ops, so the attention entry covers just the score/context
# matmuls, softmax and rotary application — no FLOP is attributed twice.


def _linear_cost(layer):
    n, k = layer.weight.data.shape
    has_bias = layer.bias is not None

    def cost(args, kwargs, result):
        x = args[0]
        m = x.size // x.shape[-1]
        flops = 2.0 * m * n * k  # one multiply + one add per MAC
        moved = _F32 * (m * n + n * k + m * k)
        if has_bias:
            flops += m * k
            moved += _F32 * k
        return flops, moved

    return cost


def _linear_backward_cost(layer):
    n, k = layer.weight.data.shape
    has_bias = layer.bias is not None

    def cost(args, kwargs, result):
        grad = args[0]
        m = grad.size // grad.shape[-1]
        flops = 4.0 * m * n * k  # dW = x^T @ g and dx = g @ W^T
        moved = _F32 * 2 * (m * n + m * k + n * k)
        if has_bias:
            flops += m * k  # column sum for the bias gradient
            moved += _F32 * k
        return flops, moved

    return cost


def _embedding_cost(layer):
    def cost(args, kwargs, result):
        # A gather: no arithmetic, rows read from the table and written out.
        return 0.0, _F32 * 2 * result.size

    return cost


def _embedding_backward_cost(layer):
    def cost(args, kwargs, result):
        grad = args[0]
        # Scatter-add: one add per gradient element, read + accumulate + write.
        return float(grad.size), _F32 * 3 * grad.size

    return cost


def _layernorm_cost(layer):
    def cost(args, kwargs, result):
        n = args[0].size
        # mean, center, square, variance-mean, rsqrt, normalize, scale, shift.
        return 8.0 * n, _F32 * 2 * n

    return cost


def _layernorm_backward_cost(layer):
    def cost(args, kwargs, result):
        n = args[0].size
        return 12.0 * n, _F32 * 4 * n

    return cost


def _attention_shapes(heads: int, head_dim: int, dim: int, x: np.ndarray, total: int):
    """Shared attention cost for ``new_length`` queries over ``total`` keys."""
    batch, new_length, _ = x.shape
    scores = float(batch * heads * new_length * total)  # score-matrix elements
    q_elements = float(batch * new_length * dim)
    kv_elements = float(batch * total * dim)
    flops = (
        2.0 * scores * head_dim  # QK^T
        + 2.0 * scores * head_dim  # weights @ V
        + 5.0 * scores  # scale, mask, max-shift, exp, normalize
        + 12.0 * q_elements  # rotary on queries and keys (6 flops/element each)
    )
    moved = _F32 * (4.0 * scores + 2.0 * q_elements + 2.0 * kv_elements)
    return flops, moved


def _attention_cost(layer):
    heads, head_dim, dim = layer.n_heads, layer.head_dim, layer.dim

    def cost(args, kwargs, result):
        x = args[0]
        return _attention_shapes(heads, head_dim, dim, x, x.shape[1])

    return cost


def _attention_incremental_cost(layer):
    heads, head_dim, dim = layer.n_heads, layer.head_dim, layer.dim

    def cost(args, kwargs, result):
        # The cost function runs post-call, so kv_cache.length is the
        # post-append total the new queries actually attended over.
        cache = args[1]
        flops, moved = _attention_shapes(heads, head_dim, dim, args[0], cache.length)
        # Cache-append traffic is where the paged arena and the legacy
        # concatenate path diverge: in-place arena appends report O(new)
        # bytes per step, dense concatenation O(total) — the profiler
        # makes that difference visible per decode step.
        moved += float(getattr(cache, "last_append_moved_bytes", 0))
        return flops, moved

    return cost


def _attention_backward_cost(layer):
    heads, head_dim, dim = layer.n_heads, layer.head_dim, layer.dim

    def cost(args, kwargs, result):
        grad = args[0]
        batch, length, _ = grad.shape
        scores = float(batch * heads * length * length)
        q_elements = float(batch * length * dim)
        flops = 8.0 * scores * head_dim + 11.0 * scores + 12.0 * q_elements
        moved = _F32 * (8.0 * scores + 6.0 * q_elements)
        return flops, moved

    return cost


def _mlp_cost(layer):
    mlp_dim = layer.up.weight.data.shape[1]

    def cost(args, kwargs, result):
        x = args[0]
        hidden = (x.size // x.shape[-1]) * mlp_dim
        # Self cost is the GELU between the two profiled Linear ops.
        return 8.0 * hidden, _F32 * 2 * hidden

    return cost


def _mlp_backward_cost(layer):
    mlp_dim = layer.up.weight.data.shape[1]

    def cost(args, kwargs, result):
        grad = args[0]
        hidden = (grad.size // grad.shape[-1]) * mlp_dim
        return 14.0 * hidden, _F32 * 3 * hidden

    return cost


def _block_cost(layer):
    def cost(args, kwargs, result):
        # Two residual adds into the stream; branch costs are nested ops.
        n = args[0].size
        return 2.0 * n, _F32 * 3 * n

    return cost


_COST_MODEL: dict[tuple[str, str], object] = {
    ("Linear", "forward"): _linear_cost,
    ("Linear", "backward"): _linear_backward_cost,
    ("Embedding", "forward"): _embedding_cost,
    ("Embedding", "backward"): _embedding_backward_cost,
    ("LayerNorm", "forward"): _layernorm_cost,
    ("LayerNorm", "backward"): _layernorm_backward_cost,
    ("CausalSelfAttention", "forward"): _attention_cost,
    ("CausalSelfAttention", "forward_incremental"): _attention_incremental_cost,
    ("CausalSelfAttention", "backward"): _attention_backward_cost,
    ("Mlp", "forward"): _mlp_cost,
    ("Mlp", "backward"): _mlp_backward_cost,
    ("Block", "forward"): _block_cost,
    ("Block", "forward_incremental"): _block_cost,
    ("Block", "backward"): _block_cost,
}

_PROFILED_METHODS = ("forward", "backward", "forward_incremental")


@dataclass(frozen=True)
class OpStat:
    """Aggregated record for one op (layer class + method)."""

    name: str
    calls: int
    total_s: float
    self_s: float
    flops: float
    bytes_moved: float

    @property
    def achieved_gflops(self) -> float:
        """GFLOP/s over *self* time — the op's own arithmetic rate."""
        return self.flops / self.self_s / 1e9 if self.self_s > 0 else 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved: the roofline x-coordinate."""
        return self.flops / self.bytes_moved if self.bytes_moved > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "achieved_gflops": self.achieved_gflops,
            "arithmetic_intensity": self.arithmetic_intensity,
        }


@dataclass(frozen=True)
class OpEvent:
    """One profiled call, kept in a bounded ring for timeline export."""

    name: str
    start_s: float
    end_s: float
    flops: float
    bytes_moved: float

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


class _Frame:
    __slots__ = ("child_s", "arg_bytes")

    def __init__(self, arg_bytes: int):
        self.child_s = 0.0
        self.arg_bytes = arg_bytes


class _Agg:
    __slots__ = ("calls", "total_s", "self_s", "flops", "bytes_moved")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.flops = 0.0
        self.bytes_moved = 0.0


class OpProfiler:
    """Wraps a layer tree's methods and aggregates per-op statistics.

    Attributes:
        enabled: when False, wrapped methods delegate straight to the
            original after a single attribute check.
        capacity: per-call event ring size (aggregates are unbounded —
            one slot per distinct op name).
        track_memory: also run :mod:`tracemalloc` between
            :meth:`start_memory_tracking` / :meth:`stop_memory_tracking`
            (or while used as a context manager) for a true process peak.
    """

    def __init__(self, enabled: bool = True, capacity: int = 8192, track_memory: bool = False):
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.track_memory = track_memory
        self._aggregates: dict[str, _Agg] = {}
        # ring of (name, start_s, end_s, flops, bytes_moved) tuples —
        # materialised into OpEvents lazily by events(), off the hot path
        self._events: deque[tuple] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._wrapped: list[tuple[object, str]] = []
        self.total_calls = 0  # lifetime counter; survives reset()
        self._alloc_high_water = 0
        self._tracemalloc_peak = 0

    # -- attachment ----------------------------------------------------------

    def attach(self, root) -> "OpProfiler":
        """Wrap every profiled method under ``root`` to report here.

        Idempotent per layer: instances already wrapped (by this or any
        other profiler) are left alone.  Returns ``self`` for chaining.
        """
        for layer in iter_layers(root):
            for method_name in _PROFILED_METHODS:
                bound = getattr(layer, method_name, None)
                if bound is None or not callable(bound):
                    continue
                if getattr(bound, "_repro_profiled", False):
                    continue
                wrapper = self._make_wrapper(layer, method_name, bound)
                setattr(layer, method_name, wrapper)
                self._wrapped.append((layer, method_name))
        return self

    def detach(self) -> None:
        """Remove every wrapper this profiler installed."""
        for layer, method_name in self._wrapped:
            # The wrapper lives as an instance attribute shadowing the
            # class method; deleting it restores the original lookup.
            try:
                delattr(layer, method_name)
            except AttributeError:
                pass
        self._wrapped.clear()

    def _make_wrapper(self, layer, method_name: str, bound):
        # Everything the hot path touches is bound into the closure once,
        # at attach time: the per-call budget is two clock reads, the cost
        # formula and one locked aggregate update — no method dispatch, no
        # dataclass construction (the event ring holds plain tuples).
        profiler = self
        op_name = f"{type(layer).__name__}.{method_name}"
        factory = _COST_MODEL.get((type(layer).__name__, method_name))
        cost_fn = factory(layer) if factory is not None else None
        local = self._local
        lock = self._lock
        events = self._events
        perf_counter = time.perf_counter
        ndarray = np.ndarray
        with lock:
            # One _Agg per op name, shared by every layer instance of the
            # class and pre-bound here so the hot path never touches the
            # dict; reset() zeroes these in place to keep closures valid.
            aggregate = self._aggregates.get(op_name)
            if aggregate is None:
                aggregate = self._aggregates[op_name] = _Agg()

        def profiled(*args, **kwargs):
            if not profiler.enabled:  # the one attribute check when off
                return bound(*args, **kwargs)
            stack = getattr(local, "stack", None)
            if stack is None:
                stack = local.stack = []
                local.live_bytes = 0
            arg_bytes = 0
            for value in args:
                if type(value) is ndarray:
                    arg_bytes += value.nbytes
            frame = _Frame(arg_bytes)
            stack.append(frame)
            local.live_bytes += arg_bytes
            start_s = perf_counter()
            try:
                result = bound(*args, **kwargs)
            finally:
                stack.pop()
            end_s = perf_counter()
            elapsed = end_s - start_s
            if cost_fn is not None:
                flops, bytes_moved = cost_fn(args, kwargs, result)
            else:
                flops, bytes_moved = 0.0, 0.0
            live = local.live_bytes + (result.nbytes if type(result) is ndarray else 0)
            local.live_bytes -= arg_bytes
            if stack:
                stack[-1].child_s += elapsed
            self_s = elapsed - frame.child_s
            if self_s < 0.0:
                self_s = 0.0
            with lock:
                aggregate.calls += 1
                aggregate.total_s += elapsed
                aggregate.self_s += self_s
                aggregate.flops += flops
                aggregate.bytes_moved += bytes_moved
                profiler.total_calls += 1
                if live > profiler._alloc_high_water:
                    profiler._alloc_high_water = live
                events.append((op_name, start_s, end_s, flops, bytes_moved))
            return result

        profiled._repro_profiled = True
        profiled.__name__ = bound.__name__
        profiled.__qualname__ = getattr(bound, "__qualname__", bound.__name__)
        return profiled

    # -- enable/disable ------------------------------------------------------

    def __enter__(self) -> "OpProfiler":
        self.enabled = True
        if self.track_memory:
            self.start_memory_tracking()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.enabled = False
        if self.track_memory:
            self.stop_memory_tracking()

    def start_memory_tracking(self) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
        tracemalloc.reset_peak()

    def stop_memory_tracking(self) -> None:
        import tracemalloc

        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self._tracemalloc_peak = max(self._tracemalloc_peak, peak)
            tracemalloc.stop()

    # -- reading -------------------------------------------------------------

    def stats(self) -> list[OpStat]:
        """Per-op aggregates, sorted by self time, hottest first."""
        with self._lock:
            rows = [
                OpStat(
                    name=name,
                    calls=aggregate.calls,
                    total_s=aggregate.total_s,
                    self_s=aggregate.self_s,
                    flops=aggregate.flops,
                    bytes_moved=aggregate.bytes_moved,
                )
                for name, aggregate in self._aggregates.items()
                if aggregate.calls  # pre-bound but never called, or reset
            ]
        rows.sort(key=lambda stat: stat.self_s, reverse=True)
        return rows

    def events(self) -> list[OpEvent]:
        """Snapshot of the bounded per-call event ring, oldest first."""
        with self._lock:
            return [OpEvent(*fields) for fields in self._events]

    @property
    def alloc_high_water_bytes(self) -> int:
        """Peak concurrently-live profiled tensor bytes (analytic)."""
        with self._lock:
            return self._alloc_high_water

    @property
    def tracemalloc_peak_bytes(self) -> int:
        """True process allocation peak; 0 unless memory tracking ran."""
        return self._tracemalloc_peak

    @property
    def total_flops(self) -> float:
        with self._lock:
            return sum(aggregate.flops for aggregate in self._aggregates.values())

    def snapshot(self) -> dict:
        """JSON-ready summary: ops, totals, high-water marks."""
        stats = self.stats()
        return {
            "ops": [stat.to_dict() for stat in stats],
            "total_calls": self.total_calls,
            "total_flops": sum(stat.flops for stat in stats),
            "total_self_s": sum(stat.self_s for stat in stats),
            "alloc_high_water_bytes": self.alloc_high_water_bytes,
            "tracemalloc_peak_bytes": self._tracemalloc_peak,
        }

    def reset(self) -> None:
        """Drop aggregates, events and high-water marks; keep wrappers.

        ``total_calls`` stays monotonic, matching the counter-reset
        semantics used across the rest of :mod:`repro.obs`.
        """
        with self._lock:
            # Zero in place: wrapper closures hold direct _Agg references.
            for aggregate in self._aggregates.values():
                aggregate.calls = 0
                aggregate.total_s = 0.0
                aggregate.self_s = 0.0
                aggregate.flops = 0.0
                aggregate.bytes_moved = 0.0
            self._events.clear()
            self._alloc_high_water = 0
            self._tracemalloc_peak = 0


#: Shared disabled profiler for code paths with no profiler attached.
NULL_PROFILER = OpProfiler(enabled=False, capacity=1)
