"""Human-readable rendering of metric snapshots, span dumps and op profiles.

Backs the ``repro obs`` and ``repro profile`` CLI subcommands: turns the
JSON payload of ``GET /v1/metrics`` (or a local
:meth:`MetricsRegistry.snapshot`) into ASCII tables, a list of
:class:`~repro.obs.trace.Span` objects into an indented call tree with
durations, and :class:`~repro.obs.profile.OpStat` aggregates into a
hot-op table sorted by self time.
"""

from __future__ import annotations

from repro.obs.profile import OpStat
from repro.obs.trace import Span
from repro.utils.tables import format_table


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def _format_value(name: str, value: float) -> str:
    # By convention only ``*_s`` histograms hold durations; the rest
    # (e.g. engine.batch_occupancy) are unitless.
    if name.endswith("_s"):
        return _format_seconds(value)
    return f"{value:g}"


def format_metrics_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` payload as tables."""
    sections: list[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        rows = [[name, f"{value:g}"] for name, value in sorted(counters.items())]
        sections.append(format_table(["counter", "value"], rows, title="Counters"))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        rows = [[name, f"{value:g}"] for name, value in sorted(gauges.items())]
        sections.append(format_table(["gauge", "value"], rows, title="Gauges"))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, summary in sorted(histograms.items()):
            rows.append(
                [
                    name,
                    str(summary["count"]),
                    _format_value(name, summary["mean"]),
                    _format_value(name, summary["p50"]),
                    _format_value(name, summary["p90"]),
                    _format_value(name, summary["p99"]),
                    _format_value(name, summary["max"]),
                ]
            )
        sections.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                rows,
                title="Histograms",
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def _format_count(value: float) -> str:
    """Human scale for FLOPs / bytes: 1.23G, 45.6M, 789k."""
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    return f"{value:.0f}"


def format_op_table(stats: list[OpStat], top: int | None = None, title: str = "Hot ops") -> str:
    """Render profiler aggregates, hottest self-time first.

    Columns are the roofline coordinates: analytic FLOPs and bytes moved,
    achieved GFLOP/s over self time, and arithmetic intensity (FLOPs per
    byte).
    """
    if not stats:
        return "(no ops profiled)"
    chosen = stats[: top if top is not None else len(stats)]
    rows = []
    for stat in chosen:
        rows.append(
            [
                stat.name,
                str(stat.calls),
                _format_seconds(stat.self_s),
                _format_seconds(stat.total_s),
                _format_count(stat.flops),
                _format_count(stat.bytes_moved) + "B",
                f"{stat.achieved_gflops:.2f}",
                f"{stat.arithmetic_intensity:.2f}",
            ]
        )
    return format_table(
        ["op", "calls", "self", "total", "flops", "bytes", "GFLOP/s", "flops/byte"],
        rows,
        title=title,
    )


def format_span_tree(spans: list[Span]) -> str:
    """Render spans as an indented tree, roots in start order.

    Spans whose ``parent_id`` is missing from the list (e.g. the parent was
    evicted from the ring buffer) are treated as roots.
    """
    if not spans:
        return "(no spans recorded)"
    by_id = {span.span_id: span for span in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span.start_s, span.span_id))

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{'  ' * depth}{span.name}  {_format_seconds(span.duration_s)}{suffix}")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
