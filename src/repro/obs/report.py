"""Human-readable rendering of metric snapshots and span dumps.

Backs the ``repro obs`` CLI subcommand: turns the JSON payload of
``GET /v1/metrics`` (or a local :meth:`MetricsRegistry.snapshot`) into
ASCII tables, and a list of :class:`~repro.obs.trace.Span` objects into an
indented call tree with durations.
"""

from __future__ import annotations

from repro.obs.trace import Span
from repro.utils.tables import format_table


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def _format_value(name: str, value: float) -> str:
    # By convention only ``*_s`` histograms hold durations; the rest
    # (e.g. engine.batch_occupancy) are unitless.
    if name.endswith("_s"):
        return _format_seconds(value)
    return f"{value:g}"


def format_metrics_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` payload as tables."""
    sections: list[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        rows = [[name, f"{value:g}"] for name, value in sorted(counters.items())]
        sections.append(format_table(["counter", "value"], rows, title="Counters"))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        rows = [[name, f"{value:g}"] for name, value in sorted(gauges.items())]
        sections.append(format_table(["gauge", "value"], rows, title="Gauges"))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, summary in sorted(histograms.items()):
            rows.append(
                [
                    name,
                    str(summary["count"]),
                    _format_value(name, summary["mean"]),
                    _format_value(name, summary["p50"]),
                    _format_value(name, summary["p90"]),
                    _format_value(name, summary["p99"]),
                    _format_value(name, summary["max"]),
                ]
            )
        sections.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                rows,
                title="Histograms",
            )
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def format_span_tree(spans: list[Span]) -> str:
    """Render spans as an indented tree, roots in start order.

    Spans whose ``parent_id`` is missing from the list (e.g. the parent was
    evicted from the ring buffer) are treated as roots.
    """
    if not spans:
        return "(no spans recorded)"
    by_id = {span.span_id: span for span in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span.start_s, span.span_id))

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{'  ' * depth}{span.name}  {_format_seconds(span.duration_s)}{suffix}")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
