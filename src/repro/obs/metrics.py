"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe, get-or-create map from metric
name to instrument.  Instruments are allocation-light on the hot path —
``Counter.inc`` and ``Histogram.observe`` are an integer add (plus a
bisect for histograms) under a per-instrument lock, with no per-call
allocation — so the registry can sit inside the engine decode loop.

Counters are **monotonic by construction**: they expose no reset and
reject negative increments, so any ratio or rate derived from two
snapshots is meaningful even across cache clears (see the counter-reset
semantics of :meth:`repro.serving.cache.LruCache.clear`).

Histograms use fixed upper-bound buckets (Prometheus-style) and report
percentiles by linear interpolation inside the selected bucket, clamped
to the observed min/max.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.errors import ObservabilityError


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric upper bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ObservabilityError(
            f"need start > 0, factor > 1, count >= 1; got {start}, {factor}, {count}"
        )
    return tuple(start * factor**i for i in range(count))


def linear_buckets(start: float, width: float, count: int) -> tuple[float, ...]:
    """``count`` evenly spaced upper bounds: start, start+width, ..."""
    if width <= 0 or count < 1:
        raise ObservabilityError(f"need width > 0, count >= 1; got {width}, {count}")
    return tuple(start + width * i for i in range(count))


#: 100 microseconds to ~26 seconds, doubling — covers everything from a
#: single decode step on a tiny model to a full training epoch.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(0.0001, 2.0, 19)


class Counter:
    """A monotonically increasing integer-or-float total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. in-flight requests)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket whose upper edge is the
    observed maximum.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_total", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None):
        self.name = name
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ObservabilityError(f"histogram {name}: needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ObservabilityError(f"histogram {name}: duplicate bucket bounds")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper bound, count) pairs; the overflow bound is +inf."""
        with self._lock:
            edges = list(self.bounds) + [float("inf")]
            return list(zip(edges, list(self._counts)))

    def percentile(self, p: float) -> float:
        """The p-th percentile, interpolated within its bucket."""
        if not 0 <= p <= 100:
            raise ObservabilityError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1.0, (p / 100.0) * self._count)
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank:
                    lower = self.bounds[index - 1] if index >= 1 else self._min
                    upper = self.bounds[index] if index < len(self.bounds) else self._max
                    fraction = (rank - previous) / bucket_count
                    value = lower + fraction * (upper - lower)
                    return min(max(value, self._min), self._max)
            return self._max  # unreachable unless rounding starves the walk

    def summary(self) -> dict:
        """count / mean / min / max / p50 / p90 / p99 snapshot."""
        with self._lock:
            count = self._count
            if count == 0:
                return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p90": 0.0, "p99": 0.0}
            mean = self._total / count
            observed_min, observed_max = self._min, self._max
        return {
            "count": count,
            "mean": mean,
            "min": observed_min,
            "max": observed_max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ObservabilityError(
                        f"metric {name!r} is a {type(existing).__name__}, not a {kind.__name__}"
                    )
                return existing
            created = factory()
            self._metrics[name] = created
            return created

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def instruments(self) -> dict[str, Counter | Gauge | Histogram]:
        """Shallow snapshot of name -> instrument (for exporters)."""
        with self._lock:
            return dict(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready view: counters, gauges, histogram summaries."""
        with self._lock:
            metrics = dict(self._metrics)
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
