"""Declarative SLOs with rolling windows and multi-window burn-rate alerts.

An :class:`SloSpec` declares one service-level objective over a request
*signal*:

* ``latency`` — good iff the request completed within ``threshold_s``
  end to end (shed / errored / late requests are all bad: the user
  waited and got nothing useful in time);
* ``ttft`` — good iff the time to first token was within ``threshold_s``
  (requests that never reached decode are bad);
* ``shed`` — good iff the request was not shed;
* ``error`` — good iff the request terminated by design (``completed``
  or deliberately ``shed``), bad on any other outcome.

An :class:`SloMonitor` ingests one event per fleet request
(:meth:`~SloMonitor.observe`) timestamped on :mod:`repro.faults.clock` —
the real clock in production, the chaos harness's FakeClock under test,
which makes every evaluation deterministic and replayable.

**Burn rate** is the standard SRE construct: over a window, the fraction
of bad events divided by the error budget (``1 - target``).  Burn 1.0
consumes the budget exactly at the sustainable rate; burn 14 consumes a
30-day budget in ~2 days.  Alerting on a single window either pages too
slowly (long window) or flaps (short window), so each
:class:`BurnWindow` pairs a long and a short window with a factor — the
alert fires only when **both** burn above the factor: the long window
proves the problem is material, the short window proves it is still
happening.

``repro slo`` runs a seeded fleet chaos workload against the declared
SLOs and prints the report; ``benchmarks/build_artifacts.py`` persists
one as ``BENCH_slo.json``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.faults import clock

#: Signals an SloSpec may declare.
SLO_SIGNALS = ("latency", "ttft", "shed", "error")

#: Outcomes that are by-design terminations, not errors.
_NON_ERROR_OUTCOMES = frozenset({"completed", "shed"})


@dataclass(frozen=True)
class SloSpec:
    """One objective: ``target`` fraction of requests must be *good*.

    Attributes:
        name: report key, e.g. ``"p99-latency"``.
        signal: one of :data:`SLO_SIGNALS`.
        target: required good fraction in [0, 1), e.g. ``0.99``.
        threshold_s: the latency/ttft budget; None for outcome signals.
    """

    name: str
    signal: str
    target: float
    threshold_s: float | None = None

    def __post_init__(self) -> None:
        if self.signal not in SLO_SIGNALS:
            raise ObservabilityError(
                f"SLO {self.name!r}: unknown signal {self.signal!r} (want one of {SLO_SIGNALS})"
            )
        if not 0.0 <= self.target < 1.0:
            raise ObservabilityError(
                f"SLO {self.name!r}: target must be in [0, 1), got {self.target}"
            )
        if self.signal in ("latency", "ttft"):
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ObservabilityError(
                    f"SLO {self.name!r}: signal {self.signal!r} needs threshold_s > 0"
                )
        elif self.threshold_s is not None:
            raise ObservabilityError(
                f"SLO {self.name!r}: signal {self.signal!r} takes no threshold_s"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def is_good(self, event: "SloEvent") -> bool:
        if self.signal == "latency":
            return event.outcome == "completed" and event.latency_s <= self.threshold_s
        if self.signal == "ttft":
            return event.ttft_s is not None and event.ttft_s <= self.threshold_s
        if self.signal == "shed":
            return event.outcome != "shed"
        return event.outcome in _NON_ERROR_OUTCOMES

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "signal": self.signal,
            "target": self.target,
            "threshold_s": self.threshold_s,
        }


@dataclass(frozen=True)
class BurnWindow:
    """A long/short window pair with the burn factor that pages."""

    long_s: float
    short_s: float
    factor: float

    def __post_init__(self) -> None:
        if not 0 < self.short_s < self.long_s:
            raise ObservabilityError(
                f"burn window needs 0 < short_s < long_s, got {self.short_s}/{self.long_s}"
            )
        if self.factor <= 0:
            raise ObservabilityError(f"burn factor must be positive, got {self.factor}")


#: Scaled-down version of Google's 1h/5m + 6h/30m pairs: the chaos
#: harness compresses time, so windows are seconds, not hours.
DEFAULT_BURN_WINDOWS = (
    BurnWindow(long_s=60.0, short_s=5.0, factor=14.4),
    BurnWindow(long_s=360.0, short_s=30.0, factor=6.0),
)

#: The fleet's declared objectives, evaluated by ``repro slo`` and the
#: chaos harness: completion latency, time-to-first-token, shed rate.
DEFAULT_SLOS = (
    SloSpec(name="p99-latency", signal="latency", target=0.99, threshold_s=2.0),
    SloSpec(name="p95-ttft", signal="ttft", target=0.95, threshold_s=1.0),
    SloSpec(name="shed-rate", signal="shed", target=0.95),
    SloSpec(name="error-rate", signal="error", target=0.999),
)


@dataclass(frozen=True)
class SloEvent:
    """One finished fleet request as the monitor sees it."""

    at: float
    latency_s: float
    outcome: str
    ttft_s: float | None = None


class SloMonitor:
    """Rolling-window SLO evaluation over observed request events.

    Events older than ``horizon_s`` (which must cover the longest burn
    window) are dropped from the front of the deque on ingest, bounding
    memory for long-running routers.
    """

    def __init__(
        self,
        specs: tuple[SloSpec, ...] | list[SloSpec] = DEFAULT_SLOS,
        windows: tuple[BurnWindow, ...] | list[BurnWindow] = DEFAULT_BURN_WINDOWS,
        horizon_s: float = 3600.0,
    ):
        specs = tuple(specs)
        if not specs:
            raise ObservabilityError("SloMonitor needs at least one SloSpec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ObservabilityError(f"duplicate SLO names: {names}")
        windows = tuple(windows)
        longest = max((window.long_s for window in windows), default=0.0)
        if horizon_s < longest:
            raise ObservabilityError(
                f"horizon_s={horizon_s} shorter than longest burn window {longest}"
            )
        self.specs = specs
        self.windows = windows
        self.horizon_s = horizon_s
        self._events: deque[SloEvent] = deque()
        self.total_observed = 0

    # -- ingest --------------------------------------------------------------

    def observe(
        self,
        latency_s: float,
        outcome: str,
        ttft_s: float | None = None,
        at: float | None = None,
    ) -> None:
        """Record one finished request; ``at`` defaults to the fleet clock."""
        timestamp = clock.now() if at is None else at
        self._events.append(SloEvent(at=timestamp, latency_s=latency_s,
                                     outcome=outcome, ttft_s=ttft_s))
        self.total_observed += 1
        cutoff = timestamp - self.horizon_s
        while self._events and self._events[0].at < cutoff:
            self._events.popleft()

    def __len__(self) -> int:
        return len(self._events)

    # -- evaluation ----------------------------------------------------------

    def _window_counts(self, spec: SloSpec, now: float, window_s: float) -> tuple[int, int]:
        cutoff = now - window_s
        good = bad = 0
        for event in reversed(self._events):
            if event.at < cutoff:
                break
            if spec.is_good(event):
                good += 1
            else:
                bad += 1
        return good, bad

    def burn_rate(self, spec: SloSpec, window_s: float, now: float | None = None) -> float:
        """Bad fraction over the window divided by the error budget."""
        moment = clock.now() if now is None else now
        good, bad = self._window_counts(spec, moment, window_s)
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / spec.error_budget

    def evaluate(self, now: float | None = None) -> dict:
        """Per-spec compliance and burn-rate verdicts, JSON-ready.

        All floats are rounded to 6 places so reports from identical
        seeded runs serialize byte-identically.
        """
        moment = clock.now() if now is None else now
        report: dict = {"total_observed": self.total_observed, "slos": []}
        for spec in self.specs:
            good, bad = self._window_counts(spec, moment, self.horizon_s)
            total = good + bad
            compliance = good / total if total else 1.0
            window_reports = []
            alerting = False
            for window in self.windows:
                burn_long = self.burn_rate(spec, window.long_s, moment)
                burn_short = self.burn_rate(spec, window.short_s, moment)
                fired = burn_long >= window.factor and burn_short >= window.factor
                alerting = alerting or fired
                window_reports.append(
                    {
                        "long_s": window.long_s,
                        "short_s": window.short_s,
                        "factor": window.factor,
                        "burn_long": round(burn_long, 6),
                        "burn_short": round(burn_short, 6),
                        "alerting": fired,
                    }
                )
            report["slos"].append(
                {
                    **spec.to_dict(),
                    "total": total,
                    "good": good,
                    "bad": bad,
                    "compliance": round(compliance, 6),
                    "met": compliance >= spec.target,
                    "burn_windows": window_reports,
                    "alerting": alerting,
                }
            )
        report["all_met"] = all(entry["met"] for entry in report["slos"])
        report["any_alerting"] = any(entry["alerting"] for entry in report["slos"])
        return report


__all__ = [
    "SLO_SIGNALS",
    "SloSpec",
    "BurnWindow",
    "SloEvent",
    "SloMonitor",
    "DEFAULT_SLOS",
    "DEFAULT_BURN_WINDOWS",
]
