"""Structured JSONL training-run recording and comparison.

A :class:`RunLog` appends one JSON object per line to a file as training
progresses — a run header, one ``step`` record per optimizer step (loss,
pre-clip gradient norm, learning rate, tokens and tokens/s), one
``epoch`` record per epoch, and one ``validation`` record per validation
pass.  JSONL keeps recording crash-safe: every record is flushed whole,
and a process killed mid-write costs at most the final line (the loader
skips corrupt lines, mirroring :func:`repro.obs.trace.read_spans_jsonl`).

The reader side (:func:`load_runlog`, :func:`format_runlog`,
:func:`compare_runlogs`) backs ``repro obs --runlog`` and its two-run
compare mode — the before/after artifact for optimisation PRs: run a
training job on each side of a change, then diff step time, tokens/s and
final loss from the logs instead of re-measuring by hand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.tables import format_table


class RunLog:
    """Append-only JSONL recorder for one training run.

    Use as a context manager or call :meth:`close`; every ``log_*`` call
    writes and flushes one line immediately.
    """

    def __init__(self, path: str | Path, run_id: str = "run", meta: dict | None = None):
        self.path = Path(path)
        self.run_id = run_id
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write({"kind": "run", "run_id": run_id, **(meta or {})})

    def _write(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()

    def log_step(
        self,
        step: int,
        loss: float,
        grad_norm: float | None = None,
        learning_rate: float | None = None,
        tokens: int | None = None,
        step_s: float | None = None,
    ) -> None:
        record = {"kind": "step", "step": step, "loss": float(loss)}
        if grad_norm is not None:
            record["grad_norm"] = float(grad_norm)
        if learning_rate is not None:
            record["lr"] = float(learning_rate)
        if tokens is not None:
            record["tokens"] = int(tokens)
        if step_s is not None:
            record["step_s"] = float(step_s)
            if tokens and step_s > 0:
                record["tokens_per_s"] = tokens / step_s
        self._write(record)

    def log_epoch(self, epoch: int, mean_loss: float, steps: int | None = None) -> None:
        record = {"kind": "epoch", "epoch": epoch, "mean_loss": float(mean_loss)}
        if steps is not None:
            record["steps"] = int(steps)
        self._write(record)

    def log_validation(self, epoch: int, **scores: float) -> None:
        """One validation pass; ``scores`` are metric name -> value."""
        record = {"kind": "validation", "epoch": epoch}
        for name, value in scores.items():
            record[name] = float(value)
        self._write(record)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class RunLogData:
    """A parsed run log, grouped by record kind."""

    run: dict = field(default_factory=dict)
    steps: list[dict] = field(default_factory=list)
    epochs: list[dict] = field(default_factory=list)
    validations: list[dict] = field(default_factory=list)
    skipped: int = 0  # corrupt lines dropped while loading

    @property
    def run_id(self) -> str:
        return str(self.run.get("run_id", "run"))

    @property
    def final_loss(self) -> float:
        if self.epochs:
            return float(self.epochs[-1]["mean_loss"])
        if self.steps:
            return float(self.steps[-1]["loss"])
        return float("nan")

    def mean(self, kind: str, key: str) -> float:
        """Mean of ``key`` over the records of ``kind`` that carry it."""
        records = {"step": self.steps, "epoch": self.epochs, "validation": self.validations}[kind]
        values = [float(record[key]) for record in records if key in record]
        return sum(values) / len(values) if values else float("nan")

    def summary(self) -> dict:
        """Headline numbers for rendering and run-to-run comparison."""
        return {
            "run_id": self.run_id,
            "steps": len(self.steps),
            "epochs": len(self.epochs),
            "final_loss": self.final_loss,
            "mean_step_s": self.mean("step", "step_s"),
            "mean_tokens_per_s": self.mean("step", "tokens_per_s"),
            "mean_grad_norm": self.mean("step", "grad_norm"),
            "total_tokens": sum(int(record.get("tokens", 0)) for record in self.steps),
            "skipped": self.skipped,
        }


#: Fields every record of a kind must carry as finite-convertible numbers;
#: a record that fails is corrupt (a partial write, or a foreign file) and
#: is skip-counted at load rather than crashing ``summary()`` downstream.
_REQUIRED_NUMERIC = {
    "step": ("step", "loss"),
    "epoch": ("epoch", "mean_loss"),
    "validation": ("epoch",),
}


def _valid_record(kind: str, record: dict) -> bool:
    for key in _REQUIRED_NUMERIC.get(kind, ()):
        try:
            float(record[key])
        except (KeyError, TypeError, ValueError):
            return False
    return True


def load_runlog(path: str | Path) -> RunLogData:
    """Parse a :class:`RunLog` file, skipping corrupt lines anywhere.

    A line is skipped — and counted in ``RunLogData.skipped`` / the
    ``summary()`` — when it is not valid JSON, not an object, of unknown
    kind, or missing the numeric fields its kind requires.  Corruption in
    the middle of a file (a torn write during a crash, interleaved
    writers) therefore costs exactly the bad lines, never the whole log.
    """
    data = RunLogData()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind = record.get("kind")
            except (json.JSONDecodeError, AttributeError):
                data.skipped += 1
                continue
            if kind != "run" and not _valid_record(kind, record):
                data.skipped += 1
            elif kind == "run":
                data.run = record
            elif kind == "step":
                data.steps.append(record)
            elif kind == "epoch":
                data.epochs.append(record)
            elif kind == "validation":
                data.validations.append(record)
            else:
                data.skipped += 1
    return data


def _fmt(value: float, digits: int = 4) -> str:
    if value != value:  # NaN
        return "-"
    return f"{value:.{digits}g}"


def format_runlog(data: RunLogData) -> str:
    """Render one run: headline summary plus the per-epoch trajectory."""
    summary = data.summary()
    lines = [
        f"run: {summary['run_id']}  steps={summary['steps']} epochs={summary['epochs']} "
        f"tokens={summary['total_tokens']}",
        f"final loss {_fmt(summary['final_loss'])}  "
        f"mean step {_fmt(summary['mean_step_s'])}s  "
        f"mean {_fmt(summary['mean_tokens_per_s'])} tokens/s  "
        f"mean grad norm {_fmt(summary['mean_grad_norm'])}",
    ]
    if data.skipped:
        lines.append(f"({data.skipped} corrupt line(s) skipped)")
    if data.epochs:
        validations = {int(record["epoch"]): record for record in data.validations}
        rows = []
        for record in data.epochs:
            epoch = int(record["epoch"])
            validation = validations.get(epoch, {})
            scores = " ".join(
                f"{key}={_fmt(float(value))}"
                for key, value in sorted(validation.items())
                if key not in ("kind", "epoch")
            )
            rows.append([str(epoch), _fmt(float(record["mean_loss"])), scores or "-"])
        lines.append("")
        lines.append(format_table(["epoch", "mean_loss", "validation"], rows, title="Epochs"))
    return "\n".join(lines)


def compare_runlogs(a: RunLogData, b: RunLogData) -> str:
    """Side-by-side before/after table with relative deltas.

    For throughput higher is better, for loss and step time lower is
    better; the delta column is simply ``b / a`` so the reader applies
    the direction — this renderer does not editorialise.
    """
    summary_a, summary_b = a.summary(), b.summary()
    rows = []
    for key in ("final_loss", "mean_step_s", "mean_tokens_per_s", "mean_grad_norm",
                "steps", "epochs", "total_tokens"):
        value_a = float(summary_a[key])
        value_b = float(summary_b[key])
        if value_a and value_a == value_a and value_b == value_b:
            ratio = f"{value_b / value_a:.3f}x"
        else:
            ratio = "-"
        rows.append([key, _fmt(value_a), _fmt(value_b), ratio])
    return format_table(
        ["metric", summary_a["run_id"], summary_b["run_id"], "b/a"],
        rows,
        title="Run comparison",
    )


__all__ = ["RunLog", "RunLogData", "load_runlog", "format_runlog", "compare_runlogs"]
