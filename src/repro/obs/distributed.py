"""Fleet-wide distributed tracing and telemetry aggregation.

PR 6 split serving into a :class:`~repro.fleet.router.FleetRouter` plus N
workers, which broke observability at the process boundary: every replica
records its own spans/metrics/profiles and nobody can see a request end
to end.  This module closes the gap with two pieces:

**Trace-context propagation.**  The router mints one
:class:`TraceContext` per fleet request — a fleet-unique ``trace_id``
plus a *span reference* naming the router's ``fleet.predict`` span — and
carries it to workers: over HTTP headers (:data:`TRACE_ID_HEADER`,
:data:`PARENT_SPAN_HEADER`) for :class:`~repro.fleet.worker.ProcessWorker`
children, as a keyword argument for in-process workers.  The worker's
service adopts the context via :meth:`~repro.obs.trace.Tracer.activate`,
so every root span it records (the engine's ``engine.request`` trees,
the service's ``serving.predict``) is stamped with ``trace_id`` /
``parent_span`` attrs.  Span *references* are strings (``"<trace_id>/r"``
for the router span) because numeric span ids are only unique within one
tracer; the stitcher joins on the references, not the ids.

**Telemetry collection.**  Workers expose ``GET /v1/telemetry``
(:meth:`PredictionService.telemetry`) returning a *drain*: buffered spans
(cleared on read), the cumulative Prometheus exposition, and the profiler
snapshot.  A :class:`FleetCollector` on the router polls it from the
heartbeat tick — driven by :mod:`repro.faults.clock`, so seeded chaos
runs collect deterministically — and accumulates per-replica telemetry.
From the accumulated state it can render

* a **merged Prometheus exposition** where every sample gains a
  ``replica="..."`` label (:meth:`FleetCollector.merged_prometheus`), and
* one **Chrome/Perfetto trace** with a track (pid) per replica and flow
  arrows from each router span to the worker spans it parents
  (:func:`fleet_chrome_trace`).

Spans drained from a replica that later dies stay in the collector;
spans the replica recorded *after* its last poll die with it — the same
loss model as any pull-based telemetry system.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.export import format_sample, parse_prometheus
from repro.obs.trace import Span

#: HTTP header carrying the fleet-unique trace id.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
#: HTTP header carrying the upstream span reference (``"<trace_id>/r"``).
PARENT_SPAN_HEADER = "X-Repro-Parent-Span"


@dataclass(frozen=True)
class TraceContext:
    """A trace id plus the upstream span reference, as crossed a boundary.

    ``parent_span`` is a *reference string*, not a span id — ids are only
    unique within one tracer, so cross-process parent links are joined on
    references (see :func:`router_span_ref`).
    """

    trace_id: str
    parent_span: str | None = None

    def to_headers(self) -> dict[str, str]:
        """Render as the HTTP headers a ProcessWorker call carries."""
        headers = {TRACE_ID_HEADER: self.trace_id}
        if self.parent_span is not None:
            headers[PARENT_SPAN_HEADER] = self.parent_span
        return headers

    @classmethod
    def from_headers(cls, headers) -> "TraceContext | None":
        """Recover a context from a headers mapping; None when absent.

        ``headers`` is anything with a ``.get`` (an
        ``http.server`` ``self.headers``, or a plain dict).
        """
        trace_id = headers.get(TRACE_ID_HEADER)
        if not trace_id:
            return None
        return cls(trace_id=trace_id, parent_span=headers.get(PARENT_SPAN_HEADER) or None)


def router_span_ref(trace_id: str) -> str:
    """The reference naming the router's root span for ``trace_id``."""
    return f"{trace_id}/r"


class TraceIdAllocator:
    """Deterministic trace-id mint: ``<prefix>-00000001``, ``-00000002``...

    A counter, not a UUID, so seeded chaos runs assign identical ids on
    replay; the prefix keeps ids from concurrent routers distinct.
    """

    def __init__(self, prefix: str = "t"):
        if not prefix:
            raise ObservabilityError("trace-id prefix must be non-empty")
        self.prefix = prefix
        self._next = 0

    def allocate(self) -> str:
        self._next += 1
        return f"{self.prefix}-{self._next:08d}"


# -- telemetry collection ------------------------------------------------------


class FleetCollector:
    """Accumulates per-replica telemetry drains on the router.

    :meth:`poll` is called from the router's heartbeat tick for every
    live worker; each call drains the worker's span buffer (so a span is
    collected exactly once) and replaces the worker's *cumulative*
    Prometheus exposition and profiler snapshot.  All state is keyed by
    replica name; a replica that respawns keeps appending to the same
    span history — its restarted metrics read as the usual counter reset.
    """

    def __init__(self) -> None:
        self._spans: dict[str, list[Span]] = {}
        self._prometheus: dict[str, str] = {}
        self._profiles: dict[str, dict] = {}
        self.polls = 0
        self.poll_errors = 0

    # -- ingestion -----------------------------------------------------------

    def poll(self, replica: str, worker) -> bool:
        """Drain one worker's telemetry; False if the worker was unreachable.

        ``worker`` is anything with a ``telemetry()`` method returning the
        ``GET /v1/telemetry`` payload.  Unreachable workers are counted,
        never raised — telemetry must not turn a flaky replica into a
        router failure.
        """
        self.polls += 1
        try:
            payload = worker.telemetry()
        except Exception:
            self.poll_errors += 1
            return False
        self.ingest(replica, payload)
        return True

    def ingest(self, replica: str, payload: dict) -> None:
        """Fold one ``/v1/telemetry`` payload into the accumulated state."""
        for record in payload.get("spans") or []:
            self._spans.setdefault(replica, []).append(Span.from_dict(record))
        exposition = payload.get("metrics_prometheus")
        if exposition:
            self._prometheus[replica] = exposition
        profile = payload.get("profile")
        if profile:
            self._profiles[replica] = profile

    # -- reading -------------------------------------------------------------

    def replicas(self) -> list[str]:
        """Replica names with any collected telemetry, sorted."""
        return sorted(set(self._spans) | set(self._prometheus) | set(self._profiles))

    def spans(self, replica: str | None = None) -> list[Span]:
        """Collected spans for one replica, or all replicas (sorted by name)."""
        if replica is not None:
            return list(self._spans.get(replica, []))
        merged: list[Span] = []
        for name in sorted(self._spans):
            merged.extend(self._spans[name])
        return merged

    def profiles(self) -> dict[str, dict]:
        return dict(self._profiles)

    def merged_prometheus(self, extra: dict[str, str] | None = None) -> str:
        """One exposition over all replicas, samples labelled ``replica=...``.

        Families are emitted in sorted order with a single ``# TYPE``
        header each; within a family, each replica's samples keep their
        original order (histogram buckets must stay cumulative).  The
        output is fully determined by the collected state, so seeded runs
        merge byte-identically.

        ``extra`` folds in additional expositions under their own replica
        labels without touching collector state — how the router's own
        registry joins the merge as ``replica="router"``.
        """
        sources = dict(self._prometheus)
        sources.update(extra or {})
        families: dict[str, dict] = {}
        for replica in sorted(sources):
            parsed = parse_prometheus(sources[replica])
            for family, entry in parsed.items():
                slot = families.setdefault(family, {"type": entry["type"], "lines": []})
                for sample_name, labels, value in entry["samples"]:
                    slot["lines"].append(
                        format_sample(sample_name, {"replica": replica, **labels}, value)
                    )
        lines: list[str] = []
        for family in sorted(families):
            slot = families[family]
            lines.append(f"# TYPE {family} {slot['type']}")
            lines.extend(slot["lines"])
        return "\n".join(lines) + "\n" if lines else ""

    def stats(self) -> dict:
        """Collector health: poll counts and per-replica span tallies."""
        return {
            "polls": self.polls,
            "poll_errors": self.poll_errors,
            "replicas": self.replicas(),
            "spans_collected": {name: len(spans) for name, spans in sorted(self._spans.items())},
        }


# -- Chrome trace stitching ----------------------------------------------------

_SPAN_TID = 1  # one "spans" lane per process, mirroring repro.obs.export


def _process_events(pid: int, process_name: str, spans: list[Span]) -> list[dict]:
    events: list[dict] = [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
        {"ph": "M", "pid": pid, "tid": _SPAN_TID, "name": "thread_name",
         "args": {"name": "spans"}},
    ]
    for span in spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "cat": "span",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": pid,
                "tid": _SPAN_TID,
                "args": {"span_id": span.span_id, "parent_id": span.parent_id, **span.attrs},
            }
        )
    return events


def fleet_chrome_trace(
    router_spans: list[Span],
    worker_spans: dict[str, list[Span]],
    router_name: str = "router",
) -> dict:
    """Stitch router + per-replica spans onto one Perfetto timeline.

    The router renders as pid 0; each replica (sorted by name) gets the
    next pid, so the fleet reads as one multi-process trace.  All
    processes share the fleet clock (the chaos harness drives one
    FakeClock; production processes share ``perf_counter`` closely
    enough for eyeballs), so spans line up without offset correction.

    Cross-process parenting travels in ``args``: a router span whose
    attrs carry a ``trace_id`` additionally gets a ``span_ref``
    (:func:`router_span_ref`), and worker root spans carry matching
    ``trace_id`` / ``parent_span`` attrs.  A flow arrow (``ph`` ``s`` /
    ``f``) is drawn per such pair so Perfetto renders the handoff.
    """
    events: list[dict] = _process_events(0, router_name, [])
    # Router spans, with span_ref attached to traced roots and a flow
    # start per trace id.
    for span in router_spans:
        trace_id = span.attrs.get("trace_id")
        event = {
            "name": span.name,
            "ph": "X",
            "cat": "span",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": 0,
            "tid": _SPAN_TID,
            "args": {"span_id": span.span_id, "parent_id": span.parent_id, **span.attrs},
        }
        if trace_id is not None and span.parent_id is None:
            event["args"].setdefault("span_ref", router_span_ref(trace_id))
            events.append(event)
            events.append(
                {"ph": "s", "cat": "trace", "name": "trace", "id": trace_id,
                 "pid": 0, "tid": _SPAN_TID, "ts": span.start_s * 1e6}
            )
        else:
            events.append(event)
    for pid, replica in enumerate(sorted(worker_spans), start=1):
        spans = worker_spans[replica]
        events.extend(_process_events(pid, f"worker {replica}", spans))
        for span in spans:
            if span.parent_id is None and span.attrs.get("parent_span"):
                events.append(
                    {"ph": "f", "bp": "e", "cat": "trace", "name": "trace",
                     "id": span.attrs["trace_id"], "pid": pid, "tid": _SPAN_TID,
                     "ts": span.start_s * 1e6}
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_fleet_chrome_trace(path: str | Path, trace: dict) -> int:
    """Write a stitched trace with deterministic key order; returns span count."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return sum(1 for event in trace["traceEvents"] if event["ph"] == "X")


__all__ = [
    "TRACE_ID_HEADER",
    "PARENT_SPAN_HEADER",
    "TraceContext",
    "TraceIdAllocator",
    "router_span_ref",
    "FleetCollector",
    "fleet_chrome_trace",
    "write_fleet_chrome_trace",
]
