"""Request-level span tracing.

A :class:`Tracer` records *spans* — named, timed intervals with
parent/child nesting — into a bounded in-memory ring buffer.  Two APIs
feed it:

* **live spans** (:meth:`Tracer.span` as a context manager, or
  :meth:`Tracer.traced` as a decorator) time a block of code on the
  current thread and nest automatically via a thread-local stack;
* **retroactive records** (:meth:`Tracer.record`) register an interval
  whose start/end timestamps were captured elsewhere — how the engine
  reports request lifecycles, whose phases interleave across the
  continuous batch and therefore cannot be wrapped in nested ``with``
  blocks.

Timestamps read the shared :mod:`repro.faults.clock` — the real
monotonic clock in production, a :class:`~repro.faults.FakeClock` under
the chaos harness — so span timelines from seeded fleet runs are
deterministic and replay byte-identically.

For cross-process requests, :meth:`Tracer.activate` installs a *remote
trace context* (a fleet-wide ``trace_id`` plus the upstream span
reference) on the current thread; every **root** span finished while the
context is active is stamped with ``trace_id`` / ``parent_span`` attrs,
which is how a worker's ``engine.request`` tree parents under the
router's ``fleet.predict`` span once the fleet collector stitches the
per-process dumps together (:mod:`repro.obs.distributed`).

Tracing is designed to be **default-off**: a disabled tracer's
:meth:`~Tracer.span` returns a shared no-op context manager and
:meth:`~Tracer.record` returns immediately, so instrumented code paths pay
one attribute check and nothing else.  Observability must never perturb
generation — spans only read the monotonic clock, never the RNG or any
model state.

Finished spans can be exported as JSON lines (:meth:`Tracer.export_jsonl`)
and read back with :func:`load_spans_jsonl` for offline inspection via
``repro obs --spans``.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError
from repro.faults import clock


@dataclass(frozen=True)
class Span:
    """One finished, named interval.

    Timestamps come from :func:`repro.faults.clock.now` (the real
    monotonic clock unless a fake is installed): comparable only within
    the process — and clock scope — that produced them.
    """

    name: str
    start_s: float
    end_s: float
    span_id: int
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            start_s=float(payload["start_s"]),
            end_s=float(payload["end_s"]),
            span_id=int(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            attrs=dict(payload.get("attrs") or {}),
        )


class _NoopSpan:
    """Shared do-nothing context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs) -> "_NoopSpan":
        del attrs
        return self


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An open span on the current thread; finishes on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "start_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.start_s = 0.0

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.start_s = clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end_s = clock.now()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if self.parent_id is None:
            self._tracer._stamp_context(self.attrs)
        self._tracer._append(
            Span(
                name=self.name,
                start_s=self.start_s,
                end_s=end_s,
                span_id=self.span_id,
                parent_id=self.parent_id,
                attrs=self.attrs,
            )
        )


class Tracer:
    """Bounded ring buffer of :class:`Span` objects.

    Attributes:
        enabled: when False every entry point is a no-op.
        capacity: ring-buffer size; the oldest spans are evicted first.
    """

    def __init__(self, capacity: int = 4096, enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.total_recorded = 0  # lifetime counter; survives clear() and eviction

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
            self.total_recorded += 1

    # -- remote trace context ------------------------------------------------

    @contextmanager
    def activate(self, trace_id: str, parent_span: str | None = None):
        """Adopt a remote trace context on this thread for the block.

        While active, every *root* span (live or retroactive) finished on
        this thread is stamped with ``trace_id`` — and ``parent_span``
        when given — in its attrs, tying it to the upstream span that
        crossed the process boundary.  Contexts nest; the inner one wins
        and the outer is restored on exit.  Works on a disabled tracer
        too (where it is a cheap no-op), so propagation call sites never
        need to branch on tracing state.
        """
        previous = getattr(self._local, "context", None)
        self._local.context = (trace_id, parent_span)
        try:
            yield self
        finally:
            self._local.context = previous

    def _stamp_context(self, attrs: dict) -> None:
        """Fold the active remote context (if any) into a root span's attrs."""
        context = getattr(self._local, "context", None)
        if context is None:
            return
        trace_id, parent_span = context
        attrs.setdefault("trace_id", trace_id)
        if parent_span is not None:
            attrs.setdefault("parent_span", parent_span)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs):
        """Context manager timing a block on the current thread."""
        if not self.enabled:
            return _NOOP_SPAN
        return _LiveSpan(self, name, attrs)

    def traced(self, name: str | None = None, **attrs):
        """Decorator form of :meth:`span`; defaults to the function name."""

        def wrap(function):
            span_name = name or function.__qualname__

            def inner(*args, **kwargs):
                with self.span(span_name, **attrs):
                    return function(*args, **kwargs)

            inner.__name__ = function.__name__
            inner.__qualname__ = function.__qualname__
            inner.__doc__ = function.__doc__
            return inner

        return wrap

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent_id: int | None = None,
        **attrs,
    ) -> int | None:
        """Register a span from externally captured timestamps.

        Returns the new span id (usable as ``parent_id`` of later records),
        or None when the tracer is disabled.
        """
        if not self.enabled:
            return None
        if parent_id is None:
            self._stamp_context(attrs)
        span_id = next(self._ids)
        self._append(
            Span(
                name=name,
                start_s=start_s,
                end_s=end_s,
                span_id=span_id,
                parent_id=parent_id,
                attrs=attrs,
            )
        )
        return span_id

    # -- reading -------------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        """Snapshot of buffered spans, oldest first, optionally by name."""
        with self._lock:
            buffered = list(self._ring)
        if name is None:
            return buffered
        return [span for span in buffered if span.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def evicted(self) -> int:
        """Spans pushed out of the ring by newer ones (lifetime count)."""
        with self._lock:
            return self.total_recorded - len(self._ring)

    def clear(self) -> None:
        """Drop buffered spans; ``total_recorded`` stays monotonic."""
        with self._lock:
            self._ring.clear()

    def drain(self) -> list[Span]:
        """Atomically snapshot and clear the buffer (telemetry pull reads).

        Unlike ``spans()`` + ``clear()``, nothing recorded between the
        two calls can be lost — each span is drained exactly once.
        """
        with self._lock:
            drained = list(self._ring)
            self._ring.clear()
        return drained

    # -- export --------------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> int:
        """Write buffered spans as JSON lines; returns the number written."""
        buffered = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in buffered:
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(buffered)


def read_spans_jsonl(path: str | Path, strict: bool = False) -> tuple[list[Span], int]:
    """Read a :meth:`Tracer.export_jsonl` dump; returns (spans, skipped).

    A dump can end mid-line when the exporting process is killed during
    :meth:`Tracer.export_jsonl`, so corrupt lines — invalid JSON, or JSON
    missing a span field — are skipped and counted rather than poisoning
    the whole file.  Pass ``strict=True`` to raise on the first bad line
    instead.
    """
    spans: list[Span] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                spans.append(Span.from_dict(payload))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                if strict:
                    raise ObservabilityError(
                        f"corrupt span on line {line_number} of {path}: {error}"
                    ) from error
                skipped += 1
    return spans, skipped


def load_spans_jsonl(path: str | Path) -> list[Span]:
    """Read a :meth:`Tracer.export_jsonl` dump back into :class:`Span`s.

    Corrupt lines (e.g. a truncated trailing line) are skipped; use
    :func:`read_spans_jsonl` to also get the skipped count.
    """
    spans, _ = read_spans_jsonl(path)
    return spans


#: Shared disabled tracer for instrumented code paths with no tracer attached.
NULL_TRACER = Tracer(capacity=1, enabled=False)
