"""Standard-format exporters for spans, profiled ops and metrics.

Two sinks, both plain text, both loadable by stock tooling:

* **Chrome trace-event JSON** (:func:`export_chrome_trace`) — the
  ``{"traceEvents": [...]}`` format read by ``chrome://tracing`` and
  Perfetto.  Tracer spans and profiler op events share one timeline:
  both record ``time.perf_counter()`` seconds, which become microsecond
  ``ts``/``dur`` complete events (``"ph": "X"``) on named threads of a
  single process.
* **Prometheus text exposition** (:func:`prometheus_exposition`) — the
  line protocol scraped by a Prometheus server: ``# TYPE`` headers, one
  sample per line, histograms expanded into cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count``.  Served live by
  ``GET /v1/metrics?format=prometheus``.

:func:`parse_prometheus` reads the exposition back (enough of the format
for round-trip testing and offline diffing — gauges, counters, and
histogram series with escaped label values).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import OpEvent
from repro.obs.trace import Span

# -- Chrome trace-event JSON ---------------------------------------------------

#: Virtual thread ids: spans and ops render as two lanes of one process.
SPAN_TID = 1
OP_TID = 2


def chrome_trace_events(
    spans: list[Span] | None = None,
    op_events: list[OpEvent] | None = None,
    process_name: str = "repro",
) -> list[dict]:
    """Build the ``traceEvents`` list for spans and/or profiled ops.

    Every interval becomes a complete event (``"ph": "X"``) with ``ts``
    and ``dur`` in microseconds on the shared ``perf_counter`` clock, so
    a span and the ops that ran inside it line up in one timeline.
    Metadata events name the process and the two lanes.
    """
    events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
        {"ph": "M", "pid": 0, "tid": SPAN_TID, "name": "thread_name",
         "args": {"name": "spans"}},
        {"ph": "M", "pid": 0, "tid": OP_TID, "name": "thread_name",
         "args": {"name": "ops"}},
    ]
    for span in spans or []:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "cat": "span",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": 0,
                "tid": SPAN_TID,
                "args": {"span_id": span.span_id, "parent_id": span.parent_id, **span.attrs},
            }
        )
    for event in op_events or []:
        events.append(
            {
                "name": event.name,
                "ph": "X",
                "cat": "op",
                "ts": event.start_s * 1e6,
                "dur": event.duration_s * 1e6,
                "pid": 0,
                "tid": OP_TID,
                "args": {"flops": event.flops, "bytes_moved": event.bytes_moved},
            }
        )
    return events


def export_chrome_trace(
    path: str | Path,
    spans: list[Span] | None = None,
    op_events: list[OpEvent] | None = None,
    process_name: str = "repro",
) -> int:
    """Write a Perfetto-loadable trace file; returns the interval count."""
    events = chrome_trace_events(spans, op_events, process_name)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return sum(1 for event in events if event["ph"] == "X")


# -- Prometheus text exposition ------------------------------------------------

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r'\s+(?P<value>\S+)$'
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """Map registry names (``engine.decode_s``) onto the Prometheus charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (\\, ", newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label_value(value: str) -> str:
    result: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follower = value[index + 1]
            if follower == "n":
                result.append("\n")
            elif follower in ('"', "\\"):
                result.append(follower)
            else:
                result.append(char + follower)
            index += 2
        else:
            result.append(char)
            index += 1
    return "".join(result)


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def format_sample(name: str, labels: dict[str, str] | None, value: float) -> str:
    """One exposition line: ``name{label="value",...} value``."""
    if labels:
        rendered = ",".join(
            f'{key}="{escape_label_value(str(val))}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_number(value)}"
    return f"{name} {_format_number(value)}"


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """Render every registered instrument in Prometheus text format.

    Counters get the conventional ``_total`` suffix; histograms expand to
    cumulative ``_bucket`` series (ending in ``le="+Inf"``), ``_sum`` and
    ``_count``.  The output ends with a newline, as scrapers expect.
    """
    lines: list[str] = []
    for name, metric in sorted(registry.instruments().items()):
        base = sanitize_metric_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {base}_total counter")
            lines.append(format_sample(f"{base}_total", None, float(metric.value)))
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {base} gauge")
            lines.append(format_sample(base, None, float(metric.value)))
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for upper, count in metric.bucket_counts():
                cumulative += count
                lines.append(
                    format_sample(f"{base}_bucket", {"le": _format_number(upper)}, cumulative)
                )
            lines.append(format_sample(f"{base}_sum", None, metric.total))
            lines.append(format_sample(f"{base}_count", None, float(metric.count)))
        else:  # pragma: no cover - registry only holds the three kinds
            raise ObservabilityError(f"cannot export metric {name!r} of {type(metric).__name__}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict:
    """Parse an exposition back into ``{name: {"type":..., "samples": [...]}}``.

    Each sample is ``(labels_dict, value)``.  Lines that are neither
    comments nor valid samples raise, so a round-trip test validates the
    exposition line-by-line.
    """
    metrics: dict[str, dict] = {}
    types: dict[str, str] = {}
    # Split on "\n" exactly: the exposition format only escapes backslash,
    # double-quote and newline, so label values may legally contain \r,
    # \x0b, U+2028 and other characters str.splitlines() would wrongly
    # treat as line boundaries.
    for line_number, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ObservabilityError(f"unparseable exposition line {line_number}: {raw!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            for key, value in _LABEL_PAIR.findall(label_text):
                labels[key] = unescape_label_value(value)
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        else:
            value = float(raw_value)
        # Histogram series (_bucket/_sum/_count) group under the family
        # name their # TYPE header declared.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        entry = metrics.setdefault(
            family, {"type": types.get(family, "untyped"), "samples": []}
        )
        entry["samples"].append((name, labels, value))
    return metrics


__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "prometheus_exposition",
    "parse_prometheus",
    "sanitize_metric_name",
    "escape_label_value",
    "unescape_label_value",
    "format_sample",
]
