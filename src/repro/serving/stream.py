"""Server-sent-event wire format for token streaming.

``POST /v1/completions?stream=1`` answers with ``text/event-stream``: one
SSE event per emitted token burst, heartbeat keepalives while the decode
is between tokens, and a terminal ``done`` (or ``error``) event carrying
the request's disposition.  This module owns both halves of that wire:

* :func:`sse_encode` — render one event as bytes.  Payloads are JSON with
  ``ensure_ascii``, so bytes that would corrupt the SSE framing (``\\r``,
  ``\\n``, U+2028/U+2029 — the same characters the Prometheus exposition
  escapes) travel as escape sequences, never as raw line terminators.
* :class:`SseParser` — an incremental byte-level parser.  Chunk
  boundaries are arbitrary (a proxy may split anywhere, including the
  middle of a multi-byte UTF-8 character or between ``\\r`` and ``\\n``),
  so the parser buffers *bytes* until a complete line is delimited and
  only then decodes.  Per the SSE spec it honours ``\\r\\n``, ``\\n`` and
  bare ``\\r`` line terminators, joins multiple ``data:`` lines with
  ``\\n``, strips one optional space after the field colon, and ignores
  comment lines (``:`` prefix) apart from surfacing them as heartbeats.
* :class:`TextDelta` — turns a growing token-id sequence into text
  deltas whose concatenation is byte-identical to decoding the full
  sequence at once, holding back trailing bytes that do not yet form a
  complete UTF-8 character (a multi-byte character split across two
  token emissions must not leak a replacement character mid-stream).

Every helper is transport-agnostic and deterministic, which is what lets
the conformance suite fuzz the framing separately from the engine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ServingError

#: Event names the serving layer emits on a completion stream.
STREAM_EVENTS = ("token", "heartbeat", "done", "error")

_REPLACEMENT = "�"


def sse_encode(event: str, data: dict) -> bytes:
    """Render one SSE event (``event:`` + ``data:`` + blank line) as bytes.

    ``data`` is JSON-serialised with ``ensure_ascii=True`` and sorted
    keys: ASCII-only output guarantees no raw ``\\r``/U+2028 can break a
    line-oriented consumer, and the canonical key order keeps streamed
    logs byte-identical across replays.
    """
    if not event or any(c in event for c in "\r\n"):
        raise ServingError(f"invalid SSE event name {event!r}")
    body = json.dumps(data, ensure_ascii=True, sort_keys=True)
    return f"event: {event}\ndata: {body}\n\n".encode("ascii")


def sse_comment(text: str = "") -> bytes:
    """A comment line (``: text``) — the keepalive a proxy must forward."""
    if any(c in text for c in "\r\n"):
        raise ServingError("SSE comments cannot contain line terminators")
    return f": {text}\n\n".encode("utf-8")


@dataclass
class SseEvent:
    """One parsed server-sent event."""

    event: str
    data: str
    comment: bool = False

    def json(self) -> dict:
        """The JSON payload carried by ``data`` (raises on non-JSON)."""
        try:
            return json.loads(self.data)
        except (ValueError, json.JSONDecodeError) as error:
            raise ServingError(f"non-JSON SSE data: {self.data!r}") from error


class SseParser:
    """Incremental SSE parser fed raw bytes, yielding :class:`SseEvent`.

    Feed arbitrary chunks (any split points, including mid-character and
    between ``\\r`` and ``\\n``); complete events come back as they are
    delimited by blank lines.  Call :meth:`close` at end-of-stream to
    flush a final event that was not blank-line-terminated.
    """

    def __init__(self) -> None:
        self._buffer = b""
        self._event_name = ""
        self._data_lines: list[str] = []
        self._events: list[SseEvent] = []

    # -- line framing --------------------------------------------------------

    def _split_lines(self, closing: bool) -> list[bytes]:
        """Pop complete lines off the byte buffer, honouring CRLF/CR/LF.

        A buffer ending in a lone ``\\r`` is ambiguous — the next chunk
        may begin with the ``\\n`` of a CRLF pair — so that byte stays
        buffered until more input (or close) disambiguates it.
        """
        lines: list[bytes] = []
        buffer = self._buffer
        start = 0
        index = 0
        end = len(buffer)
        while index < end:
            byte = buffer[index]
            if byte == 0x0A:  # \n
                lines.append(buffer[start:index])
                index += 1
                start = index
            elif byte == 0x0D:  # \r — maybe \r\n
                if index + 1 < end:
                    lines.append(buffer[start:index])
                    index += 2 if buffer[index + 1] == 0x0A else 1
                    start = index
                elif closing:
                    lines.append(buffer[start:index])
                    index += 1
                    start = index
                else:
                    break  # trailing \r: wait for the next chunk
            else:
                index += 1
        self._buffer = buffer[start:]
        return lines

    def _dispatch_line(self, raw: bytes) -> None:
        if not raw:
            self._flush_event()
            return
        line = raw.decode("utf-8", errors="replace")
        if line.startswith(":"):
            comment = line[1:]
            if comment.startswith(" "):
                comment = comment[1:]
            self._events.append(SseEvent(event="comment", data=comment, comment=True))
            return
        name, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if name == "event":
            self._event_name = value
        elif name == "data":
            self._data_lines.append(value)
        # Unknown fields (id, retry, anything else) are ignored per spec.

    def _flush_event(self) -> None:
        if not self._event_name and not self._data_lines:
            return  # blank line with nothing accumulated
        self._events.append(
            SseEvent(event=self._event_name or "message", data="\n".join(self._data_lines))
        )
        self._event_name = ""
        self._data_lines = []

    # -- public API ----------------------------------------------------------

    def feed(self, chunk: bytes) -> list[SseEvent]:
        """Consume one chunk; return every event completed by it."""
        if not isinstance(chunk, (bytes, bytearray)):
            raise ServingError(f"SseParser.feed wants bytes, got {type(chunk).__name__}")
        self._buffer += bytes(chunk)
        for line in self._split_lines(closing=False):
            self._dispatch_line(line)
        events, self._events = self._events, []
        return events

    def close(self) -> list[SseEvent]:
        """Flush end-of-stream: emit any final unterminated event."""
        for line in self._split_lines(closing=True):
            self._dispatch_line(line)
        if self._buffer:
            self._dispatch_line(self._buffer)
            self._buffer = b""
        self._flush_event()
        events, self._events = self._events, []
        return events


def iter_sse(chunks) -> "list[SseEvent]":
    """Parse an iterable of byte chunks into a flat event list (eager)."""
    parser = SseParser()
    events: list[SseEvent] = []
    for chunk in chunks:
        events.extend(parser.feed(chunk))
    events.extend(parser.close())
    return events


@dataclass
class TextDelta:
    """Incremental detokenizer whose deltas concatenate to the full decode.

    Byte-level BPE means a token boundary can fall inside a multi-byte
    UTF-8 character: decoding a prefix of the final token sequence then
    yields a trailing U+FFFD that a later token resolves into the real
    character.  Emitting that replacement character would make the
    concatenated stream differ from the one-shot decode — so ``push``
    holds back any trailing replacement-character run and only emits text
    that is a stable prefix of every future decode.  ``flush`` emits the
    remainder (genuine replacement characters included) once the token
    sequence is final.
    """

    tokenizer: object
    _sent: str = field(default="", repr=False)

    def push(self, token_ids: list[int]) -> str:
        """The new stable text given the full token sequence so far."""
        full = self.tokenizer.decode(list(token_ids))
        stable = full.rstrip(_REPLACEMENT)
        if not stable.startswith(self._sent):
            # The held-back tail resolved differently than the previous
            # stable prefix predicted (cannot happen for prefix-extending
            # sequences, but guard against misuse): wait for flush.
            return ""
        delta = stable[len(self._sent):]
        self._sent = stable
        return delta

    def flush(self, token_ids: list[int]) -> str:
        """The final remainder so the concatenation equals the full decode."""
        full = self.tokenizer.decode(list(token_ids))
        delta = full[len(self._sent):] if full.startswith(self._sent) else full
        self._sent = full
        return delta
