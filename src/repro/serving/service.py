"""Prediction service: the GRPC/REST interface of the paper's demo.

"We expose a GRPC and REST API based interface to model predictions so that
inference can be called out using GRPC and REST clients."  Here the REST
flavour is implemented over the standard library's HTTP server; the same
:class:`PredictionService` object can also be called in-process (which is
what the editor-plugin simulation does).

Endpoints::

    POST /v1/completions        {"prompt": "...", "max_new_tokens": 96}
                             -> {"completion": "...", "latency_ms": ..., "cached": ...}
    POST /v1/completions?stream=1
                             -> text/event-stream of token / heartbeat /
                                done (or error) SSE events; concatenated
                                token text == the non-streaming completion
    POST /v1/batch_completions  {"prompts": ["...", ...], "max_new_tokens": 96}
                             -> {"completions": [...], "latency_ms": ..., "cached": [...]}
    POST /v1/sessions           {"buffer": "..."} -> {"session_id": ..., "completion": ...}
    POST /v1/sessions/{id}/extend
                                {"buffer": "<full new buffer>"}
                             -> same payload; only the keystroke suffix is
                                prefilled (``reused_tokens`` vs ``prefilled``)
    DELETE /v1/sessions/{id} -> {"closed": true|false}
    GET  /v1/health             -> {"status": "ok", "model": "..."}
    GET  /v1/stats              -> request counts, cache stats, latency stats,
                                   in-flight count and tracing status, engine
                                   stats (queue depth, batch occupancy,
                                   prefix-cache hits) when an engine is attached
    GET  /v1/metrics            -> full metrics snapshot: per-endpoint latency
                                   histograms (p50/p90/p99), serving counters,
                                   engine queue-wait/prefill/decode histograms
                                   and prefix-cache hit rate
    GET  /v1/telemetry          -> telemetry drain for a fleet collector:
                                   buffered spans (removed on read), the
                                   cumulative Prometheus exposition and the
                                   profiler snapshot

POST requests may carry the fleet trace headers ``X-Repro-Trace-Id`` /
``X-Repro-Parent-Span`` (see :mod:`repro.obs.distributed`): the service
adopts the remote trace context for the request, stamps its root spans
with it, and echoes the trace id in the response body and headers.

The service shares its :class:`~repro.obs.Observability` with the engine
when one is attached, so ``/v1/metrics`` is a single pane of glass over
both layers; attach an enabled tracer (``service.obs.attach_tracer`` or
``engine.attach_tracer``) to additionally capture request spans.

Two concurrency behaviours matter under load:

* **Request coalescing** — when two identical prompts arrive concurrently
  and both miss the cache, only the first runs generation; the second
  waits on the first's in-flight computation and reuses its result
  (``"coalesced": true`` in the response).  Without this, every cache miss
  thunders straight into the model.
* **Batched decoding** — when constructed with an
  :class:`~repro.engine.engine.InferenceEngine`, ``/v1/batch_completions``
  decodes all cache-missing prompts through the continuous batcher in one
  pass instead of sequentially.

And three overload behaviours (the hardening layer):

* **Admission control** — ``max_queue_depth`` bounds concurrent
  generations; excess requests are *shed* before touching the model with
  a typed :class:`~repro.errors.ServiceOverloadedError` carrying a
  retry-after hint (HTTP 503 + ``Retry-After``).
* **Graceful degradation** — with a ``fallback`` completer (e.g. the
  n-gram baseline), saturated or engine-shed requests are served by the
  fallback instead of erroring, flagged ``"degraded": true`` and never
  cached.
* **Deadlines** — ``deadline_s`` (or ``deadline_ms`` over HTTP) bounds a
  request's wall time through the engine; expiry surfaces as
  :class:`~repro.errors.DeadlineExceededError` (HTTP 504).  Partial
  output from expired, cancelled or shed requests is never cached.
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    DeadlineExceededError,
    RequestCancelledError,
    ServiceOverloadedError,
    ServingError,
    SessionNotFoundError,
)
from repro.faults import clock
from repro.obs import Observability
from repro.obs.distributed import TRACE_ID_HEADER, TraceContext
from repro.obs.export import prometheus_exposition
from repro.serving.cache import LruCache
from repro.serving.session import SessionManager
from repro.serving.stream import TextDelta, sse_encode


class _InflightEntry:
    """A computation one thread owns and others wait on."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.completion: str | None = None
        self.error: BaseException | None = None
        self.degraded = False


class PredictionService:
    """Wraps any TextCompleter with caching, coalescing and latency accounting.

    ``engine`` is optional; when given (an
    :class:`~repro.engine.engine.InferenceEngine` or anything with
    ``complete_batch``/``stats``), batch predictions decode through it and
    ``stats()`` gains an ``"engine"`` section.
    """

    def __init__(
        self,
        completer,
        cache_capacity: int = 256,
        max_new_tokens: int = 96,
        engine=None,
        obs: Observability | None = None,
        max_queue_depth: int | None = None,
        fallback=None,
        default_deadline_s: float | None = None,
        shed_retry_after_s: float = 0.5,
        max_sessions: int = 64,
        session_ttl_s: float | None = None,
        heartbeat_interval_s: float | None = None,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServingError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.completer = completer
        self.engine = engine
        self.fallback = fallback
        self.cache = LruCache(cache_capacity)
        self.max_new_tokens = max_new_tokens
        self.max_queue_depth = max_queue_depth
        self.default_deadline_s = default_deadline_s
        self.shed_retry_after_s = shed_retry_after_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.request_count = 0
        self.coalesced_count = 0
        self.batch_request_count = 0
        self.shed_count = 0
        self.degraded_count = 0
        self.deadline_exceeded_count = 0
        self.cancelled_count = 0
        self.stream_count = 0
        self.stream_disconnects = 0
        self.total_latency_ms = 0.0
        self._inflight_count = 0  # generations currently admitted (backpressure)
        self._lock = threading.Lock()
        self._inflight: dict[str, _InflightEntry] = {}
        # Share the engine's Observability unless the caller supplies one,
        # so /v1/metrics covers serving and engine in a single snapshot.
        if obs is None:
            obs = getattr(engine, "obs", None) or Observability()
        self.obs = obs
        metrics = obs.metrics
        self._h_completions = metrics.histogram("serving.completions_s")
        self._h_batch = metrics.histogram("serving.batch_completions_s")
        self._c_requests = metrics.counter("serving.requests")
        self._c_batch_requests = metrics.counter("serving.batch_requests")
        self._c_cache_hits = metrics.counter("serving.cache_hits")
        self._c_coalesced = metrics.counter("serving.coalesced")
        self._c_shed = metrics.counter("serving.shed")
        self._c_degraded = metrics.counter("serving.degraded")
        self._c_deadline = metrics.counter("serving.deadline_exceeded")
        self._c_cancelled = metrics.counter("serving.cancelled")
        self._g_inflight = metrics.gauge("serving.inflight")
        self._c_streams = metrics.counter("serving.streams")
        self._c_stream_disconnects = metrics.counter("serving.stream_disconnects")
        self._h_stream_ttft = metrics.histogram("serving.stream_ttft_s")
        self._h_intertoken = metrics.histogram("serving.stream_intertoken_s")
        # Keystroke sessions ride on the engine's KV arena; without a
        # tokenizer-equipped engine the endpoints report 400 instead.
        self.sessions: SessionManager | None = None
        if engine is not None and getattr(engine, "tokenizer", None) is not None:
            self.sessions = SessionManager(
                engine, max_sessions=max_sessions, ttl_s=session_ttl_s, obs=obs
            )

    # -- admission / degradation ---------------------------------------------

    def _try_admit(self) -> bool:
        """Claim a generation slot; False when the service is saturated."""
        with self._lock:
            if self.max_queue_depth is not None and self._inflight_count >= self.max_queue_depth:
                return False
            self._inflight_count += 1
            return True

    def _release_admission(self) -> None:
        with self._lock:
            self._inflight_count -= 1

    def _shed(self, reason: str) -> ServiceOverloadedError:
        """Account a shed request and build the typed 503 to raise."""
        with self._lock:
            self.shed_count += 1
        self._c_shed.inc()
        return ServiceOverloadedError(
            f"service overloaded ({reason}); retry after {self.shed_retry_after_s}s",
            retry_after_s=self.shed_retry_after_s,
        )

    def _degrade(self, prompt: str, budget: int, reason: str) -> str:
        """Serve ``prompt`` through the fallback completer (never cached).

        Raises the typed 503 instead when no fallback is configured —
        degradation is strictly better than shedding, shedding strictly
        better than failing loudly mid-stack.
        """
        if self.fallback is None:
            raise self._shed(reason)
        completion = self.fallback.complete(prompt, max_new_tokens=budget)
        with self._lock:
            self.degraded_count += 1
        self._c_degraded.inc()
        return completion

    def _generate(
        self, prompt: str, budget: int, deadline_s: float | None
    ) -> tuple[str, bool, float | None]:
        """One completion honouring deadlines; ``(text, degraded, ttft_s)``.

        Routes through the engine's outcome-aware path when available so
        shed / deadline / cancelled dispositions arrive as data, not
        exceptions, and map onto serving behaviour here: shed requests
        degrade to the fallback (or 503), expired ones raise the typed
        504, cancelled ones the typed client-closed-request error.
        ``ttft_s`` is the engine-measured time to first token, or None
        when the request never reached decode (or no engine is attached).
        """
        if self.engine is not None and hasattr(self.engine, "complete_batch_detailed"):
            detail = self.engine.complete_batch_detailed(
                [prompt], max_new_tokens=budget, deadline_s=deadline_s
            )[0]
            outcome = detail["outcome"]
            if outcome == "completed":
                return detail["completion"], False, detail.get("ttft_s")
            if outcome == "deadline_exceeded":
                with self._lock:
                    self.deadline_exceeded_count += 1
                self._c_deadline.inc()
                raise DeadlineExceededError(f"deadline of {deadline_s}s exceeded")
            if outcome == "cancelled":
                with self._lock:
                    self.cancelled_count += 1
                self._c_cancelled.inc()
                raise RequestCancelledError("request cancelled")
            return self._degrade(prompt, budget, f"engine {outcome} the request"), True, None
        return self.completer.complete(prompt, max_new_tokens=budget), False, None

    # -- single prediction ---------------------------------------------------

    def predict(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        trace_context: TraceContext | None = None,
    ) -> dict:
        """One prediction, served from cache or a coalesced in-flight twin.

        Saturation (``max_queue_depth`` concurrent generations already
        running) degrades to the fallback completer or sheds with a typed
        503 *before* the model is touched; cache hits are still served
        regardless, since they cost nothing.

        ``trace_context`` is the upstream fleet trace (minted by the
        router, carried over HTTP headers or in-process): while this
        request runs, the service's and engine's root spans are stamped
        with its trace id / parent span, and the response echoes the
        trace id as ``"trace_id"``.
        """
        if not isinstance(prompt, str) or not prompt.strip():
            raise ServingError("prompt must be a non-empty string")
        budget = max_new_tokens or self.max_new_tokens
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        activation = (
            self.obs.tracer.activate(trace_context.trace_id, trace_context.parent_span)
            if trace_context is not None
            else nullcontext()
        )
        with activation, self.obs.tracer.span("serving.predict") as span:
            self._g_inflight.inc()
            try:
                payload = self._predict(prompt, budget, deadline)
            finally:
                self._g_inflight.dec()
            span.set(
                cached=payload["cached"],
                coalesced=bool(payload.get("coalesced")),
                degraded=bool(payload.get("degraded")),
            )
            if trace_context is not None:
                payload["trace_id"] = trace_context.trace_id
            return payload

    def _predict(self, prompt: str, budget: int, deadline_s: float | None) -> dict:
        started = clock.now()
        with self._lock:
            cached = self.cache.get(prompt)
            if cached is not None:
                return self._account(cached, started, cached_hit=True)
            entry = self._inflight.get(prompt)
            owner = entry is None
            if owner:
                entry = _InflightEntry()
                self._inflight[prompt] = entry
        if not owner:
            # Coalesce: another thread is already generating this prompt.
            entry.done.wait()
            if entry.error is not None:
                if isinstance(entry.error, (ServingError, DeadlineExceededError, RequestCancelledError)):
                    raise entry.error  # keep the typed status (503/504/...) for waiters
                raise ServingError(f"coalesced request failed: {entry.error}") from entry.error
            with self._lock:
                self.coalesced_count += 1
                return self._account(
                    entry.completion, started, cached_hit=True, coalesced=True,
                    degraded=entry.degraded,
                )
        try:
            if self._try_admit():
                try:
                    completion, degraded, ttft_s = self._generate(prompt, budget, deadline_s)
                finally:
                    self._release_admission()
            else:
                completion, degraded, ttft_s = self._degrade(prompt, budget, "queue full"), True, None
            entry.completion = completion
            entry.degraded = degraded
        except BaseException as error:
            entry.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(prompt, None)
                # Only normal completions are cacheable: degraded output
                # comes from the fallback model, and erroring requests
                # (shed / expired / cancelled) produced partial work.
                if entry.error is None and not entry.degraded:
                    self.cache.put(prompt, entry.completion)
            entry.done.set()
        with self._lock:
            return self._account(
                completion, started, cached_hit=False, degraded=degraded, ttft_s=ttft_s
            )

    def _account(
        self,
        completion: str,
        started: float,
        cached_hit: bool,
        coalesced: bool = False,
        degraded: bool = False,
        ttft_s: float | None = None,
    ) -> dict:
        """Record latency and build a response payload (caller holds the lock)."""
        latency_ms = (clock.now() - started) * 1000.0
        self.request_count += 1
        self.total_latency_ms += latency_ms
        self._h_completions.observe(latency_ms / 1000.0)
        self._c_requests.inc()
        if cached_hit:
            self._c_cache_hits.inc()
        if coalesced:
            self._c_coalesced.inc()
        payload = {"completion": completion, "latency_ms": latency_ms, "cached": cached_hit}
        if coalesced:
            payload["coalesced"] = True
        if degraded:
            payload["degraded"] = True
        if ttft_s is not None:
            payload["ttft_ms"] = ttft_s * 1000.0
        return payload

    # -- streaming -----------------------------------------------------------

    def predict_stream(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        trace_context: TraceContext | None = None,
    ):
        """One completion as a stream of ``(event, data)`` pairs.

        Events follow :data:`repro.serving.stream.STREAM_EVENTS`: zero or
        more ``token`` events whose ``text`` fields concatenate to exactly
        the non-streaming completion, optional ``heartbeat`` keepalives
        (every ``heartbeat_interval_s`` on the faults clock), and one
        terminal ``done`` — or ``error`` carrying an HTTP-ish ``status``
        for dispositions that surface after the first byte has been sent
        (504 deadline, 408 cancel, 503 shed with no fallback).

        Closing the generator mid-stream is the client-disconnect path:
        the engine request is cancelled cooperatively and its KV slabs
        return to the arena immediately.  Streams skip the coalescing map
        (two concurrent identical streams each decode — delivery order is
        the product) but share the cache both ways: hits replay as a
        single burst, and completed streams populate it.

        Validation errors and pre-stream shedding raise *before* the
        first event, so an HTTP front-end can still answer with a plain
        status; anything after the first token arrives in-band.
        """
        if not isinstance(prompt, str) or not prompt.strip():
            raise ServingError("prompt must be a non-empty string")
        budget = max_new_tokens or self.max_new_tokens
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        return self._predict_stream(prompt, budget, deadline, trace_context)

    def _stream_done(self, data: dict, trace_context: TraceContext | None) -> tuple[str, dict]:
        if trace_context is not None:
            data["trace_id"] = trace_context.trace_id
        return "done", data

    def _predict_stream(
        self,
        prompt: str,
        budget: int,
        deadline_s: float | None,
        trace_context: TraceContext | None,
    ):
        started = clock.now()
        with self._lock:
            self.stream_count += 1
            cached = self.cache.get(prompt)
        self._c_streams.inc()
        if cached is not None:
            with self._lock:
                payload = self._account(cached, started, cached_hit=True)
            yield "token", {"text": cached, "index": 0}
            yield self._stream_done(
                {
                    "completion": cached,
                    "stop_reason": None,
                    "outcome": "completed",
                    "cached": True,
                    "degraded": False,
                    "latency_ms": payload["latency_ms"],
                },
                trace_context,
            )
            return
        engine = self.engine
        streamable = (
            engine is not None
            and hasattr(engine, "stream_ids")
            and getattr(engine, "tokenizer", None) is not None
        )
        if not streamable:
            # No token-level engine: serve the whole completion through
            # the ordinary path, then replay it as a one-burst stream.
            payload = self._predict(prompt, budget, deadline_s)
            yield "token", {"text": payload["completion"], "index": 0}
            yield self._stream_done(
                {
                    "completion": payload["completion"],
                    "stop_reason": None,
                    "outcome": "completed",
                    "cached": payload["cached"],
                    "degraded": bool(payload.get("degraded")),
                    "latency_ms": payload["latency_ms"],
                },
                trace_context,
            )
            return
        if not self._try_admit():
            text = self._degrade(prompt, budget, "queue full")  # raises 503 sans fallback
            with self._lock:
                payload = self._account(text, started, cached_hit=False, degraded=True)
            yield "token", {"text": text, "index": 0}
            yield self._stream_done(
                {
                    "completion": text,
                    "stop_reason": None,
                    "outcome": "completed",
                    "cached": False,
                    "degraded": True,
                    "latency_ms": payload["latency_ms"],
                },
                trace_context,
            )
            return
        activation = (
            self.obs.tracer.activate(trace_context.trace_id, trace_context.parent_span)
            if trace_context is not None
            else nullcontext()
        )
        tokenizer = engine.tokenizer
        deltas = TextDelta(tokenizer)
        handle: list = []
        token_ids: list[int] = []
        index = 0
        first_token_at: float | None = None
        last_emit = started
        finished = False
        inner = engine.stream_ids(
            tokenizer.encode(prompt), budget, deadline_s=deadline_s, handle=handle
        )
        try:
            with activation:
                for burst in inner:
                    now = clock.now()
                    if first_token_at is None:
                        first_token_at = now
                        self._h_stream_ttft.observe(now - started)
                    else:
                        self._h_intertoken.observe(now - last_emit)
                    if (
                        self.heartbeat_interval_s is not None
                        and now - last_emit >= self.heartbeat_interval_s
                    ):
                        yield "heartbeat", {"elapsed_ms": (now - started) * 1000.0}
                    last_emit = now
                    token_ids.extend(burst)
                    text = deltas.push(token_ids)
                    yield "token", {"text": text, "token_ids": list(burst), "index": index}
                    index += 1
                request = handle[0]
                outcome = request.outcome
                if outcome == "completed":
                    tail = deltas.flush(token_ids)
                    if tail:
                        yield "token", {"text": tail, "token_ids": [], "index": index}
                    completion = tokenizer.decode(request.generated)
                    ttft_s = (
                        first_token_at - started if first_token_at is not None else None
                    )
                    with self._lock:
                        self.cache.put(prompt, completion)
                        payload = self._account(
                            completion, started, cached_hit=False, ttft_s=ttft_s
                        )
                    yield self._stream_done(
                        {
                            "completion": completion,
                            "stop_reason": request.stop_reason,
                            "outcome": outcome,
                            "cached": False,
                            "degraded": False,
                            "latency_ms": payload["latency_ms"],
                            "ttft_ms": payload.get("ttft_ms"),
                            "generated_tokens": len(request.generated),
                        },
                        trace_context,
                    )
                elif outcome == "deadline_exceeded":
                    with self._lock:
                        self.deadline_exceeded_count += 1
                    self._c_deadline.inc()
                    yield "error", {
                        "error": f"deadline of {deadline_s}s exceeded",
                        "status": 504,
                        "outcome": outcome,
                    }
                elif outcome == "cancelled":
                    with self._lock:
                        self.cancelled_count += 1
                    self._c_cancelled.inc()
                    yield "error", {
                        "error": "request cancelled",
                        "status": 408,
                        "outcome": outcome,
                    }
                else:  # shed by the engine at prefill
                    if self.fallback is not None:
                        text = self._degrade(prompt, budget, "engine shed the request")
                        with self._lock:
                            payload = self._account(text, started, cached_hit=False, degraded=True)
                        yield "token", {"text": text, "index": index}
                        yield self._stream_done(
                            {
                                "completion": text,
                                "stop_reason": None,
                                "outcome": "completed",
                                "cached": False,
                                "degraded": True,
                                "latency_ms": payload["latency_ms"],
                            },
                            trace_context,
                        )
                    else:
                        with self._lock:
                            self.shed_count += 1
                        self._c_shed.inc()
                        yield "error", {
                            "error": "service overloaded (engine shed the request)",
                            "status": 503,
                            "outcome": outcome,
                            "retry_after_s": self.shed_retry_after_s,
                        }
                finished = True
        finally:
            # Runs on normal completion AND on generator close (client
            # disconnect): closing the engine stream cancels a still-live
            # request and reaps it, freeing its arena blocks immediately.
            inner.close()
            self._release_admission()
            if not finished:
                with self._lock:
                    self.stream_disconnects += 1
                self._c_stream_disconnects.inc()
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.record(
                    "serving.predict_stream",
                    started,
                    clock.now(),
                    tokens=len(token_ids),
                    disconnected=not finished,
                )

    # -- sessions ------------------------------------------------------------

    def _require_sessions(self) -> SessionManager:
        if self.sessions is None:
            raise ServingError(
                "sessions unavailable: service has no tokenizer-equipped engine"
            )
        return self.sessions

    def _session_call(
        self,
        name: str,
        trace_context: TraceContext | None,
        runner,
        discard_on_abort: bool = False,
    ) -> dict:
        """Shared admission / tracing / outcome plumbing for session ops.

        ``discard_on_abort`` marks calls whose caller has no way to learn
        the session id when the call maps to an error status (create): a
        session that survived server-side but was never announced would be
        an orphan pinning arena blocks until eviction, so it is closed
        before the error propagates.
        """
        started = clock.now()
        activation = (
            self.obs.tracer.activate(trace_context.trace_id, trace_context.parent_span)
            if trace_context is not None
            else nullcontext()
        )
        if not self._try_admit():
            raise self._shed("queue full")
        try:
            with activation, self.obs.tracer.span(name) as span:
                payload = runner()
                span.set(outcome=payload["outcome"], reused=payload["reused_tokens"])
        finally:
            self._release_admission()
        outcome = payload["outcome"]
        if outcome in ("deadline_exceeded", "cancelled") and discard_on_abort:
            self.sessions.close(payload["session_id"])
        if outcome == "deadline_exceeded":
            with self._lock:
                self.deadline_exceeded_count += 1
            self._c_deadline.inc()
            raise DeadlineExceededError("session deadline exceeded")
        if outcome == "cancelled":
            with self._lock:
                self.cancelled_count += 1
            self._c_cancelled.inc()
            raise RequestCancelledError("session request cancelled")
        latency_ms = (clock.now() - started) * 1000.0
        with self._lock:
            self.request_count += 1
            self.total_latency_ms += latency_ms
        self._c_requests.inc()
        payload["latency_ms"] = latency_ms
        payload["ttft_ms"] = payload.pop("ttft_s") * 1000.0
        if trace_context is not None:
            payload["trace_id"] = trace_context.trace_id
        return payload

    def session_create(
        self,
        buffer: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        trace_context: TraceContext | None = None,
    ) -> dict:
        """``POST /v1/sessions``: open a keystroke session from a full buffer."""
        sessions = self._require_sessions()
        if not isinstance(buffer, str) or not buffer.strip():
            raise ServingError("buffer must be a non-empty string")
        budget = max_new_tokens or self.max_new_tokens
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        return self._session_call(
            "serving.session_create",
            trace_context,
            lambda: sessions.create(buffer, budget, deadline),
            discard_on_abort=True,
        )

    def session_extend(
        self,
        session_id: str,
        buffer: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        trace_context: TraceContext | None = None,
    ) -> dict:
        """``POST /v1/sessions/{id}/extend``: continue with the new buffer.

        Raises :class:`~repro.errors.SessionNotFoundError` (HTTP 404) for
        evicted / reaped / unknown ids — clients fall back to
        :meth:`session_create`.
        """
        sessions = self._require_sessions()
        if not isinstance(buffer, str) or not buffer.strip():
            raise ServingError("buffer must be a non-empty string")
        budget = max_new_tokens or self.max_new_tokens
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        return self._session_call(
            "serving.session_extend",
            trace_context,
            lambda: sessions.extend(session_id, buffer, budget, deadline),
        )

    def session_close(self, session_id: str) -> dict:
        """``DELETE /v1/sessions/{id}``: release the session's KV slabs."""
        sessions = self._require_sessions()
        return {"session_id": session_id, "closed": sessions.close(session_id)}

    # -- batch prediction ----------------------------------------------------

    def predict_batch(
        self,
        prompts: list[str],
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        trace_context: TraceContext | None = None,
    ) -> dict:
        """Serve a whole batch, decoding cache misses together.

        Duplicate prompts within the batch run once.  Misses go through the
        engine's continuous batcher when one is attached, otherwise through
        sequential ``completer.complete`` calls.  Under saturation the
        whole batch degrades to the fallback (or sheds with a typed 503);
        per-prompt engine sheds degrade individually.
        """
        if not isinstance(prompts, list) or not prompts:
            raise ServingError("prompts must be a non-empty list of strings")
        for prompt in prompts:
            if not isinstance(prompt, str) or not prompt.strip():
                raise ServingError("every prompt must be a non-empty string")
        budget = max_new_tokens or self.max_new_tokens
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        activation = (
            self.obs.tracer.activate(trace_context.trace_id, trace_context.parent_span)
            if trace_context is not None
            else nullcontext()
        )
        with activation, self.obs.tracer.span("serving.predict_batch", batch_size=len(prompts)) as span:
            self._g_inflight.inc()
            try:
                payload = self._predict_batch(prompts, budget, deadline)
            finally:
                self._g_inflight.dec()
            span.set(decoded=payload["decoded"])
            if trace_context is not None:
                payload["trace_id"] = trace_context.trace_id
            return payload

    def _complete_misses(
        self, misses: list[str], budget: int, deadline_s: float | None
    ) -> list[tuple[str, bool]]:
        """Generate the cache-missing prompts; returns ``(text, degraded)`` pairs."""
        if self.engine is not None and hasattr(self.engine, "complete_batch_detailed"):
            details = self.engine.complete_batch_detailed(
                misses, max_new_tokens=budget, deadline_s=deadline_s
            )
            results: list[tuple[str, bool]] = []
            for prompt, detail in zip(misses, details):
                outcome = detail["outcome"]
                if outcome == "completed":
                    results.append((detail["completion"], False))
                elif outcome == "deadline_exceeded":
                    with self._lock:
                        self.deadline_exceeded_count += 1
                    self._c_deadline.inc()
                    raise DeadlineExceededError(f"deadline of {deadline_s}s exceeded")
                elif outcome == "cancelled":
                    with self._lock:
                        self.cancelled_count += 1
                    self._c_cancelled.inc()
                    raise RequestCancelledError("request cancelled")
                else:  # shed by the engine: degrade just this prompt
                    results.append((self._degrade(prompt, budget, f"engine {outcome} the request"), True))
            return results
        if self.engine is not None:
            return [(text, False) for text in self.engine.complete_batch(misses, max_new_tokens=budget)]
        return [
            (self.completer.complete(prompt, max_new_tokens=budget), False) for prompt in misses
        ]

    def _predict_batch(self, prompts: list[str], budget: int, deadline_s: float | None) -> dict:
        started = clock.now()
        completions: dict[str, str] = {}
        cached_flags: dict[str, bool] = {}
        degraded_flags: dict[str, bool] = {}
        misses: list[str] = []
        seen: set[str] = set()
        for prompt in prompts:
            if prompt in seen:
                continue
            seen.add(prompt)
            hit = self.cache.get(prompt)
            if hit is not None:
                completions[prompt] = hit
                cached_flags[prompt] = True
            else:
                misses.append(prompt)
                cached_flags[prompt] = False
            degraded_flags[prompt] = False
        if misses:
            if self._try_admit():
                try:
                    generated = self._complete_misses(misses, budget, deadline_s)
                finally:
                    self._release_admission()
            else:
                generated = [(self._degrade(prompt, budget, "queue full"), True) for prompt in misses]
            for prompt, (completion, degraded) in zip(misses, generated):
                completions[prompt] = completion
                degraded_flags[prompt] = degraded
                if not degraded:
                    self.cache.put(prompt, completion)
        latency_ms = (clock.now() - started) * 1000.0
        with self._lock:
            self.request_count += len(prompts)
            self.batch_request_count += 1
            self.total_latency_ms += latency_ms
        self._h_batch.observe(latency_ms / 1000.0)
        self._c_requests.inc(len(prompts))
        self._c_batch_requests.inc()
        return {
            "completions": [completions[prompt] for prompt in prompts],
            "cached": [cached_flags[prompt] for prompt in prompts],
            "degraded": [degraded_flags[prompt] for prompt in prompts],
            "latency_ms": latency_ms,
            "batch_size": len(prompts),
            "decoded": len(misses),
        }

    # -- introspection -------------------------------------------------------

    def health(self) -> dict:
        return {"status": "ok", "model": getattr(self.completer, "name", "unknown")}

    def stats(self) -> dict:
        """Serving counters as one mutually-consistent snapshot.

        Every serving-side field — request/shed/degraded counters AND the
        inflight depth — is read in a single pass under ``self._lock``.
        ``inflight`` reads the authoritative ``_inflight_count`` (mutated
        under this same lock by ``_try_admit``/``_release_admission``)
        rather than the metrics gauge, which trails it outside the lock:
        a snapshot must never report an admission count that disagrees
        with the shed counter taken in the same breath.
        """
        with self._lock:
            mean_latency = self.total_latency_ms / self.request_count if self.request_count else 0.0
            report = {
                "requests": self.request_count,
                "batch_requests": self.batch_request_count,
                "coalesced_requests": self.coalesced_count,
                "shed_requests": self.shed_count,
                "degraded_requests": self.degraded_count,
                "deadline_exceeded_requests": self.deadline_exceeded_count,
                "cancelled_requests": self.cancelled_count,
                "stream_requests": self.stream_count,
                "stream_disconnects": self.stream_disconnects,
                "max_queue_depth": self.max_queue_depth,
                "inflight": self._inflight_count,
                "cache_hit_rate": self.cache.hit_rate,
                "cache": self.cache.stats(),
                "mean_latency_ms": mean_latency,
            }
        report["fallback"] = getattr(self.fallback, "name", None) if self.fallback else None
        tracer = self.obs.tracer
        report["tracing"] = {
            "enabled": tracer.enabled,
            "spans_buffered": len(tracer),
            "spans_recorded": tracer.total_recorded,
        }
        if self.sessions is not None:
            report["sessions"] = self.sessions.stats()
        if self.engine is not None:
            report["engine"] = self.engine.stats()
        return report

    def metrics(self) -> dict:
        """The ``/v1/metrics`` payload: full snapshot across the stack.

        ``metrics`` holds every counter/gauge/histogram registered against
        the shared registry (serving latencies plus, when the engine shares
        its Observability, queue-wait/prefill/decode histograms); the
        ``engine`` section repeats the scheduler and prefix-cache counters
        so hit rates are available even to metrics-only scrapers.
        """
        tracer = self.obs.tracer
        payload = {
            "metrics": self.obs.metrics.snapshot(),
            "tracing": {
                "enabled": tracer.enabled,
                "spans_buffered": len(tracer),
                "spans_recorded": tracer.total_recorded,
            },
        }
        if self.engine is not None:
            payload["engine"] = self.engine.stats()
        return payload

    def metrics_prometheus(self) -> str:
        """The ``/v1/metrics?format=prometheus`` body: text exposition.

        Same registry as the JSON snapshot, rendered in the line protocol
        a Prometheus server scrapes (``# TYPE`` headers, cumulative
        histogram buckets) — point a scrape job at the endpoint and every
        serving/engine/training instrument lands in one time series
        database.
        """
        return prometheus_exposition(self.obs.metrics)

    def telemetry(self) -> dict:
        """The ``GET /v1/telemetry`` payload a fleet collector drains.

        Spans are **drained** — atomically removed from the tracer's ring
        buffer, so a polling collector receives each span exactly once
        and the buffer cannot overflow between polls.  The Prometheus
        exposition and profiler snapshot are *cumulative* and simply
        reflect the current state; the collector replaces, not appends.
        """
        payload = {
            "spans": [span.to_dict() for span in self.obs.tracer.drain()],
            "metrics_prometheus": self.metrics_prometheus(),
            "profile": self.obs.profiler.snapshot() if self.obs.profiler.enabled else None,
        }
        return payload


class _Handler(BaseHTTPRequestHandler):
    service: PredictionService  # set by the server factory

    def log_message(self, format: str, *args) -> None:  # silence default logging
        del format, args

    def _send_json(
        self, payload: dict, status: int = 200, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200, content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        if parsed.path == "/v1/health":
            self._send_json(self.service.health())
        elif parsed.path == "/v1/stats":
            self._send_json(self.service.stats())
        elif parsed.path == "/v1/telemetry":
            self._send_json(self.service.telemetry())
        elif parsed.path == "/v1/metrics":
            wire_format = (query.get("format") or ["json"])[0]
            if wire_format == "prometheus":
                self._send_text(self.service.metrics_prometheus())
            elif wire_format == "json":
                self._send_json(self.service.metrics())
            else:
                self._send_json({"error": f"unknown metrics format {wire_format!r}"}, status=400)
        else:
            self._send_json({"error": f"unknown path {self.path}"}, status=404)

    def _stream_sse(self, events, trace_context: TraceContext | None) -> None:
        """Write a ``(event, data)`` generator as a ``text/event-stream``.

        The first event is pulled *before* the status line goes out, so
        pre-stream failures (validation, shed-without-fallback) still map
        to plain HTTP statuses in the caller.  Once streaming, a broken
        pipe — the client hung up — closes the generator, which cancels
        the underlying engine request and frees its KV slabs.
        """
        events = iter(events)
        try:
            first = next(events)
        except StopIteration:
            first = None
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        if trace_context is not None:
            self.send_header(TRACE_ID_HEADER, trace_context.trace_id)
        self.end_headers()
        try:
            if first is not None:
                self.wfile.write(sse_encode(*first))
                self.wfile.flush()
                for event, data in events:
                    self.wfile.write(sse_encode(event, data))
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client disconnect: fall through to close() below
        finally:
            events.close()

    def do_POST(self) -> None:
        try:
            parsed = urlparse(self.path)
            query = parse_qs(parsed.query)
            parts = [part for part in parsed.path.split("/") if part]
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            deadline_ms = payload.get("deadline_ms")
            deadline_s = deadline_ms / 1000.0 if deadline_ms is not None else None
            trace_context = TraceContext.from_headers(self.headers)
            if parsed.path == "/v1/completions":
                wants_stream = (query.get("stream") or ["0"])[0] in ("1", "true") or bool(
                    payload.get("stream")
                )
                if wants_stream:
                    events = self.service.predict_stream(
                        payload.get("prompt", ""),
                        payload.get("max_new_tokens"),
                        deadline_s=deadline_s,
                        trace_context=trace_context,
                    )
                    self._stream_sse(events, trace_context)
                    return
                result = self.service.predict(
                    payload.get("prompt", ""),
                    payload.get("max_new_tokens"),
                    deadline_s=deadline_s,
                    trace_context=trace_context,
                )
            elif parsed.path == "/v1/batch_completions":
                result = self.service.predict_batch(
                    payload.get("prompts", []),
                    payload.get("max_new_tokens"),
                    deadline_s=deadline_s,
                    trace_context=trace_context,
                )
            elif parsed.path == "/v1/sessions":
                result = self.service.session_create(
                    payload.get("buffer", payload.get("prompt", "")),
                    payload.get("max_new_tokens"),
                    deadline_s=deadline_s,
                    trace_context=trace_context,
                )
            elif len(parts) == 4 and parts[:2] == ["v1", "sessions"] and parts[3] == "extend":
                result = self.service.session_extend(
                    parts[2],
                    payload.get("buffer", payload.get("prompt", "")),
                    payload.get("max_new_tokens"),
                    deadline_s=deadline_s,
                    trace_context=trace_context,
                )
            else:
                self._send_json({"error": f"unknown path {self.path}"}, status=404)
                return
            echo = (
                {TRACE_ID_HEADER: trace_context.trace_id} if trace_context is not None else None
            )
            self._send_json(result, headers=echo)
        except SessionNotFoundError as error:
            self._send_json({"error": str(error)}, status=404)
        except ServiceOverloadedError as error:
            retry_after = error.retry_after_s if error.retry_after_s is not None else 1.0
            body = json.dumps(
                {"error": str(error), "retry_after_s": retry_after}
            ).encode("utf-8")
            self.send_response(503)
            self.send_header("Content-Type", "application/json")
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except DeadlineExceededError as error:
            self._send_json({"error": str(error)}, status=504)
        except RequestCancelledError as error:
            self._send_json({"error": str(error)}, status=408)
        except ServingError as error:
            self._send_json({"error": str(error)}, status=400)
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json({"error": f"bad request: {error}"}, status=400)

    def do_DELETE(self) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
                self._send_json(self.service.session_close(parts[2]))
            else:
                self._send_json({"error": f"unknown path {self.path}"}, status=404)
        except ServingError as error:
            self._send_json({"error": str(error)}, status=400)


class RestServer:
    """A small threaded HTTP server around a :class:`PredictionService`."""

    def __init__(self, service: PredictionService, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RestServer":
        if self._thread is not None:
            raise ServingError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RestServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
