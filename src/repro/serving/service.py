"""Prediction service: the GRPC/REST interface of the paper's demo.

"We expose a GRPC and REST API based interface to model predictions so that
inference can be called out using GRPC and REST clients."  Here the REST
flavour is implemented over the standard library's HTTP server; the same
:class:`PredictionService` object can also be called in-process (which is
what the editor-plugin simulation does).

Endpoints::

    POST /v1/completions   {"prompt": "...", "max_new_tokens": 96}
                        -> {"completion": "...", "latency_ms": ..., "cached": ...}
    GET  /v1/health        -> {"status": "ok", "model": "..."}
    GET  /v1/stats         -> request counts, cache hit rate, latency stats
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ServingError
from repro.serving.cache import LruCache


class PredictionService:
    """Wraps any TextCompleter with caching and latency accounting."""

    def __init__(self, completer, cache_capacity: int = 256, max_new_tokens: int = 96):
        self.completer = completer
        self.cache = LruCache(cache_capacity)
        self.max_new_tokens = max_new_tokens
        self.request_count = 0
        self.total_latency_ms = 0.0
        self._lock = threading.Lock()

    def predict(self, prompt: str, max_new_tokens: int | None = None) -> dict:
        """One prediction, served from cache when possible."""
        if not isinstance(prompt, str) or not prompt.strip():
            raise ServingError("prompt must be a non-empty string")
        budget = max_new_tokens or self.max_new_tokens
        started = time.perf_counter()
        with self._lock:
            cached = self.cache.get(prompt)
            if cached is not None:
                latency_ms = (time.perf_counter() - started) * 1000.0
                self.request_count += 1
                self.total_latency_ms += latency_ms
                return {"completion": cached, "latency_ms": latency_ms, "cached": True}
        completion = self.completer.complete(prompt, max_new_tokens=budget)
        latency_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self.cache.put(prompt, completion)
            self.request_count += 1
            self.total_latency_ms += latency_ms
        return {"completion": completion, "latency_ms": latency_ms, "cached": False}

    def health(self) -> dict:
        return {"status": "ok", "model": getattr(self.completer, "name", "unknown")}

    def stats(self) -> dict:
        with self._lock:
            mean_latency = self.total_latency_ms / self.request_count if self.request_count else 0.0
            return {
                "requests": self.request_count,
                "cache_hit_rate": self.cache.hit_rate,
                "mean_latency_ms": mean_latency,
            }


class _Handler(BaseHTTPRequestHandler):
    service: PredictionService  # set by the server factory

    def log_message(self, format: str, *args) -> None:  # silence default logging
        del format, args

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/v1/health":
            self._send_json(self.service.health())
        elif self.path == "/v1/stats":
            self._send_json(self.service.stats())
        else:
            self._send_json({"error": f"unknown path {self.path}"}, status=404)

    def do_POST(self) -> None:
        if self.path != "/v1/completions":
            self._send_json({"error": f"unknown path {self.path}"}, status=404)
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            result = self.service.predict(
                payload.get("prompt", ""),
                payload.get("max_new_tokens"),
            )
            self._send_json(result)
        except ServingError as error:
            self._send_json({"error": str(error)}, status=400)
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json({"error": f"bad request: {error}"}, status=400)


class RestServer:
    """A small threaded HTTP server around a :class:`PredictionService`."""

    def __init__(self, service: PredictionService, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RestServer":
        if self._thread is not None:
            raise ServingError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RestServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
