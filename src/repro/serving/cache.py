"""LRU prediction cache.

The paper's demo section plans "improving latency by using techniques like
caching"; the serving layer ships with one.  The cache is internally
thread-safe: the REST server handles requests on multiple threads, and the
service must be able to consult the cache without wrapping every call in
its own lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class LruCache:
    """A bounded least-recently-used map from prompt to completion.

    All operations (including the ``hits``/``misses``/``evictions``
    accounting) are guarded by an internal lock, so the cache can be
    shared between request-handler threads directly.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> str | None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: str) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry, keeping the lifetime counters.

        ``hits``/``misses``/``evictions`` are cumulative-by-contract: a
        scraper diffing successive ``stats()`` snapshots must never see a
        counter go backwards, so a cache reset empties the entries (the
        next ``get`` of any key is a miss) without zeroing the history.
        Cleared entries are not counted as evictions.
        """
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for ``/v1/stats``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }
