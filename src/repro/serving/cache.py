"""LRU prediction cache.

The paper's demo section plans "improving latency by using techniques like
caching"; the serving layer ships with one.
"""

from __future__ import annotations

from collections import OrderedDict


class LruCache:
    """A bounded least-recently-used map from prompt to completion."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, str] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> str | None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: str, value: str) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
