"""Editor-plugin simulation.

Reproduces the paper's VS Code plugin flow: "when a user writes the prompt
for the task, example '- name: install nginx on RHEL', and hits enter, we
invoke the API to carry out the prediction and then take the results and
paste it back on the editor.  The user can either hit tab and accept the
suggestion, or escape key to reject the suggestion."

:class:`EditorSession` models the buffer + keystroke protocol against any
prediction backend (in-process service or HTTP client).  When the backend
speaks the session API (``session_create`` / ``session_extend``), every
enter after the first *extends* the server-side keystroke session: the
buffer the plugin re-sends is almost entirely the previous prompt plus
the accepted completion, so the server rolls its warm KV slab forward and
prefills only the delta instead of the whole file — the pattern the KV
arena was built for.  Backends without the session API (or whose session
was evicted server-side) fall back to stateless ``predict`` transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServingError, SessionNotFoundError

TAB = "tab"
ESCAPE = "escape"


@dataclass
class Suggestion:
    """A pending inline suggestion shown to the user."""

    text: str
    latency_ms: float
    cached: bool
    #: Tokens served from the session's warm KV slab (0 = cold/stateless).
    reused_tokens: int = 0


@dataclass
class EditorSession:
    """A minimal Ansible-file editing session with AI suggestions.

    Attributes:
        backend: object with ``predict(prompt) -> dict`` (a
            :class:`PredictionService` or :class:`PredictionClient`);
            if it also exposes ``session_create``/``session_extend``,
            suggestions ride a server-side keystroke session.
        buffer: current file content.
        accepted / rejected: per-session acceptance accounting.
    """

    backend: object
    buffer: str = ""
    accepted: int = 0
    rejected: int = 0
    session_id: str | None = field(default=None)
    prefilled_tokens: int = 0  # cumulative server-side prefill work
    reused_tokens: int = 0  # cumulative warm-slab reuse
    _pending: Suggestion | None = field(default=None, repr=False)

    @property
    def session_capable(self) -> bool:
        if not (
            hasattr(self.backend, "session_create")
            and hasattr(self.backend, "session_extend")
        ):
            return False
        # An in-process PredictionService without a tokenizer-equipped
        # engine has the methods but no session manager behind them.
        return getattr(self.backend, "sessions", True) is not None

    def type_text(self, text: str) -> None:
        """User types raw text (no trigger)."""
        self.buffer += text

    def _complete(self) -> dict:
        """One completion of the full buffer, session-first.

        A lost session (evicted / reaped server-side) degrades to a fresh
        create — one cold prefill, never an error surfaced to the editor.
        """
        if not self.session_capable:
            return self.backend.predict(self.buffer)
        if self.session_id is None:
            result = self.backend.session_create(self.buffer)
        else:
            try:
                result = self.backend.session_extend(self.session_id, self.buffer)
            except SessionNotFoundError:
                result = self.backend.session_create(self.buffer)
        self.session_id = result.get("session_id", self.session_id)
        self.prefilled_tokens += result.get("prefilled", 0)
        self.reused_tokens += result.get("reused_tokens", 0)
        return result

    def press_enter(self) -> Suggestion:
        """User hits enter after a ``- name:`` prompt line: trigger the API.

        The whole buffer is the model context; the returned suggestion is
        held pending until tab/escape.
        """
        if self._pending is not None:
            raise ServingError("a suggestion is already pending; press tab or escape")
        if not self.buffer.rstrip("\n").split("\n")[-1].lstrip().startswith("- name:"):
            raise ServingError("enter pressed on a line that is not a '- name:' prompt")
        self.buffer += "\n"
        result = self._complete()
        self._pending = Suggestion(
            text=result["completion"],
            latency_ms=result.get("latency_ms", 0.0),
            cached=result.get("cached", False),
            reused_tokens=result.get("reused_tokens", 0),
        )
        return self._pending

    def press(self, key: str) -> str:
        """Resolve the pending suggestion with tab (accept) or escape."""
        if self._pending is None:
            raise ServingError("no pending suggestion")
        suggestion = self._pending
        self._pending = None
        if key == TAB:
            self.buffer += suggestion.text
            if not self.buffer.endswith("\n"):
                self.buffer += "\n"
            self.accepted += 1
        elif key == ESCAPE:
            self.rejected += 1
        else:
            raise ServingError(f"unknown key {key!r}; use 'tab' or 'escape'")
        return self.buffer

    def close(self) -> None:
        """Release the server-side session, if any (end of editing)."""
        if self.session_id is not None and hasattr(self.backend, "session_close"):
            self.backend.session_close(self.session_id)
        self.session_id = None

    @property
    def acceptance_rate(self) -> float:
        total = self.accepted + self.rejected
        return self.accepted / total if total else 0.0
