"""Editor-plugin simulation.

Reproduces the paper's VS Code plugin flow: "when a user writes the prompt
for the task, example '- name: install nginx on RHEL', and hits enter, we
invoke the API to carry out the prediction and then take the results and
paste it back on the editor.  The user can either hit tab and accept the
suggestion, or escape key to reject the suggestion."

:class:`EditorSession` models the buffer + keystroke protocol against any
prediction backend (in-process service or HTTP client).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServingError

TAB = "tab"
ESCAPE = "escape"


@dataclass
class Suggestion:
    """A pending inline suggestion shown to the user."""

    text: str
    latency_ms: float
    cached: bool


@dataclass
class EditorSession:
    """A minimal Ansible-file editing session with AI suggestions.

    Attributes:
        backend: object with ``predict(prompt) -> dict`` (a
            :class:`PredictionService` or :class:`PredictionClient`).
        buffer: current file content.
        accepted / rejected: per-session acceptance accounting.
    """

    backend: object
    buffer: str = ""
    accepted: int = 0
    rejected: int = 0
    _pending: Suggestion | None = field(default=None, repr=False)

    def type_text(self, text: str) -> None:
        """User types raw text (no trigger)."""
        self.buffer += text

    def press_enter(self) -> Suggestion:
        """User hits enter after a ``- name:`` prompt line: trigger the API.

        The whole buffer is the model context; the returned suggestion is
        held pending until tab/escape.
        """
        if self._pending is not None:
            raise ServingError("a suggestion is already pending; press tab or escape")
        if not self.buffer.rstrip("\n").split("\n")[-1].lstrip().startswith("- name:"):
            raise ServingError("enter pressed on a line that is not a '- name:' prompt")
        self.buffer += "\n"
        result = self.backend.predict(self.buffer)
        self._pending = Suggestion(
            text=result["completion"],
            latency_ms=result.get("latency_ms", 0.0),
            cached=result.get("cached", False),
        )
        return self._pending

    def press(self, key: str) -> str:
        """Resolve the pending suggestion with tab (accept) or escape."""
        if self._pending is None:
            raise ServingError("no pending suggestion")
        suggestion = self._pending
        self._pending = None
        if key == TAB:
            self.buffer += suggestion.text
            if not self.buffer.endswith("\n"):
                self.buffer += "\n"
            self.accepted += 1
        elif key == ESCAPE:
            self.rejected += 1
        else:
            raise ServingError(f"unknown key {key!r}; use 'tab' or 'escape'")
        return self.buffer

    @property
    def acceptance_rate(self) -> float:
        total = self.accepted + self.rejected
        return self.accepted / total if total else 0.0
