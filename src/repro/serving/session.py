"""Keystroke sessions: incremental prompt extension over a live KV slab.

The editor-plugin serving pattern the KV arena was designed for: the user
types, the plugin re-sends the *full* buffer, and almost all of it is the
previous request's prompt plus the completion the user just accepted.  A
:class:`SessionManager` keeps that state warm — each session owns
exclusive per-layer :class:`~repro.nn.kv_arena.KVCache` handles holding
the K/V of every token fed so far, and an *extend* call

1. tokenizes the new buffer and plans it through the same
   budget-aware :func:`~repro.nn.sampling.plan_prompt` as every other
   engine path,
2. finds the longest common token prefix with the session's cached
   context and rolls the caches back to it (``KVCache.truncate`` —
   zero-copy COW-safe rollback, the same primitive speculative decode
   uses),
3. runs one ``forward_incremental`` over only the *suffix* — the few
   tokens the keystroke actually added — and
4. greedy-decodes with exactly the
   :func:`~repro.engine.batcher.advance_request` stop policy.

Because causal attention makes incremental prefill bit-identical to
prefilling from scratch (the property the prefix cache already relies
on), an extend's completion is byte-identical to a cold re-prefill of the
full buffer; the conformance suite asserts this across dtypes and seeds.
What changes is only the work: TTFT drops from O(buffer) to O(keystroke).

Lifecycle: sessions are LRU-evicted beyond ``max_sessions`` and reaped
after ``ttl_s`` idle seconds (both on the :mod:`repro.faults` clock, so
TTL behaviour is exact under a fake clock).  Every exit path — close,
evict, reap, crash (:meth:`close_all`), or a mid-extend fault — releases
the session's caches back to the arena: the chaos suite's zero-leak and
no-orphaned-session invariants hold by construction.

Locking: public entry points take the manager lock, then the engine's
request lock for anything touching the model or the arena — the same
coarse serialisation as ``generate_batch``, in a fixed order, so sessions
never race a batch decode for slabs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.engine.batcher import advance_request
from repro.engine.request import GenerationRequest
from repro.errors import (
    InjectedFault,
    ServiceOverloadedError,
    ServingError,
    SessionNotFoundError,
)
from repro.faults import clock
from repro.faults.inject import fire
from repro.nn.kv_arena import KVCache


def _common_prefix(left: list[int], right: list[int]) -> int:
    bound = min(len(left), len(right))
    index = 0
    while index < bound and left[index] == right[index]:
        index += 1
    return index


@dataclass
class _Session:
    """One live editor session and the token context its caches hold."""

    session_id: str
    caches: list[KVCache]
    cached_ids: list[int] = field(default_factory=list)  # tokens with K/V resident
    created_at: float = 0.0
    last_used_at: float = 0.0
    extends: int = 0

    def release(self) -> None:
        for cache in self.caches:
            cache.release()
        self.cached_ids.clear()


class SessionManager:
    """LRU/TTL-bounded table of keystroke sessions over one engine."""

    def __init__(
        self,
        engine,
        *,
        max_sessions: int = 64,
        ttl_s: float | None = None,
        obs=None,
    ):
        if engine.tokenizer is None:
            raise ServingError("sessions need a tokenizer-equipped engine")
        if max_sessions < 1:
            raise ServingError(f"max_sessions must be >= 1, got {max_sessions}")
        if ttl_s is not None and ttl_s <= 0:
            raise ServingError(f"ttl_s must be positive, got {ttl_s}")
        self.engine = engine
        self.max_sessions = max_sessions
        self.ttl_s = ttl_s
        self.obs = obs if obs is not None else engine.obs
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        self._lock = threading.RLock()
        self._next_id = 0
        # -- accounting (guarded by self._lock) --
        self.created = 0
        self.extends = 0
        self.evicted = 0
        self.reaped = 0
        self.closed = 0
        self.prefill_tokens = 0
        self.reused_tokens = 0
        self.decode_tokens = 0
        self.decode_faults = 0
        metrics = self.obs.metrics
        self._c_created = metrics.counter("session.created")
        self._c_extends = metrics.counter("session.extends")
        self._c_evicted = metrics.counter("session.evicted")
        self._c_reaped = metrics.counter("session.reaped")
        self._c_prefill = metrics.counter("session.prefill_tokens")
        self._c_reused = metrics.counter("session.reused_tokens")
        self._h_create_ttft = metrics.histogram("session.create_ttft_s")
        self._h_extend_ttft = metrics.histogram("session.extend_ttft_s")

    # -- introspection --------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def session_ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def stats(self) -> dict:
        with self._lock:
            fed = self.prefill_tokens + self.reused_tokens
            return {
                "live_sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "ttl_s": self.ttl_s,
                "created": self.created,
                "extends": self.extends,
                "evicted": self.evicted,
                "reaped": self.reaped,
                "closed": self.closed,
                "prefill_tokens": self.prefill_tokens,
                "reused_tokens": self.reused_tokens,
                "decode_tokens": self.decode_tokens,
                "decode_faults": self.decode_faults,
                "token_reuse_rate": self.reused_tokens / fed if fed else 0.0,
            }

    # -- lifecycle ------------------------------------------------------------

    def _drop_locked(self, session: _Session) -> None:
        """Release a session's slabs and forget it; both locks held."""
        self._sessions.pop(session.session_id, None)
        session.release()

    def close(self, session_id: str) -> bool:
        """Release one session; True if it existed."""
        with self._lock, self.engine._lock:
            session = self._sessions.get(session_id)
            if session is None:
                return False
            self._drop_locked(session)
            self.closed += 1
            return True

    def close_all(self) -> int:
        """Release every session — the replica-crash / shutdown path.

        A dead replica must not leave orphaned sessions pinning arena
        blocks: this is what :class:`repro.fleet.worker.InProcessWorker`
        calls from its crash handler, right after ``engine.abort_all()``.
        """
        with self._lock, self.engine._lock:
            dropped = len(self._sessions)
            for session in list(self._sessions.values()):
                self._drop_locked(session)
            self.closed += dropped
            return dropped

    def reap_idle(self, now: float | None = None) -> int:
        """Drop sessions idle past ``ttl_s``; returns how many."""
        if self.ttl_s is None:
            return 0
        moment = clock.now() if now is None else now
        with self._lock, self.engine._lock:
            stale = [
                session
                for session in self._sessions.values()
                if moment - session.last_used_at >= self.ttl_s
            ]
            for session in stale:
                self._drop_locked(session)
                self.reaped += 1
                self._c_reaped.inc()
            return len(stale)

    def _evict_over_capacity_locked(self) -> None:
        while len(self._sessions) > self.max_sessions:
            _, session = self._sessions.popitem(last=False)
            session.release()
            self.evicted += 1
            self._c_evicted.inc()

    # -- generation core ------------------------------------------------------

    def _run(self, session: _Session, request: GenerationRequest) -> dict:
        """Prefill the suffix atop the session's warm caches, then decode.

        Token-for-token the policy of
        :func:`~repro.nn.sampling.generate_greedy`: same planned prompt,
        same stop handling, same budget-before-window ordering — which is
        what makes a warm extend byte-identical to a cold re-prefill.
        Both locks and the engine lock are held by the caller.
        """
        model = self.engine.network
        window = model.config.n_positions
        planned = request.prompt_ids
        common = min(_common_prefix(session.cached_ids, planned), len(planned) - 1)
        if common < session.caches[0].length:
            for cache in session.caches:
                cache.truncate(common)
            del session.cached_ids[common:]
        request.prefix_reused = common
        suffix = planned[common:]
        request.begin_prefill()
        try:
            logits = model.forward_incremental(
                np.array([suffix], dtype=np.int64), session.caches
            )
        except BaseException:
            # A fault mid-prefill (slab allocation, injected crash) can
            # leave per-layer caches at mixed lengths — the session is
            # unrecoverable.  Release every slab and forget it so the
            # failure sheds this one request without leaking a byte.
            self._drop_locked(session)
            request.finish("shed")
            self.engine._observe_request(request)
            raise
        session.cached_ids.extend(suffix)
        prefilled = len(suffix)
        first_token = int(logits[0, -1].argmax())
        request.begin_decode()
        ttft_s = request.decode_started_at - request.submitted_at
        appended_from = len(request.generated)
        reason = advance_request(request, first_token, window)
        request.emit_tokens(request.generated[appended_from:])
        pending = first_token
        try:
            while reason is None:
                if request.cancel_requested:
                    reason = "cancelled"
                    break
                if request.expired():
                    reason = "deadline_exceeded"
                    break
                try:
                    # Same transient-fault contract as the batcher: the seam
                    # fires before the forward touches any state, so a raised
                    # InjectedFault skips nothing and the retry is identical.
                    fire("engine.decode_step", batch=1, session=session.session_id)
                except InjectedFault:
                    self.decode_faults += 1
                    continue
                logits = model.forward_incremental(
                    np.array([[pending]], dtype=np.int64), session.caches
                )
                session.cached_ids.append(pending)
                appended_from = len(request.generated)
                pending = int(logits[0, -1].argmax())
                reason = advance_request(request, pending, window)
                request.emit_tokens(request.generated[appended_from:])
        except BaseException:
            # A crash unwinding the decode loop (WorkerCrashed fires before
            # the forward, so the caches stay consistent): record the
            # request as cancelled — the replica's crash handler closes
            # every session right after, releasing the slabs.
            request.finish("cancelled")
            self.engine._observe_request(request)
            raise
        request.finish(reason)
        self.prefill_tokens += prefilled
        self.reused_tokens += common
        self.decode_tokens += len(request.generated)
        self._c_prefill.inc(prefilled)
        self._c_reused.inc(common)
        self.engine._observe_request(request)
        completion = self.engine.tokenizer.decode(request.generated)
        return {
            "session_id": session.session_id,
            "completion": completion,
            "stop_reason": request.stop_reason,
            "outcome": request.outcome,
            "ttft_s": ttft_s,
            "prefilled": prefilled,
            "reused_tokens": common,
            "generated_tokens": len(request.generated),
            "extends": session.extends,
        }

    def _generate(self, session: _Session, buffer: str, max_new_tokens, deadline_s) -> dict:
        ids = self.engine.tokenizer.encode(buffer)
        if not ids:
            raise ServingError(f"buffer encodes to no tokens: {buffer!r}")
        with self.engine._lock:
            request = self.engine._make_request(ids, max_new_tokens, None, deadline_s)
            try:
                return self._run(session, request)
            except (InjectedFault, MemoryError) as error:
                raise ServiceOverloadedError(
                    f"session {session.session_id} shed during prefill"
                ) from error

    # -- public API -----------------------------------------------------------

    def create(
        self,
        buffer: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """Open a session from a full buffer; returns the first completion.

        The payload carries ``session_id`` for subsequent :meth:`extend`
        calls, plus the same disposition fields the completion endpoint
        reports (``outcome``, ``stop_reason``, ``ttft_s``).
        """
        with self._lock:
            now = clock.now()
            session = _Session(
                session_id=f"s{self._next_id:04d}",
                caches=self.engine.network.new_cache(self.engine.kv_arena),
                created_at=now,
                last_used_at=now,
            )
            self._next_id += 1
            payload = self._generate(session, buffer, max_new_tokens, deadline_s)
            self._sessions[session.session_id] = session
            self.created += 1
            self._c_created.inc()
            self._h_create_ttft.observe(payload["ttft_s"])
            self._evict_over_capacity_locked()
            return payload

    def extend(
        self,
        session_id: str,
        buffer: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """Continue a session with the client's *full* new buffer.

        Only the tokens past the common prefix with the session's cached
        context are prefilled; the payload's ``reused_tokens`` /
        ``prefilled`` split is the no-re-prefill regression surface.
        Raises :class:`SessionNotFoundError` for unknown / evicted /
        reaped ids — callers recover by creating a fresh session.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionNotFoundError(session_id)
            session.extends += 1
            session.last_used_at = clock.now()
            self._sessions.move_to_end(session_id)
            payload = self._generate(session, buffer, max_new_tokens, deadline_s)
            session.last_used_at = clock.now()
            self.extends += 1
            self._c_extends.inc()
            self._h_extend_ttft.observe(payload["ttft_s"])
            return payload
