"""Serving layer: REST service, client, streaming, sessions, editor plugin."""

from repro.serving.cache import LruCache
from repro.serving.client import PredictionClient, RetryPolicy
from repro.serving.plugin import ESCAPE, EditorSession, Suggestion, TAB
from repro.serving.service import PredictionService, RestServer
from repro.serving.session import SessionManager
from repro.serving.stream import (
    STREAM_EVENTS,
    SseEvent,
    SseParser,
    TextDelta,
    iter_sse,
    sse_comment,
    sse_encode,
)

__all__ = [
    "LruCache",
    "PredictionClient",
    "RetryPolicy",
    "ESCAPE",
    "EditorSession",
    "Suggestion",
    "TAB",
    "PredictionService",
    "RestServer",
    "SessionManager",
    "STREAM_EVENTS",
    "SseEvent",
    "SseParser",
    "TextDelta",
    "iter_sse",
    "sse_comment",
    "sse_encode",
]
