"""Serving layer: REST service, client, cache, editor-plugin simulation."""

from repro.serving.cache import LruCache
from repro.serving.client import PredictionClient, RetryPolicy
from repro.serving.plugin import ESCAPE, EditorSession, Suggestion, TAB
from repro.serving.service import PredictionService, RestServer

__all__ = [
    "LruCache",
    "PredictionClient",
    "RetryPolicy",
    "ESCAPE",
    "EditorSession",
    "Suggestion",
    "TAB",
    "PredictionService",
    "RestServer",
]
