"""HTTP client for the prediction service (the "REST client" of the demo)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import ServingError


class PredictionClient:
    """Talks to a :class:`repro.serving.service.RestServer`."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        url = self.base_url + path
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
                message = body.get("error", str(error))
            except (ValueError, json.JSONDecodeError):
                message = str(error)
            raise ServingError(f"{method} {path} failed: {message}") from error
        except urllib.error.URLError as error:
            raise ServingError(f"cannot reach service at {url}: {error}") from error

    def complete(self, prompt: str, max_new_tokens: int = 96) -> str:
        """TextCompleter-compatible completion via HTTP."""
        result = self._request(
            "POST", "/v1/completions", {"prompt": prompt, "max_new_tokens": max_new_tokens}
        )
        return result["completion"]

    def complete_batch(self, prompts: list[str], max_new_tokens: int = 96) -> list[str]:
        """Batched completions via ``/v1/batch_completions``."""
        result = self.predict_batch(prompts, max_new_tokens)
        return result["completions"]

    def predict_batch(self, prompts: list[str], max_new_tokens: int | None = None) -> dict:
        """Full batch payload (completions + per-prompt cache flags + latency)."""
        payload: dict = {"prompts": prompts}
        if max_new_tokens is not None:
            payload["max_new_tokens"] = max_new_tokens
        return self._request("POST", "/v1/batch_completions", payload)

    def predict(self, prompt: str, max_new_tokens: int | None = None) -> dict:
        """Full prediction payload (completion + latency + cache flag)."""
        payload: dict = {"prompt": prompt}
        if max_new_tokens is not None:
            payload["max_new_tokens"] = max_new_tokens
        return self._request("POST", "/v1/completions", payload)

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> dict:
        """Full observability snapshot from ``/v1/metrics``."""
        return self._request("GET", "/v1/metrics")

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition from ``/v1/metrics?format=prometheus``."""
        url = self.base_url + "/v1/metrics?format=prometheus"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as error:
            raise ServingError(f"cannot reach service at {url}: {error}") from error
