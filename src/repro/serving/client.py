"""HTTP client for the prediction service (the "REST client" of the demo).

Besides the thin request wrappers, the client implements the polite half
of the server's backpressure contract: a :class:`RetryPolicy` retries
overload (503) and transport errors with exponential backoff plus seeded
jitter, honouring the server's ``Retry-After`` hint as a floor on the
wait.  Retries are opt-in (``max_retries=0`` by default) and sleep on the
shared :mod:`repro.faults.clock`, so retry schedules are exact under a
fake clock.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ServingError,
    SessionNotFoundError,
)
from repro.faults import clock
from repro.serving.stream import SseParser
from repro.utils.rng import SeededRng


class RetryPolicy:
    """Exponential backoff with jitter for overload / transport errors.

    The delay before attempt ``n`` (1-based) is::

        min(max_delay_s, base_delay_s * 2**(n-1)) * (1 + jitter * U[-1, 1])

    floored at the server's ``Retry-After`` hint when one came back with
    the 503.  Jitter draws from a :class:`~repro.utils.rng.SeededRng`, so
    a policy constructed with the same seed backs off identically.
    """

    def __init__(
        self,
        max_retries: int = 3,
        base_delay_s: float = 0.1,
        max_delay_s: float = 5.0,
        jitter: float = 0.25,
        seed: int = 0,
    ):
        if max_retries < 0:
            raise ServingError(f"max_retries must be >= 0, got {max_retries}")
        if not 0.0 <= jitter <= 1.0:
            raise ServingError(f"jitter must be in [0, 1], got {jitter}")
        self.max_retries = max_retries
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._rng = SeededRng(seed).child("client-retry")

    def delay(self, attempt: int, retry_after_s: float | None = None) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        backoff = min(self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1)))
        if self.jitter:
            backoff *= 1.0 + self.jitter * self._rng.uniform(-1.0, 1.0)
        if retry_after_s is not None:
            backoff = max(backoff, retry_after_s)
        return backoff


class PredictionClient:
    """Talks to one or more :class:`repro.serving.service.RestServer`\\ s.

    ``base_url`` may be a single URL or a list of equivalent endpoints
    (replicas of the same service).  On a *transport* failure — connection
    refused, reset, timeout — the client fails over to the next endpoint
    immediately, without sleeping; only once a full sweep of every
    endpoint has failed does the :class:`RetryPolicy` backoff apply (and
    with no policy, a failed sweep raises).  After a success the client
    stays sticky on the endpoint that answered.  HTTP-level errors (503
    overload, 504 deadline) are *service* answers, not dead endpoints,
    and never trigger failover.

    ``retry_policy`` opts into backoff-retry of 503s and unreachable-host
    errors; ``sleep`` is injectable for tests and defaults to the shared
    faults clock (real ``time.sleep`` in production).
    """

    def __init__(
        self,
        base_url: str | list[str],
        timeout: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        sleep=None,
    ):
        urls = [base_url] if isinstance(base_url, str) else list(base_url)
        if not urls:
            raise ServingError("base_url must name at least one endpoint")
        self.base_urls = [url.rstrip("/") for url in urls]
        self._endpoint = 0
        self.timeout = timeout
        self.retry_policy = retry_policy
        self._sleep = sleep if sleep is not None else clock.sleep
        self.retries = 0  # lifetime count of retry sleeps taken
        self.failovers = 0  # lifetime count of endpoint rotations

    @property
    def base_url(self) -> str:
        """The endpoint currently in use (rotates on transport failure)."""
        return self.base_urls[self._endpoint]

    def _raise_http(self, method: str, path: str, error: urllib.error.HTTPError) -> None:
        try:
            body = json.loads(error.read().decode("utf-8"))
            message = body.get("error", str(error))
        except (ValueError, json.JSONDecodeError):
            body = {}
            message = str(error)
        if error.code == 503:
            raise ServiceOverloadedError(
                f"{method} {path} overloaded: {message}",
                retry_after_s=body.get("retry_after_s"),
            ) from error
        if error.code == 504:
            raise DeadlineExceededError(f"{method} {path} deadline exceeded: {message}") from error
        if error.code == 404 and "/v1/sessions/" in path:
            raise SessionNotFoundError(path.split("/")[3]) from error
        raise ServingError(f"{method} {path} failed: {message}") from error

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        url = self.base_url + path
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            self._raise_http(method, path, error)
        except urllib.error.URLError as error:
            raise ServingError(f"cannot reach service at {url}: {error}") from error

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        policy = self.retry_policy
        attempt = 0
        swept = 0  # endpoints tried (and failed at transport level) this sweep
        while True:
            try:
                return self._request_once(method, path, payload, headers)
            except ServiceOverloadedError as error:
                # A 503 is the service answering — stay on this endpoint
                # and honour its Retry-After through the policy.
                if policy is None or attempt >= policy.max_retries:
                    raise
                attempt += 1
                self.retries += 1
                self._sleep(policy.delay(attempt, error.retry_after_s))
            except DeadlineExceededError:
                raise  # a later retry cannot beat an already-spent deadline
            except ServingError as error:
                # Transport-level failure (unreachable host); HTTP-level
                # errors other than 503/504 raised above are not retried.
                cause = error.__cause__
                transport = isinstance(cause, urllib.error.URLError) and not isinstance(
                    cause, urllib.error.HTTPError  # HTTPError subclasses URLError
                )
                if not transport:
                    raise
                swept += 1
                if swept < len(self.base_urls):
                    # Another replica may be up: rotate and retry NOW —
                    # failing over costs nothing, sleeping costs latency.
                    self._endpoint = (self._endpoint + 1) % len(self.base_urls)
                    self.failovers += 1
                    continue
                # Every endpoint refused in one sweep: now it's a real
                # outage and the backoff policy (if any) takes over.
                if policy is None or attempt >= policy.max_retries:
                    raise
                attempt += 1
                self.retries += 1
                swept = 0
                self._endpoint = (self._endpoint + 1) % len(self.base_urls)
                if len(self.base_urls) > 1:
                    self.failovers += 1
                self._sleep(policy.delay(attempt))

    def complete(self, prompt: str, max_new_tokens: int = 96) -> str:
        """TextCompleter-compatible completion via HTTP."""
        result = self._request(
            "POST", "/v1/completions", {"prompt": prompt, "max_new_tokens": max_new_tokens}
        )
        return result["completion"]

    def complete_batch(self, prompts: list[str], max_new_tokens: int = 96) -> list[str]:
        """Batched completions via ``/v1/batch_completions``."""
        result = self.predict_batch(prompts, max_new_tokens)
        return result["completions"]

    def predict_batch(
        self,
        prompts: list[str],
        max_new_tokens: int | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        """Full batch payload (completions + per-prompt cache flags + latency)."""
        payload: dict = {"prompts": prompts}
        if max_new_tokens is not None:
            payload["max_new_tokens"] = max_new_tokens
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/v1/batch_completions", payload, headers=headers)

    def predict(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        """Full prediction payload (completion + latency + cache flag).

        ``headers`` rides extra HTTP headers along — how the fleet router
        propagates its trace context (``X-Repro-Trace-Id`` /
        ``X-Repro-Parent-Span``) to a process worker.
        """
        payload: dict = {"prompt": prompt}
        if max_new_tokens is not None:
            payload["max_new_tokens"] = max_new_tokens
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/v1/completions", payload, headers=headers)

    def predict_stream(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
        chunk_size: int = 512,
    ):
        """Incremental completion: yields parsed SSE events as they arrive.

        A generator over :class:`~repro.serving.stream.SseEvent` — feed
        ``event.json()`` for the payload; ``token`` events carry ``text``
        deltas whose concatenation equals the non-streaming completion,
        and the final event is ``done`` (or ``error``).  Closing the
        generator early closes the socket, which the server observes as a
        client disconnect and answers by cancelling the request.  Streams
        do not retry or fail over: once bytes flowed, a replay could
        duplicate delivered tokens.
        """
        path = "/v1/completions?stream=1"
        url = self.base_url + path
        payload: dict = {"prompt": prompt, "stream": True}
        if max_new_tokens is not None:
            payload["max_new_tokens"] = max_new_tokens
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            self._raise_http("POST", path, error)
        except urllib.error.URLError as error:
            raise ServingError(f"cannot reach service at {url}: {error}") from error
        parser = SseParser()
        try:
            while True:
                chunk = response.read(chunk_size)
                if not chunk:
                    break
                for event in parser.feed(chunk):
                    yield event
            for event in parser.close():
                yield event
        finally:
            response.close()

    def stream_text(self, prompt: str, max_new_tokens: int | None = None) -> "list[str]":
        """Convenience: the stream's ``token`` text deltas, in order."""
        deltas = []
        for event in self.predict_stream(prompt, max_new_tokens):
            if event.event == "token":
                deltas.append(event.json().get("text", ""))
            elif event.event == "error":
                data = event.json()
                raise ServingError(f"stream failed: {data.get('error')} ({data.get('status')})")
        return deltas

    # -- sessions -------------------------------------------------------------

    def session_create(
        self,
        buffer: str,
        max_new_tokens: int | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        """Open a keystroke session; the payload carries ``session_id``."""
        payload: dict = {"buffer": buffer}
        if max_new_tokens is not None:
            payload["max_new_tokens"] = max_new_tokens
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/v1/sessions", payload, headers=headers)

    def session_extend(
        self,
        session_id: str,
        buffer: str,
        max_new_tokens: int | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        """Extend a session with the full new buffer (only the delta prefills)."""
        payload: dict = {"buffer": buffer}
        if max_new_tokens is not None:
            payload["max_new_tokens"] = max_new_tokens
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request(
            "POST", f"/v1/sessions/{session_id}/extend", payload, headers=headers
        )

    def session_close(self, session_id: str) -> dict:
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> dict:
        """Full observability snapshot from ``/v1/metrics``."""
        return self._request("GET", "/v1/metrics")

    def telemetry(self) -> dict:
        """Telemetry drain from ``/v1/telemetry`` (spans removed on read)."""
        return self._request("GET", "/v1/telemetry")

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition from ``/v1/metrics?format=prometheus``."""
        url = self.base_url + "/v1/metrics?format=prometheus"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as error:
            raise ServingError(f"cannot reach service at {url}: {error}") from error
