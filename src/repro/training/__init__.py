"""Training loops: pre-training and fine-tuning."""

from repro.training.finetune import encode_samples, finetune, validation_bleu
from repro.training.pretrain import continue_pretraining, pretrain
from repro.training.trainer import (
    TrainingHistory,
    iterate_batches,
    pad_sequences,
    run_epoch,
)

__all__ = [
    "encode_samples",
    "finetune",
    "validation_bleu",
    "continue_pretraining",
    "pretrain",
    "TrainingHistory",
    "iterate_batches",
    "pad_sequences",
    "run_epoch",
]
