"""Pre-training loop.

Mirrors the paper's recipe at laptop scale: files packed into fixed context
windows with a separator token, effective batch size 32, learning rate 5e-5
scaled up for the tiny models, and a *linear* decreasing schedule.  The
paper trains 9 epochs on 16 A100s; epochs are a parameter here.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.corpus import Corpus
from repro.dataset.packing import next_token_targets, pack_documents
from repro.model.lm import WisdomModel
from repro.nn.optim import Adam, LinearSchedule
from repro.nn.transformer import DecoderLM
from repro.obs import NULL_TRACER, Observability
from repro.obs.runlog import RunLog
from repro.tokenizer.bpe import BpeTokenizer
from repro.training.trainer import TrainingHistory, run_epoch


def pretrain(
    network: DecoderLM,
    corpus: Corpus,
    tokenizer: BpeTokenizer,
    epochs: int = 3,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    seed: int = 0,
    max_batches_per_epoch: int | None = None,
    obs: Observability | None = None,
    runlog: RunLog | None = None,
) -> TrainingHistory:
    """Pre-train ``network`` on a packed corpus; returns the loss history.

    ``max_batches_per_epoch`` caps compute for large corpora (a uniformly
    random subset of windows is seen each epoch).  ``obs`` (optional)
    collects per-step timings and wraps each epoch in a
    ``training.epoch`` span; ``runlog`` (optional) appends per-step and
    per-epoch JSONL records for ``repro obs --runlog``.
    """
    window = network.config.n_positions
    rows = pack_documents(corpus, tokenizer, window)
    targets = next_token_targets(rows, pad_id=tokenizer.pad_id)
    rng = np.random.default_rng(seed)
    optimizer = Adam(network.parameters(), learning_rate=learning_rate)
    steps_per_epoch = (rows.shape[0] + batch_size - 1) // batch_size
    if max_batches_per_epoch is not None:
        steps_per_epoch = min(steps_per_epoch, max_batches_per_epoch)
    schedule = LinearSchedule(
        peak_lr=learning_rate,
        total_steps=max(1, steps_per_epoch * epochs),
        warmup_steps=min(20, steps_per_epoch),
        final_fraction=0.1,
    )
    history = TrainingHistory()
    tracer = obs.tracer if obs is not None else None
    step = 0
    for epoch in range(epochs):
        if max_batches_per_epoch is not None and rows.shape[0] > max_batches_per_epoch * batch_size:
            chosen = rng.choice(rows.shape[0], size=max_batches_per_epoch * batch_size, replace=False)
            epoch_rows, epoch_targets = rows[chosen], targets[chosen]
        else:
            epoch_rows, epoch_targets = rows, targets
        with (tracer or NULL_TRACER).span(
            "training.epoch", epoch=epoch, rows=int(epoch_rows.shape[0])
        ):
            mean_loss, steps = run_epoch(
                network,
                optimizer,
                epoch_rows,
                epoch_targets,
                batch_size,
                rng,
                schedule=schedule,
                step_offset=step,
                history=history,
                obs=obs,
                runlog=runlog,
            )
        if runlog is not None:
            runlog.log_epoch(epoch, mean_loss, steps=steps)
        step += steps
    return history


def continue_pretraining(
    model: WisdomModel,
    corpus: Corpus,
    epochs: int = 3,
    batch_size: int = 16,
    learning_rate: float = 5e-4,
    seed: int = 0,
    max_batches_per_epoch: int | None = None,
    obs: Observability | None = None,
    runlog: RunLog | None = None,
) -> TrainingHistory:
    """Extend an existing model's pretraining with new data.

    This is how Wisdom-Ansible-Multi / Wisdom-Yaml-Multi are built: "was
    initialized with the weights of CodeGen-Multi and we extended the
    pre-training using Ansible YAML [and generic YAML]".
    """
    return pretrain(
        model.network,
        corpus,
        model.tokenizer,
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=learning_rate,
        seed=seed,
        max_batches_per_epoch=max_batches_per_epoch,
        obs=obs if obs is not None else model.obs,
        runlog=runlog,
    )
