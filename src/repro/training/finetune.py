"""Fine-tuning loop for the Ansible-YAML generation task.

The paper's recipe: 8 epochs over the Galaxy samples, effective batch size
32, lr 5e-5 (scaled here) with a *cosine* decreasing schedule, best
checkpoint selected by BLEU on the validation set.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dataset.prompt import FinetuneSample, prediction_snippet
from repro.eval.truncation import truncate_generation
from repro.metrics.bleu import sentence_bleu
from repro.model.checkpoints import restore_weights, snapshot_weights
from repro.model.lm import WisdomModel
from repro.nn.optim import Adam, CosineSchedule, clip_grad_norm
from repro.obs import NULL_TRACER, Observability
from repro.obs.runlog import RunLog
from repro.training.trainer import TrainingHistory, pad_sequences


def encode_samples(samples: list[FinetuneSample], model: WisdomModel) -> list[list[int]]:
    """Tokenize each sample's training text, appending end-of-text."""
    tokenizer = model.tokenizer
    eot = tokenizer.end_of_text_id
    return [tokenizer.encode(sample.training_text, allow_special=False) + [eot] for sample in samples]


def validation_bleu(model: WisdomModel, samples: list[FinetuneSample], max_samples: int = 16, max_new_tokens: int = 96) -> float:
    """Mean sentence BLEU of greedy completions on validation samples."""
    chosen = samples[:max_samples]
    if not chosen:
        return 0.0
    total = 0.0
    for sample in chosen:
        body = model.complete(sample.input_text, max_new_tokens=max_new_tokens)
        body = truncate_generation(body, sample.indent, sample.generation_type)
        predicted = prediction_snippet(sample, body)
        total += sentence_bleu(sample.reference_snippet, predicted)
    return total / len(chosen)


def finetune(
    model: WisdomModel,
    train_samples: list[FinetuneSample],
    validation_samples: list[FinetuneSample] | None = None,
    epochs: int = 8,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    seed: int = 0,
    select_best_by_bleu: bool = True,
    validation_subset: int = 16,
    obs: Observability | None = None,
    runlog: RunLog | None = None,
) -> TrainingHistory:
    """Fine-tune in place; restores the best-validation-BLEU checkpoint.

    Samples are bucketed by length before padding so batches stay dense.
    ``obs`` (optional, falls back to the model's attached Observability)
    records per-step timings plus the ``training.validation_s`` histogram
    around each validation-BLEU evaluation; the ``training.grad_norm``
    and ``training.learning_rate`` gauges track the latest step.
    ``runlog`` (optional) appends per-step / per-epoch / per-validation
    JSONL records for ``repro obs --runlog``.
    """
    if obs is None:
        obs = model.obs
    if not train_samples:
        raise ValueError("no training samples")
    window = model.config.n_positions
    encoded = encode_samples(train_samples, model)
    # Length-bucketed padding: sort, then batch contiguously.
    encoded.sort(key=len)
    batches: list[tuple[np.ndarray, np.ndarray]] = []
    for start in range(0, len(encoded), batch_size):
        chunk = encoded[start:start + batch_size]
        batches.append(pad_sequences(chunk, model.tokenizer.pad_id, window))

    rng = np.random.default_rng(seed)
    optimizer = Adam(model.network.parameters(), learning_rate=learning_rate)
    schedule = CosineSchedule(
        peak_lr=learning_rate,
        total_steps=max(1, len(batches) * epochs),
        warmup_steps=min(10, len(batches)),
        final_fraction=0.05,
    )
    if obs is not None:
        step_histogram = obs.metrics.histogram("training.step_s")
        step_counter = obs.metrics.counter("training.steps")
        token_counter = obs.metrics.counter("training.tokens")
        throughput_gauge = obs.metrics.gauge("training.tokens_per_s")
        grad_norm_gauge = obs.metrics.gauge("training.grad_norm")
        lr_gauge = obs.metrics.gauge("training.learning_rate")
        validation_histogram = obs.metrics.histogram("training.validation_s")
    observing = obs is not None or runlog is not None
    tracer = obs.tracer if obs is not None else NULL_TRACER
    history = TrainingHistory()
    best_bleu = -1.0
    best_weights = None
    step = 0
    for epoch in range(epochs):
        order = rng.permutation(len(batches))
        epoch_losses = []
        with tracer.span("training.epoch", epoch=epoch, batches=len(batches)):
            for batch_index in order:
                ids, targets = batches[batch_index]
                step_started = time.perf_counter() if observing else 0.0
                model.network.zero_grad()
                loss = model.network.loss_and_backward(ids, targets)
                grad_norm = clip_grad_norm(model.network.parameters(), 1.0)
                learning_rate = schedule.lr_at(step)
                optimizer.step(learning_rate)
                if observing:
                    elapsed = time.perf_counter() - step_started
                    if obs is not None:
                        step_histogram.observe(elapsed)
                        step_counter.inc()
                        token_counter.inc(int(ids.size))
                        grad_norm_gauge.set(grad_norm)
                        lr_gauge.set(learning_rate)
                        if elapsed > 0:
                            throughput_gauge.set(ids.size / elapsed)
                    if runlog is not None:
                        runlog.log_step(
                            step,
                            loss,
                            grad_norm=grad_norm,
                            learning_rate=learning_rate,
                            tokens=int(ids.size),
                            step_s=elapsed,
                        )
                history.step_losses.append(loss)
                epoch_losses.append(loss)
                step += 1
        mean_epoch_loss = float(np.mean(epoch_losses))
        history.epoch_losses.append(mean_epoch_loss)
        if runlog is not None:
            runlog.log_epoch(epoch, mean_epoch_loss, steps=len(batches))
        if select_best_by_bleu and validation_samples:
            validation_started = time.perf_counter()
            with tracer.span("training.validation", epoch=epoch):
                bleu = validation_bleu(model, validation_samples, max_samples=validation_subset)
            if obs is not None:
                validation_histogram.observe(time.perf_counter() - validation_started)
            if runlog is not None:
                runlog.log_validation(epoch, bleu=bleu)
            history.validation_losses.append(-bleu)
            if bleu > best_bleu:
                best_bleu = bleu
                best_weights = snapshot_weights(model.network)
    if best_weights is not None:
        restore_weights(model.network, best_weights)
    return history


__all__ = ["finetune", "validation_bleu", "encode_samples"]
