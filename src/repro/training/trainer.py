"""Shared training-loop machinery: batching, history, the step loop."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.transformer import DecoderLM
from repro.obs import Observability
from repro.obs.runlog import RunLog


@dataclass
class TrainingHistory:
    """Losses and learning rates recorded during a run."""

    step_losses: list[float] = field(default_factory=list)
    epoch_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    def improved(self) -> bool:
        """Did the last epoch improve on the first?"""
        return len(self.epoch_losses) >= 2 and self.epoch_losses[-1] < self.epoch_losses[0]


def iterate_batches(rows: np.ndarray, targets: np.ndarray, batch_size: int, rng: np.random.Generator):
    """Yield shuffled (ids, targets) batches for one epoch."""
    order = rng.permutation(rows.shape[0])
    for start in range(0, rows.shape[0], batch_size):
        chosen = order[start:start + batch_size]
        yield rows[chosen], targets[chosen]


def run_epoch(
    model: DecoderLM,
    optimizer: Adam,
    rows: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
    schedule=None,
    step_offset: int = 0,
    max_grad_norm: float = 1.0,
    history: TrainingHistory | None = None,
    obs: Observability | None = None,
    runlog: RunLog | None = None,
) -> tuple[float, int]:
    """Train one epoch; returns (mean loss, steps executed).

    When ``obs`` is given, each optimizer step feeds the
    ``training.step_s`` histogram and the ``training.steps`` /
    ``training.tokens`` counters; the ``training.tokens_per_s``,
    ``training.grad_norm`` and ``training.learning_rate`` gauges track
    the most recent step — the same per-step facts a ``runlog`` records,
    so ``/v1/metrics`` and the run log agree on what a training step did.
    ``runlog`` (optional) appends one JSONL record per step.
    """
    if obs is not None:
        step_histogram = obs.metrics.histogram("training.step_s")
        step_counter = obs.metrics.counter("training.steps")
        token_counter = obs.metrics.counter("training.tokens")
        throughput_gauge = obs.metrics.gauge("training.tokens_per_s")
        grad_norm_gauge = obs.metrics.gauge("training.grad_norm")
        lr_gauge = obs.metrics.gauge("training.learning_rate")
    observing = obs is not None or runlog is not None
    losses: list[float] = []
    step = step_offset
    for batch_ids, batch_targets in iterate_batches(rows, targets, batch_size, rng):
        step_started = time.perf_counter() if observing else 0.0
        model.zero_grad()
        loss = model.loss_and_backward(batch_ids, batch_targets)
        grad_norm = clip_grad_norm(model.parameters(), max_grad_norm)
        learning_rate = schedule.lr_at(step) if schedule is not None else None
        optimizer.step(learning_rate)
        if observing:
            elapsed = time.perf_counter() - step_started
            tokens = int(batch_ids.size)
            if obs is not None:
                step_histogram.observe(elapsed)
                step_counter.inc()
                token_counter.inc(tokens)
                grad_norm_gauge.set(grad_norm)
                if learning_rate is not None:
                    lr_gauge.set(learning_rate)
                if elapsed > 0:
                    throughput_gauge.set(tokens / elapsed)
            if runlog is not None:
                runlog.log_step(
                    step,
                    loss,
                    grad_norm=grad_norm,
                    learning_rate=learning_rate,
                    tokens=tokens,
                    step_s=elapsed,
                )
        losses.append(loss)
        if history is not None:
            history.step_losses.append(loss)
            if learning_rate is not None:
                history.learning_rates.append(learning_rate)
        step += 1
    mean_loss = float(np.mean(losses)) if losses else float("nan")
    if history is not None:
        history.epoch_losses.append(mean_loss)
    return mean_loss, step - step_offset


def pad_sequences(sequences: list[list[int]], pad_id: int, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Left-truncate to ``window`` and right-pad into (ids, targets).

    Targets are the ids shifted left by one; pad positions (and the final
    position) are ignored via index -1.
    """
    clipped = [sequence[-window:] if len(sequence) > window else sequence for sequence in sequences]
    length = max(len(sequence) for sequence in clipped)
    ids = np.full((len(clipped), length), pad_id, dtype=np.int64)
    for row, sequence in enumerate(clipped):
        ids[row, : len(sequence)] = sequence
    targets = np.roll(ids, -1, axis=1)
    targets[:, -1] = -1
    targets = np.where(targets == pad_id, -1, targets)
    return ids, targets
