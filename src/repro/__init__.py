"""repro - reproduction of the Ansible Wisdom system (DAC 2023).

"Automated Code generation for Information Technology Tasks in YAML through
Large Language Models" - a natural-language to Ansible-YAML code generation
system, rebuilt from scratch: YAML engine, Ansible data model and schema,
dataset pipeline, BPE tokenizer, numpy transformer, training loops, the two
novel metrics (Ansible Aware / Schema Correct), baselines, evaluation
harness, and a serving layer.

Quickstart::

    from repro import quickstart_model
    model, dataset = quickstart_model(seed=7)
    print(model.complete("- name: Install nginx\\n"))

Subpackages:

* :mod:`repro.yamlio` - YAML engine
* :mod:`repro.ansible` - Ansible data model, module catalog, schema
* :mod:`repro.dataset` - corpus synthesis and fine-tuning pipeline
* :mod:`repro.tokenizer` - byte-level BPE
* :mod:`repro.nn` / :mod:`repro.model` - transformer LM
* :mod:`repro.training` - pre-training and fine-tuning loops
* :mod:`repro.metrics` - EM / BLEU / Ansible Aware / Schema Correct
* :mod:`repro.eval` - evaluation harness
* :mod:`repro.baselines` - retrieval, n-gram, Codex simulator
* :mod:`repro.engine` - continuous-batching inference engine
* :mod:`repro.serving` - REST service and editor-plugin simulation
"""

__version__ = "1.0.0"


def quickstart_model(seed: int = 7, galaxy_scale: float = 0.002, finetune_epochs: int = 14):
    """Train a small Wisdom model end to end (pretrain + finetune).

    Returns ``(model, finetune_dataset)``.  Takes a few minutes on one CPU
    core; examples/quickstart.py narrates each stage.
    """
    from repro.dataset import build_finetune_dataset, build_galaxy_corpus, split_corpus
    from repro.model import CARDS_BY_NAME, build_default_corpora, build_model, build_tokenizer
    from repro.training import finetune
    from repro.utils.rng import SeededRng

    rng = SeededRng(seed)
    corpora = build_default_corpora(rng.child("pretrain"), scale=0.0003)
    tokenizer = build_tokenizer(corpora)
    model = build_model(
        CARDS_BY_NAME["Wisdom-Ansible"],
        corpora,
        tokenizer,
        seed=seed,
        epochs=10,
        learning_rate=2e-3,
        max_batches_per_epoch=40,
    )
    galaxy = build_galaxy_corpus(rng.child("galaxy"), scale=galaxy_scale)
    splits = split_corpus(galaxy, rng.child("split"))
    dataset = build_finetune_dataset(splits.train, splits.validation, splits.test)
    finetune(model, dataset.train, dataset.validation, epochs=finetune_epochs, learning_rate=3e-3)
    return model, dataset
