"""Token-level n-gram language model baseline with backoff.

A classical comparator for the transformer: learns local continuation
statistics over BPE tokens and generates greedily with stupid-backoff from
order ``n`` down to unigrams.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.tokenizer.bpe import BpeTokenizer


class NgramLM:
    """Greedy n-gram generator over tokenizer ids."""

    def __init__(self, tokenizer: BpeTokenizer, order: int = 4, name: str = "ngram"):
        if order < 2:
            raise ValueError(f"order must be >= 2, got {order}")
        self.name = name
        self.tokenizer = tokenizer
        self.order = order
        self._tables: list[defaultdict[tuple[int, ...], Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._unigrams: Counter = Counter()

    def fit(self, texts: list[str]) -> "NgramLM":
        """Count n-grams over the training texts."""
        eot = self.tokenizer.end_of_text_id
        for text in texts:
            ids = self.tokenizer.encode(text, allow_special=False) + [eot]
            self._unigrams.update(ids)
            for position, token in enumerate(ids):
                for n in range(1, self.order):
                    if position >= n:
                        context = tuple(ids[position - n:position])
                        self._tables[n][context][token] += 1
        return self

    @staticmethod
    def _argmax(counts: Counter) -> int:
        # Counter.most_common breaks count ties by insertion order, which
        # depends on corpus iteration order and does not survive pickling
        # round-trips; break ties by (count desc, token id asc) instead so
        # every process/replica agrees on the same token.
        return min(counts.items(), key=lambda item: (-item[1], item[0]))[0]

    def next_token(self, context_ids: list[int]) -> int | None:
        """Most likely next token under stupid backoff; None when untrained.

        Deterministic: count ties break toward the smallest token id.
        """
        for n in range(self.order - 1, 0, -1):
            if len(context_ids) >= n:
                counts = self._tables[n].get(tuple(context_ids[-n:]))
                if counts:
                    return self._argmax(counts)
        if self._unigrams:
            return self._argmax(self._unigrams)
        return None

    def complete(self, prompt: str, max_new_tokens: int = 96) -> str:
        """TextCompleter interface: greedy continuation of the prompt."""
        ids = self.tokenizer.encode(prompt, allow_special=False)
        eot = self.tokenizer.end_of_text_id
        generated: list[int] = []
        for _ in range(max_new_tokens):
            token = self.next_token(ids + generated)
            if token is None or token == eot:
                break
            generated.append(token)
        return self.tokenizer.decode(generated)
