"""Baselines: retrieval, n-gram LM, and the Codex-Davinci-002 simulator."""

from repro.baselines.codex_sim import CodexSimulator, RECALL_THRESHOLD
from repro.baselines.ngram import NgramLM
from repro.baselines.retrieval import RetrievalBaseline, jaccard

__all__ = [
    "CodexSimulator",
    "RECALL_THRESHOLD",
    "NgramLM",
    "RetrievalBaseline",
    "jaccard",
]
