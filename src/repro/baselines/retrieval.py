"""Nearest-neighbour retrieval baseline.

Given a prompt, return the stored completion whose *prompt* is most similar
(token-level Jaccard over the tail of the prompt).  A strong baseline for
templated domains and the mechanism behind the Codex simulator's
"memorized the training set" behaviour.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")


def _fingerprint(text: str, tail_lines: int = 12) -> frozenset[str]:
    """Bag of word tokens over the last ``tail_lines`` lines of the text."""
    lines = text.rstrip("\n").split("\n")
    tail = "\n".join(lines[-tail_lines:])
    return frozenset(token.lower() for token in _TOKEN_RE.findall(tail))


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard similarity of two token sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


@dataclass(frozen=True)
class _Entry:
    fingerprint: frozenset[str]
    completion: str


class RetrievalBaseline:
    """Stores (prompt, completion) pairs; completes by nearest neighbour."""

    def __init__(self, name: str = "retrieval"):
        self.name = name
        self._entries: list[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def index(self, prompt: str, completion: str) -> None:
        """Add one pair to the store."""
        self._entries.append(_Entry(_fingerprint(prompt), completion))

    def index_samples(self, samples) -> None:
        """Index FinetuneSamples: prompt = input_text, completion = target."""
        for sample in samples:
            self.index(sample.input_text, sample.target_text)

    def nearest(self, prompt: str) -> tuple[float, str]:
        """(similarity, completion) of the best match; ("", 0.0) when empty."""
        if not self._entries:
            return 0.0, ""
        query = _fingerprint(prompt)
        best_score = -1.0
        best_completion = ""
        for entry in self._entries:
            score = jaccard(query, entry.fingerprint)
            if score > best_score:
                best_score = score
                best_completion = entry.completion
        return best_score, best_completion

    def complete(self, prompt: str, max_new_tokens: int = 96) -> str:
        """TextCompleter interface: return the nearest stored completion."""
        del max_new_tokens
        _, completion = self.nearest(prompt)
        return completion
