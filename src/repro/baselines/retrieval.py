"""Nearest-neighbour retrieval baseline.

Given a prompt, return the stored completion whose *prompt* is most similar
(token-level Jaccard over the tail of the prompt).  A strong baseline for
templated domains and the mechanism behind the Codex simulator's
"memorized the training set" behaviour.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")


def _fingerprint(text: str, tail_lines: int = 12) -> frozenset[str]:
    """Bag of word tokens over the last ``tail_lines`` lines of the text."""
    lines = text.rstrip("\n").split("\n")
    tail = "\n".join(lines[-tail_lines:])
    return frozenset(token.lower() for token in _TOKEN_RE.findall(tail))


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard similarity of two token sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


@dataclass(frozen=True)
class _Entry:
    fingerprint: frozenset[str]
    completion: str


class RetrievalBaseline:
    """Stores (prompt, completion) pairs; completes by nearest neighbour."""

    def __init__(self, name: str = "retrieval"):
        self.name = name
        self._entries: list[_Entry] = []
        # Inverted index: fingerprint token -> entry ids containing it, in
        # insertion order.  nearest() only scores entries sharing at least
        # one token with the query; everything else has empty intersection
        # and (for a non-empty query) a Jaccard of exactly 0.0, so it can
        # never beat a sharing entry.
        self._by_token: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def index(self, prompt: str, completion: str) -> None:
        """Add one pair to the store."""
        fingerprint = _fingerprint(prompt)
        entry_id = len(self._entries)
        self._entries.append(_Entry(fingerprint, completion))
        for token in fingerprint:
            self._by_token.setdefault(token, []).append(entry_id)

    def index_samples(self, samples) -> None:
        """Index FinetuneSamples: prompt = input_text, completion = target."""
        for sample in samples:
            self.index(sample.input_text, sample.target_text)

    def nearest(self, prompt: str) -> tuple[float, str]:
        """(similarity, completion) of the best match; ("", 0.0) when empty.

        Scores only entries sharing at least one fingerprint token with the
        query (via the inverted index); for a non-empty query every other
        entry scores exactly 0.0 and cannot win.  Ties break toward the
        earliest-indexed entry, identical to :meth:`nearest_scan`.
        """
        if not self._entries:
            return 0.0, ""
        query = _fingerprint(prompt)
        if not query:
            # Empty-fingerprint queries score 1.0 against empty-fingerprint
            # entries, which the token index cannot see: fall back.
            return self.nearest_scan(prompt)
        candidate_ids: set[int] = set()
        for token in query:
            candidate_ids.update(self._by_token.get(token, ()))
        if not candidate_ids:
            # All scores are 0.0; the scan would keep the first entry.
            return 0.0, self._entries[0].completion
        best_score = -1.0
        best_completion = ""
        for entry_id in sorted(candidate_ids):
            entry = self._entries[entry_id]
            score = jaccard(query, entry.fingerprint)
            if score > best_score:
                best_score = score
                best_completion = entry.completion
        return best_score, best_completion

    def nearest_scan(self, prompt: str) -> tuple[float, str]:
        """Reference brute-force scan over every entry (O(entries))."""
        if not self._entries:
            return 0.0, ""
        query = _fingerprint(prompt)
        best_score = -1.0
        best_completion = ""
        for entry in self._entries:
            score = jaccard(query, entry.fingerprint)
            if score > best_score:
                best_score = score
                best_completion = entry.completion
        return best_score, best_completion

    def complete(self, prompt: str, max_new_tokens: int = 96) -> str:
        """TextCompleter interface: return the nearest stored completion."""
        del max_new_tokens
        _, completion = self.nearest(prompt)
        return completion
