"""Codex-Davinci-002 simulator.

The paper evaluates OpenAI Codex (175B) few-shot and observes two things our
simulator must reproduce:

* strong few-shot quality — Schema Correct / BLEU comparable to the best
  CodeGen baselines, Ansible Aware clearly above them;
* "the exact match is the highest of all models tested, which indicates
  that Codex likely saw large portions of our Galaxy dataset" — i.e.
  training-set contamination.

The stand-in is a retrieval-over-web-scale-memory model: it is seeded with
a large Ansible corpus *including a contamination fraction of the Galaxy
data itself* (test split included, exactly the leak the paper suspects),
and completes by nearest-neighbour recall with an n-gram fallback for
prompts it has never seen.  No API access required, deterministic, and
byte-for-byte recall on contaminated prompts yields the high EM signature.
"""

from __future__ import annotations

from repro.baselines.ngram import NgramLM
from repro.baselines.retrieval import RetrievalBaseline
from repro.dataset.corpus import Corpus
from repro.dataset.finetune import extract_samples
from repro.dataset.prompt import FinetuneSample
from repro.tokenizer.bpe import BpeTokenizer
from repro.utils.rng import SeededRng

# Similarity below which the simulator falls back to n-gram continuation.
# High: only near-verbatim memory hits recall byte-exact completions.
RECALL_THRESHOLD = 0.8

# Fraction of the Galaxy data assumed to have leaked into the pretraining
# scrape of a web-scale model.  Calibrated so the simulator's Exact Match
# sits clearly above the few-shot baselines (the paper's observation)
# without dominating the fine-tuned models.
DEFAULT_CONTAMINATION = 0.06

# Probability that a confident memory hit is reproduced *verbatim*.  A real
# LM reconstructs from weights rather than quoting storage, so even
# memorized content degrades; below fidelity the simulator falls back to
# its n-gram reconstruction.  Deterministic per prompt (hash-based).
RECALL_FIDELITY = 0.6


class CodexSimulator:
    """A 175B-parameter model's *behaviour*, reproduced with memory."""

    name = "Codex-Davinci-002 (sim)"
    size_label = "175B"
    context_window_label = 2048

    def __init__(self, tokenizer: BpeTokenizer, name: str | None = None, recall_fidelity: float = RECALL_FIDELITY):
        if name:
            self.name = name
        self.recall_fidelity = recall_fidelity
        self._retrieval = RetrievalBaseline("codex-memory")
        self._fallback = NgramLM(tokenizer, order=5, name="codex-fallback")

    def fit(
        self,
        web_corpus: Corpus,
        galaxy_corpus: Corpus | None = None,
        contamination: float = DEFAULT_CONTAMINATION,
        rng: SeededRng | None = None,
    ) -> "CodexSimulator":
        """Build the simulator's memory.

        ``web_corpus`` is the public Ansible content it certainly saw;
        ``galaxy_corpus`` with ``contamination`` controls how much of the
        evaluation dataset leaked into its memory.
        """
        rng = rng or SeededRng(0)
        web_samples = extract_samples(web_corpus)
        self._retrieval.index_samples(web_samples)
        self._fallback.fit(web_corpus.texts())
        if galaxy_corpus is not None and contamination > 0.0:
            leaked = [
                document
                for document in galaxy_corpus
                if rng.bernoulli(contamination)
            ]
            leaked_corpus = Corpus("codex-leak", leaked)
            self._retrieval.index_samples(extract_samples(leaked_corpus))
            self._fallback.fit(leaked_corpus.texts())
        return self

    def fit_samples(self, samples: list[FinetuneSample]) -> "CodexSimulator":
        """Directly index pre-extracted samples (used in tests)."""
        self._retrieval.index_samples(samples)
        self._fallback.fit([sample.training_text for sample in samples])
        return self

    def _recalls_verbatim(self, prompt: str) -> bool:
        import hashlib

        digest = hashlib.sha1(prompt.encode("utf-8")).digest()
        return (digest[0] / 255.0) < self.recall_fidelity

    def complete(self, prompt: str, max_new_tokens: int = 96) -> str:
        """TextCompleter interface: recall when confident (and with
        imperfect fidelity), else n-gram reconstruction."""
        similarity, completion = self._retrieval.nearest(prompt)
        if similarity >= RECALL_THRESHOLD and completion and self._recalls_verbatim(prompt):
            return completion
        return self._fallback.complete(prompt, max_new_tokens=max_new_tokens)
