"""Vocabulary container for the byte-level BPE tokenizer.

Token ids are laid out as::

    [0, 256)                    the 256 single bytes
    [256, 256 + n_special)      special tokens (separator, EOT, pad)
    [256 + n_special, ...)      learned BPE merge tokens, in merge order

This layout makes the mapping stable: adding merges never renumbers bytes
or specials, so checkpoints trained with a smaller vocabulary remain
decodable.
"""

from __future__ import annotations

import json

from repro.errors import VocabularyError
from repro.tokenizer.special import SPECIAL_TOKENS

N_BYTES = 256


class Vocabulary:
    """Bidirectional token-bytes ↔ id mapping."""

    def __init__(self, merges: list[tuple[bytes, bytes]] | None = None, special_tokens: tuple[str, ...] = SPECIAL_TOKENS):
        self.special_tokens = tuple(special_tokens)
        self.merges: list[tuple[bytes, bytes]] = list(merges or [])
        self._token_bytes: list[bytes] = [bytes([i]) for i in range(N_BYTES)]
        self._token_bytes.extend(token.encode("utf-8") for token in self.special_tokens)
        self._special_ids = {
            token: N_BYTES + index for index, token in enumerate(self.special_tokens)
        }
        self._merge_ranks: dict[tuple[bytes, bytes], int] = {}
        for left, right in self.merges:
            self._register_merge(left, right)

    def _register_merge(self, left: bytes, right: bytes) -> int:
        token_id = len(self._token_bytes)
        self._token_bytes.append(left + right)
        self._merge_ranks[(left, right)] = len(self._merge_ranks)
        return token_id

    def add_merge(self, left: bytes, right: bytes) -> int:
        """Append a merge rule; returns the new token's id."""
        if (left, right) in self._merge_ranks:
            raise VocabularyError(f"duplicate merge {(left, right)!r}")
        self.merges.append((left, right))
        return self._register_merge(left, right)

    def __len__(self) -> int:
        return len(self._token_bytes)

    @property
    def size(self) -> int:
        return len(self._token_bytes)

    def merge_rank(self, pair: tuple[bytes, bytes]) -> int | None:
        """Rank of a merge pair (lower = applied earlier), None if absent."""
        return self._merge_ranks.get(pair)

    def id_of_merge(self, pair: tuple[bytes, bytes]) -> int:
        rank = self._merge_ranks[pair]
        return N_BYTES + len(self.special_tokens) + rank

    def special_id(self, token: str) -> int:
        if token not in self._special_ids:
            raise VocabularyError(f"unknown special token {token!r}")
        return self._special_ids[token]

    def bytes_of(self, token_id: int) -> bytes:
        if not 0 <= token_id < len(self._token_bytes):
            raise VocabularyError(f"token id {token_id} out of range (vocab size {len(self._token_bytes)})")
        return self._token_bytes[token_id]

    def is_special(self, token_id: int) -> bool:
        return N_BYTES <= token_id < N_BYTES + len(self.special_tokens)

    def to_json(self) -> str:
        """Serialize merges and specials (bytes hex-encoded)."""
        return json.dumps(
            {
                "special_tokens": list(self.special_tokens),
                "merges": [[left.hex(), right.hex()] for left, right in self.merges],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "Vocabulary":
        data = json.loads(payload)
        merges = [(bytes.fromhex(left), bytes.fromhex(right)) for left, right in data["merges"]]
        return cls(merges=merges, special_tokens=tuple(data["special_tokens"]))
