"""Byte-level BPE tokenizer (the CodeGen tokenizer's role in the paper)."""

from repro.tokenizer.bpe import BpeTokenizer, pretokenize
from repro.tokenizer.special import END_OF_TEXT, PAD, SEPARATOR, SPECIAL_TOKENS
from repro.tokenizer.vocab import N_BYTES, Vocabulary

__all__ = [
    "BpeTokenizer",
    "pretokenize",
    "END_OF_TEXT",
    "PAD",
    "SEPARATOR",
    "SPECIAL_TOKENS",
    "N_BYTES",
    "Vocabulary",
]
