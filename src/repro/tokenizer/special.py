"""Special tokens shared by the tokenizer, packing, and the model.

The paper's pretraining pipeline "packed [YAML files] to fill up a context
window of 1024, and ... used a special separator token to separate the
files"; :data:`SEPARATOR` is that token.  :data:`END_OF_TEXT` terminates a
generation (the fine-tuning samples end with it, so the model learns to
stop), and :data:`PAD` fills ragged batches.
"""

from __future__ import annotations

SEPARATOR = "<|sep|>"
END_OF_TEXT = "<|endoftext|>"
PAD = "<|pad|>"

SPECIAL_TOKENS: tuple[str, ...] = (SEPARATOR, END_OF_TEXT, PAD)
