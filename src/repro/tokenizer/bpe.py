"""Byte-level byte-pair-encoding tokenizer, trained from the corpus.

Plays the role the CodeGen/GPT-2 tokenizer plays in the paper.  Byte-level
means there is no out-of-vocabulary input: every byte is a base token and
merges only ever *compress* the sequence.  The pre-tokenizer keeps runs of
spaces together, which matters for YAML where indentation is structure —
two-space and four-space indents become single tokens early in training.
"""

from __future__ import annotations

import re
from collections import Counter

from repro.errors import TokenizerError
from repro.faults.inject import fire
from repro.tokenizer.special import END_OF_TEXT, PAD, SEPARATOR, SPECIAL_TOKENS
from repro.tokenizer.vocab import N_BYTES, Vocabulary

# Chunks: newline runs, space runs, identifier-ish words, digit runs, other
# punctuation runs.  Merges never cross chunk boundaries (as in GPT-2).
_PRETOKEN_RE = re.compile(rb"\n+|[ ]+|[A-Za-z_]+|[0-9]+|[^\sA-Za-z0-9]+|[^\n ]+")


def pretokenize(data: bytes) -> list[bytes]:
    """Split raw bytes into merge-isolated chunks."""
    return _PRETOKEN_RE.findall(data)


class BpeTokenizer:
    """Encoder/decoder over a :class:`Vocabulary`.

    Build one either by :meth:`train`-ing on corpus texts or from a
    serialized vocabulary via :meth:`from_json`.
    """

    def __init__(self, vocabulary: Vocabulary):
        self.vocabulary = vocabulary
        self._cache: dict[bytes, list[int]] = {}
        self._special_pattern = re.compile(
            "(" + "|".join(re.escape(token) for token in vocabulary.special_tokens) + ")"
        )
        self._byte_to_id = {bytes([i]): i for i in range(N_BYTES)}
        self._bytes_to_id: dict[bytes, int] = dict(self._byte_to_id)
        for pair in vocabulary.merges:
            merged = pair[0] + pair[1]
            self._bytes_to_id[merged] = vocabulary.id_of_merge(pair)

    # -- training ----------------------------------------------------------

    @classmethod
    def train(cls, texts: list[str], vocab_size: int, special_tokens: tuple[str, ...] = SPECIAL_TOKENS) -> "BpeTokenizer":
        """Learn a BPE vocabulary of ``vocab_size`` tokens from ``texts``.

        ``vocab_size`` counts bytes + specials + merges; it must exceed
        ``256 + len(special_tokens)``.
        """
        floor = N_BYTES + len(special_tokens)
        if vocab_size <= floor:
            raise TokenizerError(f"vocab_size must exceed {floor}, got {vocab_size}")
        chunk_counts: Counter[bytes] = Counter()
        for text in texts:
            chunk_counts.update(pretokenize(text.encode("utf-8")))

        # Each distinct chunk is a sequence of single-byte symbols.
        words: list[list[bytes]] = []
        counts: list[int] = []
        for chunk, count in chunk_counts.items():
            words.append([bytes([b]) for b in chunk])
            counts.append(count)

        vocabulary = Vocabulary(special_tokens=special_tokens)
        n_merges = vocab_size - floor
        pair_counts: Counter[tuple[bytes, bytes]] = Counter()
        pair_to_words: dict[tuple[bytes, bytes], set[int]] = {}
        for word_index, word in enumerate(words):
            count = counts[word_index]
            for pair in zip(word, word[1:]):
                pair_counts[pair] += count
                pair_to_words.setdefault(pair, set()).add(word_index)

        for _ in range(n_merges):
            if not pair_counts:
                break
            best_pair, best_count = max(pair_counts.items(), key=lambda item: (item[1], item[0]))
            if best_count < 2:
                break
            vocabulary.add_merge(*best_pair)
            merged = best_pair[0] + best_pair[1]
            affected = pair_to_words.pop(best_pair, set())
            pair_counts.pop(best_pair, None)
            for word_index in affected:
                word = words[word_index]
                count = counts[word_index]
                # Remove old pair contributions of this word.
                for pair in zip(word, word[1:]):
                    if pair in pair_counts:
                        pair_counts[pair] -= count
                        if pair_counts[pair] <= 0:
                            del pair_counts[pair]
                        members = pair_to_words.get(pair)
                        if members is not None:
                            members.discard(word_index)
                # Apply the merge inside the word.
                new_word: list[bytes] = []
                position = 0
                while position < len(word):
                    if (
                        position + 1 < len(word)
                        and word[position] == best_pair[0]
                        and word[position + 1] == best_pair[1]
                    ):
                        new_word.append(merged)
                        position += 2
                    else:
                        new_word.append(word[position])
                        position += 1
                words[word_index] = new_word
                # Re-add pair contributions.
                for pair in zip(new_word, new_word[1:]):
                    pair_counts[pair] += count
                    pair_to_words.setdefault(pair, set()).add(word_index)
        return cls(vocabulary)

    # -- encoding ----------------------------------------------------------

    def _encode_chunk(self, chunk: bytes) -> list[int]:
        cached = self._cache.get(chunk)
        if cached is not None:
            return cached
        symbols = [bytes([b]) for b in chunk]
        while len(symbols) > 1:
            ranked = [
                (rank, index)
                for index, pair in enumerate(zip(symbols, symbols[1:]))
                if (rank := self.vocabulary.merge_rank(pair)) is not None
            ]
            if not ranked:
                break
            best_rank, _ = min(ranked)
            # Apply all occurrences of the best-ranked merge, left to right.
            target_pair = self.vocabulary.merges[best_rank]
            new_symbols: list[bytes] = []
            position = 0
            while position < len(symbols):
                if (
                    position + 1 < len(symbols)
                    and symbols[position] == target_pair[0]
                    and symbols[position + 1] == target_pair[1]
                ):
                    new_symbols.append(target_pair[0] + target_pair[1])
                    position += 2
                else:
                    new_symbols.append(symbols[position])
                    position += 1
            symbols = new_symbols
        ids = [self._bytes_to_id[symbol] for symbol in symbols]
        if len(self._cache) < 100_000:
            self._cache[chunk] = ids
        return ids

    def encode(self, text: str, allow_special: bool = True) -> list[int]:
        """Encode text to token ids.

        With ``allow_special`` (default), occurrences of special-token
        strings map to their reserved ids; otherwise they are encoded as
        plain bytes.
        """
        fire("tokenizer.encode")
        ids: list[int] = []
        if allow_special:
            pieces = self._special_pattern.split(text)
        else:
            pieces = [text]
        for piece in pieces:
            if not piece:
                continue
            if allow_special and piece in self.vocabulary.special_tokens:
                ids.append(self.vocabulary.special_id(piece))
                continue
            for chunk in pretokenize(piece.encode("utf-8")):
                ids.extend(self._encode_chunk(chunk))
        return ids

    def decode(self, ids: list[int], skip_special: bool = True) -> str:
        """Decode token ids back to text."""
        pieces: list[bytes] = []
        for token_id in ids:
            if skip_special and self.vocabulary.is_special(token_id):
                continue
            pieces.append(self.vocabulary.bytes_of(token_id))
        return b"".join(pieces).decode("utf-8", errors="replace")

    # -- convenience ----------------------------------------------------------

    @property
    def vocab_size(self) -> int:
        return self.vocabulary.size

    @property
    def separator_id(self) -> int:
        return self.vocabulary.special_id(SEPARATOR)

    @property
    def end_of_text_id(self) -> int:
        return self.vocabulary.special_id(END_OF_TEXT)

    @property
    def pad_id(self) -> int:
        return self.vocabulary.special_id(PAD)

    def to_json(self) -> str:
        return self.vocabulary.to_json()

    @classmethod
    def from_json(cls, payload: str) -> "BpeTokenizer":
        return cls(Vocabulary.from_json(payload))
