"""Ansible keyword tables.

The "Ansible Aware" metric and the schema validator both need to know which
mapping keys are *keywords* (play/task/block directives interpreted by the
Ansible engine) versus which single remaining key names the *module* to run.
These tables mirror ansible-core's playbook object attributes.
"""

from __future__ import annotations

# Keywords valid on a play (top-level playbook entry).
PLAY_KEYWORDS: frozenset[str] = frozenset(
    {
        "any_errors_fatal",
        "become",
        "become_exe",
        "become_flags",
        "become_method",
        "become_user",
        "check_mode",
        "collections",
        "connection",
        "debugger",
        "diff",
        "environment",
        "fact_path",
        "force_handlers",
        "gather_facts",
        "gather_subset",
        "gather_timeout",
        "handlers",
        "hosts",
        "ignore_errors",
        "ignore_unreachable",
        "max_fail_percentage",
        "module_defaults",
        "name",
        "no_log",
        "order",
        "port",
        "post_tasks",
        "pre_tasks",
        "remote_user",
        "roles",
        "run_once",
        "serial",
        "strategy",
        "tags",
        "tasks",
        "throttle",
        "timeout",
        "vars",
        "vars_files",
        "vars_prompt",
    }
)

# Keywords valid on a task, alongside the single module key.
TASK_KEYWORDS: frozenset[str] = frozenset(
    {
        "action",
        "any_errors_fatal",
        "args",
        "async",
        "become",
        "become_exe",
        "become_flags",
        "become_method",
        "become_user",
        "changed_when",
        "check_mode",
        "collections",
        "connection",
        "debugger",
        "delay",
        "delegate_facts",
        "delegate_to",
        "diff",
        "environment",
        "failed_when",
        "ignore_errors",
        "ignore_unreachable",
        "listen",
        "local_action",
        "loop",
        "loop_control",
        "module_defaults",
        "name",
        "no_log",
        "notify",
        "poll",
        "port",
        "register",
        "remote_user",
        "retries",
        "run_once",
        "tags",
        "throttle",
        "timeout",
        "until",
        "vars",
        "when",
        "with_dict",
        "with_fileglob",
        "with_first_found",
        "with_items",
        "with_list",
        "with_nested",
        "with_sequence",
        "with_subelements",
        "with_together",
    }
)

# Keys that make a mapping a block rather than a task.
BLOCK_KEYS: frozenset[str] = frozenset({"block", "rescue", "always"})

# Keywords valid on a block (block/rescue/always plus shared task keywords).
BLOCK_KEYWORDS: frozenset[str] = BLOCK_KEYS | (
    TASK_KEYWORDS
    - {"action", "args", "local_action", "register", "async", "poll", "until", "retries", "delay", "loop", "loop_control", "with_dict", "with_fileglob", "with_first_found", "with_items", "with_list", "with_nested", "with_sequence", "with_subelements", "with_together", "listen", "notify", "changed_when", "failed_when"}
) | {"notify", "changed_when", "failed_when"}

# Play keys whose value must be a list of tasks.
PLAY_TASK_SECTIONS: tuple[str, ...] = ("tasks", "pre_tasks", "post_tasks", "handlers")

# `with_*` lookup loops (legacy loop syntax, still schema-valid).
LOOP_KEYWORDS: frozenset[str] = frozenset(
    key for key in TASK_KEYWORDS if key.startswith("with_")
) | {"loop"}


def is_play_keyword(key: str) -> bool:
    """True when ``key`` is a valid play-level directive."""
    return key in PLAY_KEYWORDS


def is_task_keyword(key: str) -> bool:
    """True when ``key`` is a valid task-level directive (not a module)."""
    return key in TASK_KEYWORDS


def looks_like_play(mapping: dict) -> bool:
    """Heuristic from the dataset pipeline: a mapping is a *play* when it
    carries the play-defining keys (``hosts`` or task sections with no
    module key)."""
    if not isinstance(mapping, dict):
        return False
    if "hosts" in mapping:
        return True
    return any(section in mapping for section in PLAY_TASK_SECTIONS) and not any(
        key not in PLAY_KEYWORDS for key in mapping
    )
