"""Near-equivalent module groups for the Ansible Aware metric.

The paper: "There are some modules that are almost equivalent, e.g.
command/shell, copy/template, package/apt, dnf, yum.  Since they accept many
of the same arguments and in some cases can be exchanged, such module
differences are given a partial key score which is averaged with the score
of their arguments."

Groups are defined over FQCNs; membership is checked after FQCN
normalization.
"""

from __future__ import annotations

EQUIVALENCE_GROUPS: tuple[frozenset[str], ...] = (
    frozenset({"ansible.builtin.command", "ansible.builtin.shell"}),
    frozenset({"ansible.builtin.copy", "ansible.builtin.template"}),
    frozenset(
        {
            "ansible.builtin.package",
            "ansible.builtin.apt",
            "ansible.builtin.dnf",
            "ansible.builtin.yum",
        }
    ),
    frozenset({"ansible.builtin.service", "ansible.builtin.systemd"}),
    frozenset({"ansible.builtin.include_tasks", "ansible.builtin.import_tasks"}),
    frozenset({"ansible.builtin.include_role", "ansible.builtin.import_role"}),
    frozenset({"ansible.builtin.seboolean", "ansible.posix.seboolean"}),
    frozenset({"ansible.builtin.timezone", "community.general.timezone"}),
    frozenset({"ansible.builtin.alternatives", "community.general.alternatives"}),
)

# Partial credit granted to the module *key* when two different modules fall
# in the same equivalence group (1.0 would mean identical).
PARTIAL_MODULE_CREDIT = 0.5

_GROUP_BY_MODULE: dict[str, frozenset[str]] = {}
for _group in EQUIVALENCE_GROUPS:
    for _member in _group:
        _GROUP_BY_MODULE[_member] = _group


def are_equivalent(module_a: str, module_b: str) -> bool:
    """True when two (FQCN-normalized) modules are near-equivalent."""
    if module_a == module_b:
        return True
    group = _GROUP_BY_MODULE.get(module_a)
    return group is not None and module_b in group


def module_key_score(module_a: str, module_b: str) -> float:
    """Score for comparing two module *names*: 1 exact, partial if
    equivalent, 0 otherwise."""
    if module_a == module_b:
        return 1.0
    if are_equivalent(module_a, module_b):
        return PARTIAL_MODULE_CREDIT
    return 0.0


def equivalence_group(module: str) -> frozenset[str]:
    """The group containing ``module`` (singleton set when ungrouped)."""
    return _GROUP_BY_MODULE.get(module, frozenset({module}))
