"""Ansible substrate: data model, module catalog, FQCN, k=v, schema.

This package encodes the domain knowledge the paper's system relies on:
what a playbook / play / task / block is, which mapping key names the
module, how legacy spellings normalize, and what the strict linter schema
accepts.
"""

from repro.ansible.equivalence import (
    EQUIVALENCE_GROUPS,
    are_equivalent,
    equivalence_group,
    module_key_score,
)
from repro.ansible.fqcn import is_fqcn, resolve_fqcn, short_name
from repro.ansible.keywords import (
    BLOCK_KEYS,
    PLAY_KEYWORDS,
    PLAY_TASK_SECTIONS,
    TASK_KEYWORDS,
    looks_like_play,
)
from repro.ansible.kv import RAW_PARAMS_KEY, looks_like_kv, parse_kv, render_kv
from repro.ansible.model import (
    Block,
    Play,
    Playbook,
    Task,
    TaskList,
    classify_snippet,
    parse_task_entry,
)
from repro.ansible.modules import (
    CATALOG,
    ModuleSpec,
    ParameterSpec,
    all_modules,
    categories,
    get_module,
    is_known_module,
    modules_in_category,
)
from repro.ansible.schema import (
    LENIENT,
    STRICT,
    Violation,
    is_schema_correct,
    validate,
    validate_task,
)

__all__ = [
    "EQUIVALENCE_GROUPS",
    "are_equivalent",
    "equivalence_group",
    "module_key_score",
    "is_fqcn",
    "resolve_fqcn",
    "short_name",
    "BLOCK_KEYS",
    "PLAY_KEYWORDS",
    "PLAY_TASK_SECTIONS",
    "TASK_KEYWORDS",
    "looks_like_play",
    "RAW_PARAMS_KEY",
    "looks_like_kv",
    "parse_kv",
    "render_kv",
    "Block",
    "Play",
    "Playbook",
    "Task",
    "TaskList",
    "classify_snippet",
    "parse_task_entry",
    "CATALOG",
    "ModuleSpec",
    "ParameterSpec",
    "all_modules",
    "categories",
    "get_module",
    "is_known_module",
    "modules_in_category",
    "LENIENT",
    "STRICT",
    "Violation",
    "is_schema_correct",
    "validate",
    "validate_task",
]
