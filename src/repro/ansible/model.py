"""Structured data model over parsed Ansible YAML.

The dataset pipeline, metrics and evaluation harness all reason about YAML
*values* (dicts/lists), but repeatedly need the same structural questions
answered: which key is the module, what is the task's name, is this list a
playbook or a bare task list, how many tasks does a play hold.  This module
centralizes those.

Canonical key order follows the paper's observation that "the usual key
order for a task is: name, module, keyword(s)"; :func:`Task.to_data`
re-serializes in that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ansible.fqcn import resolve_fqcn
from repro.ansible.keywords import (
    BLOCK_KEYS,
    PLAY_TASK_SECTIONS,
    TASK_KEYWORDS,
    looks_like_play,
)
from repro.ansible.kv import parse_kv
from repro.ansible.modules import get_module
from repro.errors import AnsibleError


@dataclass
class Task:
    """One Ansible task.

    Attributes:
        name: value of the ``name:`` field, or None.
        module: the module key exactly as written (may be short or FQCN).
        args: the module's argument value — a dict, a free-form string, or
            None.
        keywords: remaining task-level directives in source order.
    """

    name: str | None
    module: str | None
    args: object
    keywords: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_data(cls, data: object) -> "Task":
        """Build a Task from a parsed YAML mapping.

        The module key is the first key that is not a task keyword.  A
        mapping with zero module keys yields ``module=None`` (the schema
        validator reports it); multiple candidate module keys raise
        :class:`AnsibleError` since the structure is ambiguous.
        """
        if not isinstance(data, dict):
            raise AnsibleError(f"task must be a mapping, got {type(data).__name__}")
        name: str | None = None
        module: str | None = None
        args: object = None
        keywords: dict[str, object] = {}
        module_candidates = [key for key in data if isinstance(key, str) and key not in TASK_KEYWORDS]
        if len(module_candidates) > 1:
            raise AnsibleError(
                f"ambiguous task: multiple module candidates {module_candidates!r}"
            )
        for key, value in data.items():
            if key == "name":
                name = value if isinstance(value, str) else str(value) if value is not None else None
            elif isinstance(key, str) and key in TASK_KEYWORDS:
                keywords[key] = value
            else:
                module = key if isinstance(key, str) else str(key)
                args = value
        return cls(name=name, module=module, args=args, keywords=keywords)

    def to_data(self) -> dict[str, object]:
        """Serialize back to a mapping in canonical name/module/keyword order."""
        data: dict[str, object] = {}
        if self.name is not None:
            data["name"] = self.name
        if self.module is not None:
            data[self.module] = self.args
        for key, value in self.keywords.items():
            if key != "name":
                data[key] = value
        return data

    @property
    def fqcn(self) -> str | None:
        """FQCN-normalized module reference (None for keyword-only tasks)."""
        if self.module is None:
            return None
        return resolve_fqcn(self.module)

    def normalized_args(self) -> object:
        """Module arguments with legacy ``k=v`` strings parsed into dicts."""
        if isinstance(self.args, str):
            spec = get_module(self.module) if self.module else None
            free_form = bool(spec and spec.free_form)
            if free_form:
                return parse_kv(self.args, free_form=True)
            try:
                return parse_kv(self.args, free_form=False)
            except AnsibleError:
                return self.args
        return self.args

    @property
    def is_block(self) -> bool:
        return False


@dataclass
class Block:
    """A ``block:`` grouping of tasks with optional rescue/always sections."""

    name: str | None
    block: list["Task | Block"]
    rescue: list["Task | Block"] = field(default_factory=list)
    always: list["Task | Block"] = field(default_factory=list)
    keywords: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_data(cls, data: dict) -> "Block":
        if not isinstance(data, dict) or "block" not in data:
            raise AnsibleError("not a block mapping")
        name = data.get("name")
        keywords = {
            key: value
            for key, value in data.items()
            if key not in BLOCK_KEYS and key != "name"
        }
        return cls(
            name=name,
            block=[parse_task_entry(entry) for entry in data.get("block") or []],
            rescue=[parse_task_entry(entry) for entry in data.get("rescue") or []],
            always=[parse_task_entry(entry) for entry in data.get("always") or []],
            keywords=keywords,
        )

    def to_data(self) -> dict[str, object]:
        data: dict[str, object] = {}
        if self.name is not None:
            data["name"] = self.name
        data["block"] = [entry.to_data() for entry in self.block]
        if self.rescue:
            data["rescue"] = [entry.to_data() for entry in self.rescue]
        if self.always:
            data["always"] = [entry.to_data() for entry in self.always]
        data.update(self.keywords)
        return data

    def flat_tasks(self) -> list[Task]:
        """All leaf tasks in block/rescue/always order."""
        leaves: list[Task] = []
        for section in (self.block, self.rescue, self.always):
            for entry in section:
                if isinstance(entry, Block):
                    leaves.extend(entry.flat_tasks())
                else:
                    leaves.append(entry)
        return leaves

    @property
    def is_block(self) -> bool:
        return True


def parse_task_entry(data: object) -> Task | Block:
    """Parse one entry of a task list into a Task or a Block."""
    if isinstance(data, dict) and "block" in data:
        return Block.from_data(data)
    return Task.from_data(data)


@dataclass
class Play:
    """One play of a playbook."""

    name: str | None
    hosts: object
    tasks: list[Task | Block] = field(default_factory=list)
    pre_tasks: list[Task | Block] = field(default_factory=list)
    post_tasks: list[Task | Block] = field(default_factory=list)
    handlers: list[Task | Block] = field(default_factory=list)
    roles: list[object] = field(default_factory=list)
    keywords: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_data(cls, data: object) -> "Play":
        if not isinstance(data, dict):
            raise AnsibleError(f"play must be a mapping, got {type(data).__name__}")
        sections = {section: [] for section in PLAY_TASK_SECTIONS}
        for section in PLAY_TASK_SECTIONS:
            raw_section = data.get(section)
            if raw_section:
                if not isinstance(raw_section, list):
                    raise AnsibleError(f"play section {section!r} must be a list")
                sections[section] = [parse_task_entry(entry) for entry in raw_section]
        keywords = {
            key: value
            for key, value in data.items()
            if key not in (*PLAY_TASK_SECTIONS, "name", "hosts", "roles")
        }
        return cls(
            name=data.get("name"),
            hosts=data.get("hosts"),
            tasks=sections["tasks"],
            pre_tasks=sections["pre_tasks"],
            post_tasks=sections["post_tasks"],
            handlers=sections["handlers"],
            roles=list(data.get("roles") or []),
            keywords=keywords,
        )

    def to_data(self) -> dict[str, object]:
        data: dict[str, object] = {}
        if self.name is not None:
            data["name"] = self.name
        if self.hosts is not None:
            data["hosts"] = self.hosts
        data.update(self.keywords)
        if self.roles:
            data["roles"] = self.roles
        if self.pre_tasks:
            data["pre_tasks"] = [entry.to_data() for entry in self.pre_tasks]
        if self.tasks:
            data["tasks"] = [entry.to_data() for entry in self.tasks]
        if self.post_tasks:
            data["post_tasks"] = [entry.to_data() for entry in self.post_tasks]
        if self.handlers:
            data["handlers"] = [entry.to_data() for entry in self.handlers]
        return data

    def all_tasks(self) -> list[Task]:
        """Leaf tasks across every section, play order."""
        leaves: list[Task] = []
        for section in (self.pre_tasks, self.tasks, self.post_tasks, self.handlers):
            for entry in section:
                if isinstance(entry, Block):
                    leaves.extend(entry.flat_tasks())
                else:
                    leaves.append(entry)
        return leaves


@dataclass
class Playbook:
    """A playbook: an ordered list of plays."""

    plays: list[Play]

    @classmethod
    def from_data(cls, data: object) -> "Playbook":
        if not isinstance(data, list):
            raise AnsibleError(f"playbook must be a list of plays, got {type(data).__name__}")
        return cls(plays=[Play.from_data(play) for play in data])

    def to_data(self) -> list[dict[str, object]]:
        return [play.to_data() for play in self.plays]

    def all_tasks(self) -> list[Task]:
        leaves: list[Task] = []
        for play in self.plays:
            leaves.extend(play.all_tasks())
        return leaves


@dataclass
class TaskList:
    """A bare task list, as found in a role's ``tasks/main.yml``."""

    entries: list[Task | Block]

    @classmethod
    def from_data(cls, data: object) -> "TaskList":
        if not isinstance(data, list):
            raise AnsibleError(f"task list must be a list, got {type(data).__name__}")
        return cls(entries=[parse_task_entry(entry) for entry in data])

    def to_data(self) -> list[dict[str, object]]:
        return [entry.to_data() for entry in self.entries]

    def flat_tasks(self) -> list[Task]:
        leaves: list[Task] = []
        for entry in self.entries:
            if isinstance(entry, Block):
                leaves.extend(entry.flat_tasks())
            else:
                leaves.append(entry)
        return leaves


def classify_snippet(data: object) -> str:
    """Classify parsed YAML as ``"playbook"``, ``"tasks"`` or ``"other"``.

    The dataset pipeline applies this after YAML validation to decide how a
    file enters the fine-tuning set ("we extracted only playbooks containing
    tasks, and lists of tasks from roles").
    """
    if not isinstance(data, list) or not data:
        return "other"
    if not all(isinstance(entry, dict) for entry in data):
        return "other"
    if all(looks_like_play(entry) for entry in data):
        return "playbook"
    if any(looks_like_play(entry) for entry in data):
        return "other"
    try:
        TaskList.from_data(data)
    except AnsibleError:
        return "other"
    return "tasks"
