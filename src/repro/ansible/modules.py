"""Module catalog: the Ansible modules known to this library.

The catalog plays three roles, mirroring the knowledge the paper's system
embeds:

* **FQCN normalization** for the Ansible Aware metric (``copy`` →
  ``ansible.builtin.copy``) — see :mod:`repro.ansible.fqcn`;
* **schema validation** (a task must name a known module; free-form string
  arguments are only legal for the handful of free-form modules);
* **corpus synthesis** — the generators in :mod:`repro.dataset.synthesis`
  draw modules and realistic parameter values from these specs.

The parameter specs are faithful subsets of the real modules' options (names,
types, choices, defaults), covering the options that actually appear in
Galaxy-style content.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParameterSpec:
    """One module option.

    Attributes:
        name: option name as written in YAML.
        type: value type — one of ``str``, ``int``, ``bool``, ``list``,
            ``dict``, ``path``.
        required: whether the module rejects tasks lacking this option.
        choices: closed set of accepted values (empty = open).
        aliases: alternative option spellings accepted by the module.
    """

    name: str
    type: str = "str"
    required: bool = False
    choices: tuple[str, ...] = ()
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class ModuleSpec:
    """One Ansible module.

    Attributes:
        fqcn: fully qualified collection name, e.g. ``ansible.builtin.apt``.
        category: coarse functional family used by the corpus synthesizer.
        description: one-line summary (feeds synthetic ``name:`` fields).
        parameters: accepted options.
        free_form: module accepts a raw command string (``command``-family).
        legacy_aliases: additional short names that resolve to this module
            (e.g. ``docker_container`` for ``community.docker.docker_container``).
    """

    fqcn: str
    category: str
    description: str
    parameters: tuple[ParameterSpec, ...] = ()
    free_form: bool = False
    legacy_aliases: tuple[str, ...] = ()

    @property
    def collection(self) -> str:
        """Collection part of the FQCN (``ansible.builtin``)."""
        return self.fqcn.rsplit(".", 1)[0]

    @property
    def short_name(self) -> str:
        """Module part of the FQCN (``apt``)."""
        return self.fqcn.rsplit(".", 1)[1]

    def parameter(self, name: str) -> ParameterSpec | None:
        """Look up a parameter by name or alias."""
        for spec in self.parameters:
            if spec.name == name or name in spec.aliases:
                return spec
        return None

    @property
    def required_parameters(self) -> tuple[ParameterSpec, ...]:
        return tuple(spec for spec in self.parameters if spec.required)


def _p(name: str, type: str = "str", required: bool = False, choices: tuple[str, ...] = (), aliases: tuple[str, ...] = ()) -> ParameterSpec:
    return ParameterSpec(name=name, type=type, required=required, choices=choices, aliases=aliases)


_PRESENT_ABSENT = ("present", "absent")
_STARTED_STOPPED = ("started", "stopped", "restarted", "reloaded")


def _builtin(short: str, category: str, description: str, parameters: tuple[ParameterSpec, ...], free_form: bool = False) -> ModuleSpec:
    return ModuleSpec(
        fqcn=f"ansible.builtin.{short}",
        category=category,
        description=description,
        parameters=parameters,
        free_form=free_form,
    )


CATALOG: tuple[ModuleSpec, ...] = (
    # ----- packaging --------------------------------------------------
    _builtin("apt", "packaging", "Manage apt packages", (
        _p("name", "list", aliases=("pkg", "package")),
        _p("state", choices=("present", "absent", "latest", "build-dep", "fixed")),
        _p("update_cache", "bool"),
        _p("cache_valid_time", "int"),
        _p("install_recommends", "bool"),
        _p("force_apt_get", "bool"),
        _p("dpkg_options"),
        _p("upgrade", choices=("dist", "full", "safe", "yes", "no")),
    )),
    _builtin("yum", "packaging", "Manage yum packages", (
        _p("name", "list", aliases=("pkg",)),
        _p("state", choices=("present", "absent", "latest", "installed", "removed")),
        _p("enablerepo", "list"),
        _p("disablerepo", "list"),
        _p("update_cache", "bool"),
        _p("disable_gpg_check", "bool"),
    )),
    _builtin("dnf", "packaging", "Manage dnf packages", (
        _p("name", "list", aliases=("pkg",)),
        _p("state", choices=("present", "absent", "latest", "installed", "removed")),
        _p("enablerepo", "list"),
        _p("disablerepo", "list"),
        _p("update_cache", "bool"),
    )),
    _builtin("package", "packaging", "Generic OS package manager", (
        _p("name", "list", required=True),
        _p("state", choices=("present", "absent", "latest")),
        _p("use"),
    )),
    _builtin("pip", "packaging", "Manage Python packages", (
        _p("name", "list"),
        _p("state", choices=("present", "absent", "latest", "forcereinstall")),
        _p("requirements", "path"),
        _p("virtualenv", "path"),
        _p("virtualenv_command"),
        _p("executable", "path"),
        _p("extra_args"),
    )),
    _builtin("apt_repository", "packaging", "Add or remove APT repositories", (
        _p("repo", required=True),
        _p("state", choices=_PRESENT_ABSENT),
        _p("filename"),
        _p("update_cache", "bool"),
        _p("mode"),
    )),
    _builtin("apt_key", "packaging", "Add or remove an apt key", (
        _p("url"),
        _p("id"),
        _p("keyserver"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("keyring", "path"),
    )),
    _builtin("yum_repository", "packaging", "Add or remove YUM repositories", (
        _p("name", required=True),
        _p("description"),
        _p("baseurl", "list"),
        _p("gpgcheck", "bool"),
        _p("gpgkey", "list"),
        _p("enabled", "bool"),
        _p("state", choices=_PRESENT_ABSENT),
    )),
    _builtin("rpm_key", "packaging", "Add or remove a gpg key from the rpm db", (
        _p("key", required=True),
        _p("state", choices=_PRESENT_ABSENT),
        _p("fingerprint"),
    )),
    # ----- services ----------------------------------------------------
    _builtin("service", "services", "Manage services", (
        _p("name", required=True),
        _p("state", choices=_STARTED_STOPPED),
        _p("enabled", "bool"),
        _p("sleep", "int"),
        _p("pattern"),
        _p("arguments", aliases=("args",)),
    )),
    _builtin("systemd", "services", "Manage systemd units", (
        _p("name", aliases=("service", "unit")),
        _p("state", choices=_STARTED_STOPPED),
        _p("enabled", "bool"),
        _p("masked", "bool"),
        _p("daemon_reload", "bool"),
        _p("daemon_reexec", "bool"),
        _p("scope", choices=("system", "user", "global")),
    )),
    _builtin("service_facts", "services", "Return service state information", ()),
    _builtin("cron", "services", "Manage cron.d and crontab entries", (
        _p("name", required=True),
        _p("job"),
        _p("minute"),
        _p("hour"),
        _p("day"),
        _p("month"),
        _p("weekday"),
        _p("user"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("cron_file", "path"),
        _p("special_time", choices=("annually", "daily", "hourly", "monthly", "reboot", "weekly", "yearly")),
    )),
    # ----- files -------------------------------------------------------
    _builtin("copy", "files", "Copy files to remote locations", (
        _p("src", "path"),
        _p("dest", "path", required=True),
        _p("content"),
        _p("owner"),
        _p("group"),
        _p("mode"),
        _p("backup", "bool"),
        _p("force", "bool"),
        _p("remote_src", "bool"),
        _p("validate"),
    )),
    _builtin("template", "files", "Template a file out to a target host", (
        _p("src", "path", required=True),
        _p("dest", "path", required=True),
        _p("owner"),
        _p("group"),
        _p("mode"),
        _p("backup", "bool"),
        _p("validate"),
        _p("variable_start_string"),
        _p("variable_end_string"),
    )),
    _builtin("file", "files", "Manage files and file properties", (
        _p("path", "path", required=True, aliases=("dest", "name")),
        _p("state", choices=("absent", "directory", "file", "hard", "link", "touch")),
        _p("owner"),
        _p("group"),
        _p("mode"),
        _p("recurse", "bool"),
        _p("src", "path"),
        _p("force", "bool"),
    )),
    _builtin("lineinfile", "files", "Manage lines in text files", (
        _p("path", "path", required=True, aliases=("dest", "destfile", "name")),
        _p("line"),
        _p("regexp"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("insertafter"),
        _p("insertbefore"),
        _p("create", "bool"),
        _p("backup", "bool"),
        _p("backrefs", "bool"),
        _p("owner"),
        _p("group"),
        _p("mode"),
    )),
    _builtin("blockinfile", "files", "Insert/update/remove a block of lines", (
        _p("path", "path", required=True, aliases=("dest", "destfile", "name")),
        _p("block", aliases=("content",)),
        _p("marker"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("insertafter"),
        _p("insertbefore"),
        _p("create", "bool"),
        _p("backup", "bool"),
    )),
    _builtin("replace", "files", "Replace all instances of a pattern in a file", (
        _p("path", "path", required=True, aliases=("dest", "destfile", "name")),
        _p("regexp", required=True),
        _p("replace"),
        _p("after"),
        _p("before"),
        _p("backup", "bool"),
    )),
    _builtin("stat", "files", "Retrieve file or file system status", (
        _p("path", "path", required=True, aliases=("dest", "name")),
        _p("follow", "bool"),
        _p("get_checksum", "bool"),
        _p("checksum_algorithm", choices=("md5", "sha1", "sha224", "sha256", "sha384", "sha512")),
    )),
    _builtin("find", "files", "Return a list of files based on criteria", (
        _p("paths", "list", required=True, aliases=("name", "path")),
        _p("patterns", "list"),
        _p("file_type", choices=("any", "directory", "file", "link")),
        _p("recurse", "bool"),
        _p("age"),
        _p("size"),
        _p("hidden", "bool"),
        _p("excludes", "list"),
    )),
    _builtin("fetch", "files", "Fetch files from remote nodes", (
        _p("src", "path", required=True),
        _p("dest", "path", required=True),
        _p("flat", "bool"),
        _p("fail_on_missing", "bool"),
    )),
    _builtin("slurp", "files", "Slurp a file from remote nodes", (
        _p("src", "path", required=True, aliases=("path",)),
    )),
    _builtin("tempfile", "files", "Create temporary files and directories", (
        _p("state", choices=("file", "directory")),
        _p("suffix"),
        _p("prefix"),
        _p("path", "path"),
    )),
    _builtin("unarchive", "files", "Unpack an archive", (
        _p("src", "path", required=True),
        _p("dest", "path", required=True),
        _p("remote_src", "bool"),
        _p("creates", "path"),
        _p("owner"),
        _p("group"),
        _p("mode"),
        _p("extra_opts", "list"),
    )),
    _builtin("assemble", "files", "Assemble fragments into a file", (
        _p("src", "path", required=True),
        _p("dest", "path", required=True),
        _p("delimiter"),
        _p("remote_src", "bool"),
        _p("owner"),
        _p("group"),
        _p("mode"),
    )),
    # ----- commands ----------------------------------------------------
    _builtin("command", "commands", "Execute commands on targets", (
        _p("cmd"),
        _p("argv", "list"),
        _p("chdir", "path"),
        _p("creates", "path"),
        _p("removes", "path"),
        _p("stdin"),
        _p("strip_empty_ends", "bool"),
    ), free_form=True),
    _builtin("shell", "commands", "Execute shell commands on targets", (
        _p("cmd"),
        _p("chdir", "path"),
        _p("creates", "path"),
        _p("removes", "path"),
        _p("executable", "path"),
        _p("stdin"),
    ), free_form=True),
    _builtin("raw", "commands", "Execute a low-down and dirty command", (
        _p("executable", "path"),
    ), free_form=True),
    _builtin("script", "commands", "Run a local script on a remote node", (
        _p("cmd"),
        _p("chdir", "path"),
        _p("creates", "path"),
        _p("removes", "path"),
        _p("executable", "path"),
    ), free_form=True),
    _builtin("make", "commands", "Run targets in a Makefile", (
        _p("chdir", "path", required=True),
        _p("target"),
        _p("params", "dict"),
        _p("file", "path"),
        _p("jobs", "int"),
    )),
    # ----- system ------------------------------------------------------
    _builtin("user", "system", "Manage user accounts", (
        _p("name", required=True, aliases=("user",)),
        _p("state", choices=_PRESENT_ABSENT),
        _p("uid", "int"),
        _p("group"),
        _p("groups", "list"),
        _p("append", "bool"),
        _p("shell", "path"),
        _p("home", "path"),
        _p("create_home", "bool"),
        _p("password"),
        _p("system", "bool"),
        _p("comment"),
        _p("remove", "bool"),
        _p("generate_ssh_key", "bool"),
    )),
    _builtin("group", "system", "Manage groups", (
        _p("name", required=True),
        _p("state", choices=_PRESENT_ABSENT),
        _p("gid", "int"),
        _p("system", "bool"),
    )),
    _builtin("hostname", "system", "Manage hostname", (
        _p("name", required=True),
        _p("use", choices=("systemd", "redhat", "debian", "alpine", "generic")),
    )),
    _builtin("timezone", "system", "Configure timezone setting", (
        _p("name"),
        _p("hwclock", choices=("local", "UTC"), aliases=("rtc",)),
    )),
    _builtin("reboot", "system", "Reboot a machine", (
        _p("reboot_timeout", "int"),
        _p("connect_timeout", "int"),
        _p("msg"),
        _p("pre_reboot_delay", "int"),
        _p("post_reboot_delay", "int"),
        _p("test_command"),
    )),
    _builtin("modprobe", "system", "Load or unload kernel modules", (
        _p("name", required=True),
        _p("state", choices=_PRESENT_ABSENT),
        _p("params"),
    )),
    _builtin("sysctl", "system", "Manage entries in sysctl.conf", (
        _p("name", required=True, aliases=("key",)),
        _p("value", aliases=("val",)),
        _p("state", choices=_PRESENT_ABSENT),
        _p("reload", "bool"),
        _p("sysctl_file", "path"),
        _p("sysctl_set", "bool"),
    )),
    _builtin("selinux", "system", "Change policy and state of SELinux", (
        _p("policy"),
        _p("state", required=True, choices=("disabled", "enforcing", "permissive")),
        _p("configfile", "path"),
    )),
    _builtin("seboolean", "system", "Toggles SELinux booleans", (
        _p("name", required=True),
        _p("state", "bool", required=True),
        _p("persistent", "bool"),
    )),
    _builtin("mount", "system", "Control active and configured mount points", (
        _p("path", "path", required=True, aliases=("name",)),
        _p("src", "path"),
        _p("fstype"),
        _p("opts"),
        _p("state", required=True, choices=("absent", "mounted", "present", "unmounted", "remounted")),
        _p("boot", "bool"),
        _p("dump"),
        _p("passno"),
    )),
    _builtin("authorized_key", "system", "Add or remove SSH authorized keys", (
        _p("user", required=True),
        _p("key", required=True),
        _p("state", choices=_PRESENT_ABSENT),
        _p("exclusive", "bool"),
        _p("manage_dir", "bool"),
        _p("path", "path"),
        _p("key_options"),
    )),
    _builtin("known_hosts", "system", "Add or remove a host from known_hosts", (
        _p("name", required=True, aliases=("host",)),
        _p("key"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("path", "path"),
        _p("hash_host", "bool"),
    )),
    _builtin("iptables", "system", "Modify iptables rules", (
        _p("chain", choices=("INPUT", "FORWARD", "OUTPUT", "PREROUTING", "POSTROUTING")),
        _p("protocol"),
        _p("destination_port"),
        _p("source"),
        _p("jump"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("comment"),
        _p("table", choices=("filter", "nat", "mangle", "raw", "security")),
    )),
    _builtin("pam_limits", "system", "Modify Linux PAM limits", (
        _p("domain", required=True),
        _p("limit_type", required=True, choices=("hard", "soft", "-")),
        _p("limit_item", required=True),
        _p("value", required=True),
    )),
    _builtin("alternatives", "system", "Manage alternative programs", (
        _p("name", required=True),
        _p("path", "path", required=True),
        _p("link", "path"),
        _p("priority", "int"),
        _p("state", choices=("present", "absent", "selected", "auto")),
    )),
    _builtin("locale_gen", "system", "Create or remove locale definitions", (
        _p("name", required=True),
        _p("state", choices=_PRESENT_ABSENT),
    )),
    # ----- source control / downloads -----------------------------------
    _builtin("git", "source_control", "Deploy software from git checkouts", (
        _p("repo", required=True, aliases=("name",)),
        _p("dest", "path", required=True),
        _p("version"),
        _p("clone", "bool"),
        _p("update", "bool"),
        _p("force", "bool"),
        _p("depth", "int"),
        _p("accept_hostkey", "bool"),
        _p("key_file", "path"),
    )),
    _builtin("subversion", "source_control", "Deploy a subversion repository", (
        _p("repo", required=True, aliases=("name", "repository")),
        _p("dest", "path"),
        _p("revision", aliases=("rev", "version")),
        _p("force", "bool"),
        _p("username"),
        _p("password"),
    )),
    _builtin("get_url", "net_tools", "Download files over HTTP/HTTPS/FTP", (
        _p("url", required=True),
        _p("dest", "path", required=True),
        _p("mode"),
        _p("owner"),
        _p("group"),
        _p("checksum"),
        _p("timeout", "int"),
        _p("validate_certs", "bool"),
        _p("force", "bool"),
        _p("headers", "dict"),
        _p("url_username"),
        _p("url_password"),
    )),
    _builtin("uri", "net_tools", "Interact with web services", (
        _p("url", required=True),
        _p("method", choices=("GET", "POST", "PUT", "DELETE", "HEAD", "PATCH", "OPTIONS")),
        _p("body"),
        _p("body_format", choices=("form-urlencoded", "json", "raw")),
        _p("status_code", "list"),
        _p("return_content", "bool"),
        _p("headers", "dict"),
        _p("timeout", "int"),
        _p("validate_certs", "bool"),
        _p("user"),
        _p("password"),
    )),
    # ----- control flow / utilities --------------------------------------
    _builtin("debug", "utilities", "Print statements during execution", (
        _p("msg"),
        _p("var"),
        _p("verbosity", "int"),
    )),
    _builtin("fail", "utilities", "Fail with a custom message", (
        _p("msg"),
    )),
    _builtin("assert", "utilities", "Asserts given expressions are true", (
        _p("that", "list", required=True),
        _p("fail_msg", aliases=("msg",)),
        _p("success_msg"),
        _p("quiet", "bool"),
    )),
    _builtin("set_fact", "utilities", "Set host variable(s) and fact(s)", (
        _p("cacheable", "bool"),
        _p("key_value", "dict"),
    )),
    _builtin("setup", "utilities", "Gather facts about remote hosts", (
        _p("gather_subset", "list"),
        _p("filter", "list"),
        _p("gather_timeout", "int"),
    )),
    _builtin("gather_facts", "utilities", "Gather facts about remote hosts", (
        _p("parallel", "bool"),
    )),
    _builtin("wait_for", "utilities", "Wait for a condition", (
        _p("host"),
        _p("port", "int"),
        _p("path", "path"),
        _p("state", choices=("absent", "drained", "present", "started", "stopped")),
        _p("timeout", "int"),
        _p("delay", "int"),
        _p("sleep", "int"),
        _p("search_regex"),
        _p("connect_timeout", "int"),
    )),
    _builtin("wait_for_connection", "utilities", "Wait until remote system is reachable", (
        _p("timeout", "int"),
        _p("delay", "int"),
        _p("sleep", "int"),
        _p("connect_timeout", "int"),
    )),
    _builtin("pause", "utilities", "Pause playbook execution", (
        _p("minutes", "int"),
        _p("seconds", "int"),
        _p("prompt"),
        _p("echo", "bool"),
    )),
    _builtin("include_tasks", "utilities", "Dynamically include a task list", (
        _p("file", "path"),
        _p("apply", "dict"),
    )),
    _builtin("import_tasks", "utilities", "Import a task list", (
        _p("file", "path"),
    )),
    _builtin("include_role", "utilities", "Load and execute a role", (
        _p("name", required=True),
        _p("tasks_from"),
        _p("vars_from"),
        _p("defaults_from"),
        _p("apply", "dict"),
        _p("public", "bool"),
    )),
    _builtin("import_role", "utilities", "Import a role into a play", (
        _p("name", required=True),
        _p("tasks_from"),
        _p("vars_from"),
    )),
    _builtin("include_vars", "utilities", "Load variables from files", (
        _p("file", "path"),
        _p("dir", "path"),
        _p("name"),
        _p("depth", "int"),
        _p("files_matching"),
    )),
    _builtin("add_host", "utilities", "Add a host to the in-memory inventory", (
        _p("name", required=True, aliases=("host", "hostname")),
        _p("groups", "list", aliases=("group", "groupname")),
    )),
    _builtin("group_by", "utilities", "Create inventory groups based on facts", (
        _p("key", required=True),
        _p("parents", "list"),
    )),
    _builtin("meta", "utilities", "Execute Ansible actions", (
        _p("free_form", choices=("clear_facts", "clear_host_errors", "end_host", "end_play", "flush_handlers", "noop", "refresh_inventory", "reset_connection", "end_batch")),
    ), free_form=True),
    _builtin("ping", "utilities", "Try to connect to host and verify usability", (
        _p("data"),
    )),
    _builtin("getent", "system", "Query the getent database", (
        _p("database", required=True),
        _p("key"),
        _p("split"),
        _p("fail_key", "bool"),
    )),
    # ----- ansible.posix -------------------------------------------------
    ModuleSpec("ansible.posix.firewalld", "system", "Manage firewalld rules", (
        _p("service"),
        _p("port"),
        _p("zone"),
        _p("state", required=True, choices=("absent", "disabled", "enabled", "present")),
        _p("permanent", "bool"),
        _p("immediate", "bool"),
        _p("rich_rule"),
    ), legacy_aliases=("firewalld",)),
    ModuleSpec("ansible.posix.synchronize", "files", "Wrapper around rsync", (
        _p("src", "path", required=True),
        _p("dest", "path", required=True),
        _p("mode", choices=("pull", "push")),
        _p("delete", "bool"),
        _p("recursive", "bool"),
        _p("rsync_opts", "list"),
        _p("archive", "bool"),
    ), legacy_aliases=("synchronize",)),
    ModuleSpec("ansible.posix.seboolean", "system", "Toggle SELinux booleans (posix)", (
        _p("name", required=True),
        _p("state", "bool", required=True),
        _p("persistent", "bool"),
    )),
    # ----- community.general ---------------------------------------------
    ModuleSpec("community.general.ufw", "system", "Manage firewall with UFW", (
        _p("rule", choices=("allow", "deny", "limit", "reject")),
        _p("port"),
        _p("proto", choices=("any", "tcp", "udp", "ipv6", "esp", "ah", "gre", "igmp")),
        _p("state", choices=("disabled", "enabled", "reloaded", "reset")),
        _p("policy", choices=("allow", "deny", "reject")),
        _p("direction", choices=("in", "incoming", "out", "outgoing", "routed")),
        _p("from_ip"),
        _p("comment"),
    ), legacy_aliases=("ufw",)),
    ModuleSpec("community.general.npm", "packaging", "Manage node.js packages with npm", (
        _p("name"),
        _p("path", "path"),
        _p("global", "bool"),
        _p("state", choices=("present", "absent", "latest")),
        _p("production", "bool"),
        _p("version"),
    ), legacy_aliases=("npm",)),
    ModuleSpec("community.general.gem", "packaging", "Manage Ruby gems", (
        _p("name", required=True),
        _p("state", choices=("present", "absent", "latest")),
        _p("version"),
        _p("user_install", "bool"),
        _p("executable", "path"),
    ), legacy_aliases=("gem",)),
    ModuleSpec("community.general.snap", "packaging", "Manage snap packages", (
        _p("name", "list", required=True),
        _p("state", choices=("present", "absent", "enabled", "disabled")),
        _p("classic", "bool"),
        _p("channel"),
    ), legacy_aliases=("snap",)),
    ModuleSpec("community.general.htpasswd", "web", "Manage htpasswd entries", (
        _p("path", "path", required=True, aliases=("dest", "destfile")),
        _p("name", required=True, aliases=("username",)),
        _p("password"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("crypt_scheme"),
    ), legacy_aliases=("htpasswd",)),
    ModuleSpec("community.general.ini_file", "files", "Tweak settings in INI files", (
        _p("path", "path", required=True, aliases=("dest",)),
        _p("section", required=True),
        _p("option"),
        _p("value"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("backup", "bool"),
        _p("mode"),
    ), legacy_aliases=("ini_file",)),
    ModuleSpec("community.general.xml", "files", "Manage bits and pieces of XML files", (
        _p("path", "path", aliases=("dest", "file")),
        _p("xpath"),
        _p("value"),
        _p("attribute"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("pretty_print", "bool"),
    ), legacy_aliases=("xml",)),
    ModuleSpec("community.general.timezone", "system", "Configure timezone (community)", (
        _p("name"),
        _p("hwclock", choices=("local", "UTC")),
    )),
    ModuleSpec("community.general.alternatives", "system", "Manage alternatives (community)", (
        _p("name", required=True),
        _p("path", "path", required=True),
        _p("link", "path"),
        _p("priority", "int"),
    )),
    # ----- community.crypto ------------------------------------------------
    ModuleSpec("community.crypto.openssl_privatekey", "crypto", "Generate OpenSSL private keys", (
        _p("path", "path", required=True),
        _p("size", "int"),
        _p("type", choices=("RSA", "DSA", "ECC", "Ed25519", "X25519")),
        _p("state", choices=_PRESENT_ABSENT),
        _p("mode"),
        _p("owner"),
    ), legacy_aliases=("openssl_privatekey",)),
    ModuleSpec("community.crypto.openssl_csr", "crypto", "Generate OpenSSL certificate signing requests", (
        _p("path", "path", required=True),
        _p("privatekey_path", "path"),
        _p("common_name"),
        _p("country_name"),
        _p("organization_name"),
        _p("subject_alt_name", "list"),
    ), legacy_aliases=("openssl_csr",)),
    ModuleSpec("community.crypto.x509_certificate", "crypto", "Generate X.509 certificates", (
        _p("path", "path", required=True),
        _p("privatekey_path", "path"),
        _p("csr_path", "path"),
        _p("provider", choices=("selfsigned", "ownca", "acme", "entrust")),
        _p("selfsigned_not_after"),
    ), legacy_aliases=("x509_certificate",)),
    # ----- community.docker --------------------------------------------------
    ModuleSpec("community.docker.docker_container", "containers", "Manage Docker containers", (
        _p("name", required=True),
        _p("image"),
        _p("state", choices=("absent", "present", "started", "stopped", "healthy")),
        _p("ports", "list", aliases=("published_ports",)),
        _p("volumes", "list"),
        _p("env", "dict"),
        _p("restart_policy", choices=("always", "no", "on-failure", "unless-stopped")),
        _p("networks", "list"),
        _p("command"),
        _p("detach", "bool"),
        _p("pull", "bool"),
    ), legacy_aliases=("docker_container",)),
    ModuleSpec("community.docker.docker_image", "containers", "Manage Docker images", (
        _p("name", required=True),
        _p("tag"),
        _p("source", choices=("build", "load", "local", "pull")),
        _p("state", choices=_PRESENT_ABSENT),
        _p("build", "dict"),
        _p("force_source", "bool"),
    ), legacy_aliases=("docker_image",)),
    ModuleSpec("community.docker.docker_network", "containers", "Manage Docker networks", (
        _p("name", required=True),
        _p("state", choices=_PRESENT_ABSENT),
        _p("driver"),
        _p("ipam_config", "list"),
    ), legacy_aliases=("docker_network",)),
    ModuleSpec("community.docker.docker_compose_v2", "containers", "Manage docker compose projects", (
        _p("project_src", "path"),
        _p("state", choices=("absent", "present", "stopped", "restarted")),
        _p("pull", choices=("always", "missing", "never", "policy")),
        _p("files", "list"),
    )),
    # ----- kubernetes.core ----------------------------------------------------
    ModuleSpec("kubernetes.core.k8s", "cloud", "Manage Kubernetes objects", (
        _p("state", choices=("absent", "present", "patched")),
        _p("definition", "dict"),
        _p("src", "path"),
        _p("kind"),
        _p("name"),
        _p("namespace"),
        _p("api_version"),
        _p("kubeconfig", "path"),
        _p("wait", "bool"),
    ), legacy_aliases=("k8s",)),
    ModuleSpec("kubernetes.core.helm", "cloud", "Manage Helm chart deployments", (
        _p("name", required=True, aliases=("release_name",)),
        _p("chart_ref", "path"),
        _p("release_namespace", required=True, aliases=("namespace",)),
        _p("state", choices=_PRESENT_ABSENT),
        _p("values", "dict"),
        _p("chart_version"),
        _p("create_namespace", "bool"),
    ), legacy_aliases=("helm",)),
    # ----- databases ------------------------------------------------------------
    ModuleSpec("community.mysql.mysql_db", "database", "Manage MySQL databases", (
        _p("name", "list", required=True, aliases=("db",)),
        _p("state", choices=("absent", "dump", "import", "present")),
        _p("login_user"),
        _p("login_password"),
        _p("login_host"),
        _p("encoding"),
        _p("target", "path"),
    ), legacy_aliases=("mysql_db",)),
    ModuleSpec("community.mysql.mysql_user", "database", "Manage MySQL users", (
        _p("name", required=True, aliases=("user",)),
        _p("password"),
        _p("priv"),
        _p("host"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("login_user"),
        _p("login_password"),
        _p("update_password", choices=("always", "on_create")),
    ), legacy_aliases=("mysql_user",)),
    ModuleSpec("community.postgresql.postgresql_db", "database", "Manage PostgreSQL databases", (
        _p("name", required=True, aliases=("db",)),
        _p("state", choices=("absent", "dump", "present", "rename", "restore")),
        _p("owner"),
        _p("encoding"),
        _p("template"),
        _p("login_user"),
        _p("login_password"),
    ), legacy_aliases=("postgresql_db",)),
    ModuleSpec("community.postgresql.postgresql_user", "database", "Manage PostgreSQL users", (
        _p("name", required=True, aliases=("user",)),
        _p("password"),
        _p("db", aliases=("login_db",)),
        _p("priv"),
        _p("role_attr_flags"),
        _p("state", choices=_PRESENT_ABSENT),
    ), legacy_aliases=("postgresql_user",)),
    # ----- cloud ------------------------------------------------------------------
    ModuleSpec("amazon.aws.ec2_instance", "cloud", "Manage EC2 instances", (
        _p("name"),
        _p("state", choices=("absent", "present", "restarted", "running", "started", "stopped", "terminated")),
        _p("instance_type"),
        _p("image_id"),
        _p("key_name"),
        _p("vpc_subnet_id"),
        _p("security_groups", "list"),
        _p("tags", "dict"),
        _p("region"),
        _p("wait", "bool"),
    ), legacy_aliases=("ec2_instance",)),
    ModuleSpec("amazon.aws.s3_bucket", "cloud", "Manage S3 buckets", (
        _p("name", required=True),
        _p("state", choices=_PRESENT_ABSENT),
        _p("policy", "dict"),
        _p("tags", "dict"),
        _p("versioning", "bool"),
        _p("region"),
    ), legacy_aliases=("s3_bucket",)),
    ModuleSpec("amazon.aws.route53", "cloud", "Manage DNS records in Route 53", (
        _p("state", required=True, choices=("present", "absent", "get", "create", "delete")),
        _p("zone"),
        _p("record", required=True),
        _p("type", required=True, choices=("A", "AAAA", "CNAME", "MX", "NS", "PTR", "SOA", "SPF", "SRV", "TXT")),
        _p("value", "list"),
        _p("ttl", "int"),
    ), legacy_aliases=("route53",)),
    # ----- windows -----------------------------------------------------------------
    ModuleSpec("ansible.windows.win_service", "windows", "Manage Windows services", (
        _p("name", required=True),
        _p("state", choices=("absent", "paused", "started", "stopped", "restarted")),
        _p("start_mode", choices=("auto", "delayed", "disabled", "manual")),
        _p("username"),
        _p("password"),
    ), legacy_aliases=("win_service",)),
    ModuleSpec("ansible.windows.win_package", "windows", "Install/uninstall Windows packages", (
        _p("path", "path"),
        _p("product_id"),
        _p("state", choices=_PRESENT_ABSENT),
        _p("arguments"),
        _p("creates_path", "path"),
    ), legacy_aliases=("win_package",)),
    ModuleSpec("ansible.windows.win_copy", "windows", "Copy files to remote Windows hosts", (
        _p("src", "path"),
        _p("dest", "path", required=True),
        _p("content"),
        _p("backup", "bool"),
        _p("force", "bool"),
        _p("remote_src", "bool"),
    ), legacy_aliases=("win_copy",)),
    # ----- network vendors (used in the paper's Fig. 2 example) ----------------------
    ModuleSpec("vyos.vyos.vyos_facts", "network", "Get facts about VyOS devices", (
        _p("gather_subset", "list"),
        _p("gather_network_resources", "list"),
    ), legacy_aliases=("vyos_facts",)),
    ModuleSpec("vyos.vyos.vyos_config", "network", "Manage VyOS configuration on remote devices", (
        _p("lines", "list", aliases=("commands",)),
        _p("src", "path"),
        _p("save", "bool"),
        _p("backup", "bool"),
        _p("match", choices=("line", "none")),
        _p("comment"),
    ), legacy_aliases=("vyos_config",)),
    ModuleSpec("cisco.ios.ios_config", "network", "Manage Cisco IOS configuration sections", (
        _p("lines", "list", aliases=("commands",)),
        _p("parents", "list"),
        _p("src", "path"),
        _p("save_when", choices=("always", "never", "modified", "changed")),
        _p("backup", "bool"),
        _p("match", choices=("line", "strict", "exact", "none")),
    ), legacy_aliases=("ios_config",)),
    ModuleSpec("cisco.ios.ios_facts", "network", "Collect facts from Cisco IOS devices", (
        _p("gather_subset", "list"),
        _p("gather_network_resources", "list"),
    ), legacy_aliases=("ios_facts",)),
    ModuleSpec("junipernetworks.junos.junos_config", "network", "Manage Juniper JUNOS configuration", (
        _p("lines", "list"),
        _p("src", "path"),
        _p("confirm", "int"),
        _p("comment"),
        _p("backup", "bool"),
        _p("update", choices=("merge", "override", "replace", "update")),
    ), legacy_aliases=("junos_config",)),
    ModuleSpec("ansible.netcommon.cli_command", "network", "Run a cli command on network devices", (
        _p("command", required=True),
        _p("prompt", "list"),
        _p("answer", "list"),
        _p("sendonly", "bool"),
    ), legacy_aliases=("cli_command",)),
    # ----- monitoring / web ------------------------------------------------------------
    ModuleSpec("community.grafana.grafana_dashboard", "monitoring", "Manage Grafana dashboards", (
        _p("grafana_url", required=True, aliases=("url",)),
        _p("state", choices=("present", "absent", "export")),
        _p("path", "path"),
        _p("overwrite", "bool"),
        _p("folder"),
        _p("grafana_api_key"),
    ), legacy_aliases=("grafana_dashboard",)),
    ModuleSpec("community.zabbix.zabbix_host", "monitoring", "Create/update/delete Zabbix hosts", (
        _p("host_name", required=True),
        _p("host_groups", "list"),
        _p("status", choices=("enabled", "disabled")),
        _p("state", choices=_PRESENT_ABSENT),
        _p("interfaces", "list"),
    ), legacy_aliases=("zabbix_host",)),
)


_BY_FQCN: dict[str, ModuleSpec] = {spec.fqcn: spec for spec in CATALOG}

_BY_SHORT_NAME: dict[str, ModuleSpec] = {}
for _spec in CATALOG:
    # builtin modules claim their bare short name (legacy pre-FQCN usage).
    if _spec.collection == "ansible.builtin":
        _BY_SHORT_NAME[_spec.short_name] = _spec
    for _alias in _spec.legacy_aliases:
        _BY_SHORT_NAME.setdefault(_alias, _spec)


def get_module(name: str) -> ModuleSpec | None:
    """Look up a module by FQCN or legacy short name; None when unknown."""
    if name in _BY_FQCN:
        return _BY_FQCN[name]
    return _BY_SHORT_NAME.get(name)


def is_known_module(name: str) -> bool:
    """True when ``name`` resolves in the catalog."""
    return get_module(name) is not None


def all_modules() -> tuple[ModuleSpec, ...]:
    """The full catalog, in definition order."""
    return CATALOG


def modules_in_category(category: str) -> tuple[ModuleSpec, ...]:
    """All modules belonging to a functional category."""
    return tuple(spec for spec in CATALOG if spec.category == category)


def categories() -> tuple[str, ...]:
    """Sorted distinct categories present in the catalog."""
    return tuple(sorted({spec.category for spec in CATALOG}))
