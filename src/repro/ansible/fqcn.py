"""Fully-qualified collection name (FQCN) resolution.

Galaxy content predating Ansible 2.10 names modules by bare short name
(``copy``); modern content uses FQCNs (``ansible.builtin.copy``).  The
Ansible Aware metric normalizes both spellings to the FQCN before comparing
("when comparing the module names they are first replaced by their fully
qualified collection name", §Evaluation Metrics), and the corpus synthesizer
emits a mix of both to reproduce real data.
"""

from __future__ import annotations

from repro.ansible.modules import get_module


def resolve_fqcn(name: str) -> str:
    """Normalize a module reference to its FQCN.

    Unknown names pass through unchanged — the metric still compares them
    textually, and the schema validator reports them separately.

    >>> resolve_fqcn("copy")
    'ansible.builtin.copy'
    >>> resolve_fqcn("ansible.builtin.copy")
    'ansible.builtin.copy'
    >>> resolve_fqcn("not.a.module")
    'not.a.module'
    """
    spec = get_module(name)
    if spec is None:
        return name
    return spec.fqcn


def short_name(name: str) -> str:
    """The short (collection-less) form of a module reference."""
    return name.rsplit(".", 1)[-1]


def is_fqcn(name: str) -> bool:
    """True when ``name`` has the ``namespace.collection.module`` shape."""
    parts = name.split(".")
    return len(parts) >= 3 and all(part.isidentifier() for part in parts)
