"""Strict Ansible schema validation — the basis of the *Schema Correct* metric.

The paper: "The Ansible playbook and tasks schema used by the Ansible linter
are quite strict and do not accept some historical forms which are still
allowed by Ansible itself."  This validator mirrors that behaviour with two
levels:

* ``lenient`` — accepts everything ansible-core itself would run: legacy
  ``k=v`` string arguments, bare short module names, ``with_*`` loops.
* ``strict`` (default, the linter's view) — additionally rejects the
  historical forms: inline ``k=v`` arguments on non-free-form modules,
  unknown module options, closed-choice violations, ``action:`` /
  ``local_action:`` indirection.

Because the fine-tuning data is *not* filtered with this schema (matching
the paper), a prediction with a perfect Exact Match score can still score 0
on Schema Correct.

Every rule produces a :class:`Violation` with a JSONPath-ish location, a
stable rule id, and a message; :func:`validate` returns them all rather than
stopping at the first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ansible.keywords import (
    BLOCK_KEYS,
    PLAY_KEYWORDS,
    PLAY_TASK_SECTIONS,
    TASK_KEYWORDS,
    looks_like_play,
)
from repro.ansible.kv import looks_like_kv
from repro.ansible.modules import ModuleSpec, get_module

STRICT = "strict"
LENIENT = "lenient"
_LEVELS = (STRICT, LENIENT)


@dataclass(frozen=True)
class Violation:
    """One schema violation.

    Attributes:
        path: location of the offending node, e.g. ``plays[0].tasks[2]``.
        rule: stable rule identifier, e.g. ``module-unknown``.
        message: human-readable explanation.
    """

    path: str
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: [{self.rule}] {self.message}"


def _contains_template(value: object) -> bool:
    return isinstance(value, str) and "{{" in value


class _Validator:
    def __init__(self, level: str):
        if level not in _LEVELS:
            raise ValueError(f"level must be one of {_LEVELS}, got {level!r}")
        self.level = level
        self.violations: list[Violation] = []

    def report(self, path: str, rule: str, message: str) -> None:
        self.violations.append(Violation(path=path, rule=rule, message=message))

    # -- documents --------------------------------------------------------

    def validate_document(self, data: object, path: str = "$") -> None:
        if not isinstance(data, list):
            self.report(path, "document-not-list", "an Ansible file is a list of plays or tasks")
            return
        if not data:
            self.report(path, "document-empty", "empty document")
            return
        if any(not isinstance(entry, dict) for entry in data):
            self.report(path, "entry-not-mapping", "every playbook/task entry must be a mapping")
            return
        if all(looks_like_play(entry) for entry in data):
            for index, play in enumerate(data):
                self.validate_play(play, f"{path}.plays[{index}]")
        elif any(looks_like_play(entry) for entry in data):
            self.report(path, "mixed-plays-and-tasks", "document mixes plays and bare tasks")
        else:
            for index, task in enumerate(data):
                self.validate_task(task, f"{path}.tasks[{index}]")

    # -- plays --------------------------------------------------------------

    def validate_play(self, play: dict, path: str) -> None:
        if "hosts" not in play:
            self.report(path, "play-missing-hosts", "a play requires a 'hosts' target")
        for key, value in play.items():
            if not isinstance(key, str):
                self.report(path, "key-not-string", f"play key {key!r} is not a string")
                continue
            if key not in PLAY_KEYWORDS:
                self.report(path, "play-unknown-keyword", f"unknown play keyword {key!r}")
                continue
            if key in PLAY_TASK_SECTIONS:
                self._validate_task_section(value, f"{path}.{key}")
            elif key == "hosts" and not isinstance(value, (str, list)):
                self.report(f"{path}.hosts", "hosts-type", "'hosts' must be a pattern string or list")
            elif key == "roles":
                self._validate_roles(value, f"{path}.roles")
            elif key == "vars" and value is not None and not isinstance(value, dict):
                self.report(f"{path}.vars", "vars-type", "'vars' must be a mapping")
            elif key == "gather_facts" and not isinstance(value, bool) and not _contains_template(value):
                self.report(f"{path}.gather_facts", "keyword-type", "'gather_facts' must be boolean")

    def _validate_task_section(self, value: object, path: str) -> None:
        if value is None:
            return
        if not isinstance(value, list):
            self.report(path, "section-not-list", "task section must be a list")
            return
        for index, entry in enumerate(value):
            if isinstance(entry, dict) and any(key in BLOCK_KEYS for key in entry):
                self.validate_block(entry, f"{path}[{index}]")
            else:
                self.validate_task(entry, f"{path}[{index}]")

    def _validate_roles(self, value: object, path: str) -> None:
        if not isinstance(value, list):
            self.report(path, "roles-not-list", "'roles' must be a list")
            return
        for index, role in enumerate(value):
            if isinstance(role, str):
                continue
            if isinstance(role, dict):
                if "role" not in role and "name" not in role:
                    self.report(f"{path}[{index}]", "role-missing-name", "role entry needs 'role' or 'name'")
            else:
                self.report(f"{path}[{index}]", "role-type", "role entry must be string or mapping")

    # -- blocks --------------------------------------------------------------

    def validate_block(self, block: dict, path: str) -> None:
        if "block" not in block:
            self.report(path, "block-missing-block", "'rescue'/'always' require a 'block' section")
        for key, value in block.items():
            if key in BLOCK_KEYS:
                self._validate_task_section(value, f"{path}.{key}")
            elif key == "name":
                if value is not None and not isinstance(value, str):
                    self.report(f"{path}.name", "name-type", "'name' must be a string")
            elif key not in TASK_KEYWORDS:
                self.report(f"{path}.{key}", "block-unknown-keyword", f"unknown block keyword {key!r}")

    # -- tasks -----------------------------------------------------------------

    def validate_task(self, task: object, path: str) -> None:
        if not isinstance(task, dict):
            self.report(path, "task-not-mapping", f"task must be a mapping, got {type(task).__name__}")
            return
        if not task:
            self.report(path, "task-empty", "empty task mapping")
            return
        module_keys = [
            key for key in task if isinstance(key, str) and key not in TASK_KEYWORDS
        ]
        for key in task:
            if not isinstance(key, str):
                self.report(path, "key-not-string", f"task key {key!r} is not a string")
        if len(module_keys) > 1:
            self.report(path, "task-multiple-modules", f"multiple module keys: {module_keys!r}")
            return
        if not module_keys:
            meaningful = set(task) - {"name", "vars", "tags", "when"}
            if not meaningful:
                self.report(path, "task-missing-module", "task names no module")
            return

        module_name = module_keys[0]
        self._validate_keywords(task, path)
        if module_name in ("action", "local_action"):
            return  # handled as keyword below
        spec = get_module(module_name)
        if spec is None:
            self.report(path, "module-unknown", f"unknown module {module_name!r}")
            return
        self._validate_args(spec, module_name, task[module_name], f"{path}.{module_name}")

    def _validate_keywords(self, task: dict, path: str) -> None:
        for key, value in task.items():
            if key == "name":
                if value is not None and not isinstance(value, str):
                    self.report(f"{path}.name", "name-type", "'name' must be a string")
            elif key == "register":
                if not isinstance(value, str) or not value.replace("_", "").isalnum():
                    self.report(f"{path}.register", "register-invalid", "'register' must be a variable name")
            elif key in ("loop", "with_items", "with_list"):
                if not isinstance(value, (list, str)) and value is not None:
                    self.report(f"{path}.{key}", "loop-type", f"{key!r} must be a list or template")
                if self.level == STRICT and key.startswith("with_"):
                    self.report(f"{path}.{key}", "deprecated-with-loop", f"{key!r} is a legacy loop form; use 'loop'")
            elif key in ("become", "ignore_errors", "run_once", "no_log", "check_mode"):
                if not isinstance(value, bool) and not _contains_template(value):
                    self.report(f"{path}.{key}", "keyword-type", f"{key!r} must be boolean")
            elif key in ("retries", "delay", "async", "poll", "throttle", "timeout"):
                if not isinstance(value, int) and not _contains_template(value):
                    self.report(f"{path}.{key}", "keyword-type", f"{key!r} must be an integer")
            elif key in ("action", "local_action") and self.level == STRICT:
                self.report(f"{path}.{key}", "historical-action", f"{key!r} indirection is a historical form")

    def _validate_args(self, spec: ModuleSpec, written_name: str, args: object, path: str) -> None:
        if args is None:
            if spec.required_parameters and self.level == STRICT and not spec.free_form:
                missing = ", ".join(p.name for p in spec.required_parameters)
                self.report(path, "args-missing-required", f"missing required option(s): {missing}")
            return
        if isinstance(args, str):
            if spec.free_form:
                return
            if looks_like_kv(args):
                if self.level == STRICT:
                    self.report(path, "historical-kv-args", "inline k=v arguments are a historical form")
                return
            self.report(path, "args-not-mapping", f"module {written_name!r} does not accept free-form arguments")
            return
        if not isinstance(args, dict):
            self.report(path, "args-type", f"module arguments must be a mapping, got {type(args).__name__}")
            return
        if spec.fqcn == "ansible.builtin.set_fact":
            # set_fact accepts arbitrary fact names as options.
            return
        for option, value in args.items():
            if not isinstance(option, str):
                self.report(path, "option-not-string", f"option {option!r} is not a string")
                continue
            parameter = spec.parameter(option)
            if parameter is None:
                if self.level == STRICT:
                    self.report(f"{path}.{option}", "args-unknown-option", f"unknown option {option!r} for {spec.fqcn}")
                continue
            if parameter.choices and not _contains_template(value):
                rendered = "yes" if value is True else "no" if value is False else value
                if not isinstance(rendered, str) or rendered not in parameter.choices:
                    if str(value) not in parameter.choices:
                        self.report(
                            f"{path}.{option}",
                            "args-bad-choice",
                            f"value {value!r} not in {parameter.choices}",
                        )
            elif parameter.type == "bool" and not isinstance(value, bool) and not _contains_template(value):
                self.report(f"{path}.{option}", "args-bad-type", f"option {option!r} must be boolean")
            elif parameter.type == "int" and not isinstance(value, int) and not _contains_template(value):
                self.report(f"{path}.{option}", "args-bad-type", f"option {option!r} must be an integer")
            elif parameter.type == "dict" and not isinstance(value, dict) and not _contains_template(value):
                self.report(f"{path}.{option}", "args-bad-type", f"option {option!r} must be a mapping")
        if self.level == STRICT:
            provided = set()
            for option in args:
                if isinstance(option, str):
                    parameter = spec.parameter(option)
                    provided.add(parameter.name if parameter else option)
            for parameter in spec.required_parameters:
                if parameter.name not in provided:
                    self.report(path, "args-missing-required", f"missing required option {parameter.name!r}")


def validate(data: object, level: str = STRICT) -> list[Violation]:
    """Validate a parsed Ansible document (playbook or task list).

    Returns the list of violations; an empty list means schema-correct at
    the requested level.
    """
    validator = _Validator(level)
    validator.validate_document(data)
    return validator.violations


def validate_task(data: object, level: str = STRICT) -> list[Violation]:
    """Validate a single task mapping."""
    validator = _Validator(level)
    if isinstance(data, dict) and any(key in BLOCK_KEYS for key in data):
        validator.validate_block(data, "$")
    else:
        validator.validate_task(data, "$")
    return validator.violations


def is_schema_correct(data: object, level: str = STRICT) -> bool:
    """Predicate form of :func:`validate`."""
    return not validate(data, level)
