"""Parsing and rendering of the legacy ``k1=v1 k2=v2`` module-argument syntax.

Old Ansible content writes module arguments inline::

    - name: Install nginx
      apt: name=nginx state=present update_cache=yes

The Ansible Aware metric normalizes this historical form into a dict before
comparing ("another normalization that is applied is to convert the old
k1=v1, k2=v2 syntax for module parameters into a dict").  Free-form modules
(``command``, ``shell``, …) additionally accept leading raw text that is not
a ``k=v`` pair; that text becomes the ``_raw_params`` pseudo-argument, the
same convention ansible-core uses internally.
"""

from __future__ import annotations

from repro.errors import FreeFormParseError
from repro.yamlio.scalars import resolve_scalar

RAW_PARAMS_KEY = "_raw_params"


def _split_tokens(text: str) -> list[str]:
    """Split on whitespace, honouring single/double quotes (shlex-lite)."""
    tokens: list[str] = []
    current: list[str] = []
    quote: str | None = None
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch in " \t":
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if quote:
        raise FreeFormParseError(f"unterminated quote in k=v arguments: {text!r}")
    if current:
        tokens.append("".join(current))
    return tokens


def _is_kv_token(token: str) -> bool:
    if "=" not in token:
        return False
    key = token.split("=", 1)[0]
    return key.replace("_", "").isalnum() and key != "" and not key[0].isdigit()


def _strip_quotes(value: str) -> str:
    if len(value) >= 2 and value[0] == value[-1] and value[0] in "'\"":
        return value[1:-1]
    return value


def parse_kv(text: str, free_form: bool = False) -> dict[str, object]:
    """Parse a ``k1=v1 k2=v2`` string into an argument dict.

    With ``free_form=True``, tokens before the first ``k=v`` pair are
    collected into :data:`RAW_PARAMS_KEY`.  Without it, a non-``k=v`` token
    raises :class:`FreeFormParseError`.

    >>> parse_kv("name=nginx state=present update_cache=yes")
    {'name': 'nginx', 'state': 'present', 'update_cache': True}
    >>> parse_kv("echo hello chdir=/tmp", free_form=True)
    {'_raw_params': 'echo hello', 'chdir': '/tmp'}
    """
    tokens = _split_tokens(text)
    arguments: dict[str, object] = {}
    raw_parts: list[str] = []
    seen_kv = False
    for token in tokens:
        if _is_kv_token(token):
            seen_kv = True
            key, value = token.split("=", 1)
            arguments[key] = resolve_scalar(_strip_quotes(value))
        elif not seen_kv and free_form:
            raw_parts.append(token)
        elif free_form:
            # Free-form text after k=v pairs: ansible treats the k=v pairs as
            # directives only at the end; keep it simple and append to raw.
            raw_parts.append(token)
        else:
            raise FreeFormParseError(
                f"token {token!r} is not k=v and module is not free-form"
            )
    if raw_parts:
        return {RAW_PARAMS_KEY: " ".join(raw_parts), **arguments}
    return arguments


def render_kv(arguments: dict[str, object]) -> str:
    """Render an argument dict back to the legacy inline string.

    Values containing spaces are double-quoted; the :data:`RAW_PARAMS_KEY`
    entry leads the string unquoted.

    >>> render_kv({'name': 'nginx', 'state': 'present'})
    'name=nginx state=present'
    """
    parts: list[str] = []
    raw = arguments.get(RAW_PARAMS_KEY)
    if raw is not None:
        parts.append(str(raw))
    for key, value in arguments.items():
        if key == RAW_PARAMS_KEY:
            continue
        if isinstance(value, bool):
            rendered = "yes" if value else "no"
        else:
            rendered = str(value)
        if " " in rendered or "\t" in rendered:
            rendered = '"' + rendered + '"'
        parts.append(f"{key}={rendered}")
    return " ".join(parts)


def looks_like_kv(text: str) -> bool:
    """Heuristic: does a string argument look like legacy ``k=v`` syntax?"""
    try:
        tokens = _split_tokens(text)
    except FreeFormParseError:
        return False
    return any(_is_kv_token(token) for token in tokens)
