"""Core layers with explicit forward/backward passes.

Each layer caches the activations its backward pass needs; calling
``backward`` before ``forward`` is a programming error and raises.  The
explicit style (rather than a tape autograd) keeps the inference path
allocation-free and lets every backward pass be verified against finite
differences in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.parameter import Parameter, normal_init, ones_init, zeros_init


class Layer:
    """Base class: parameter bookkeeping shared by all layers."""

    def parameters(self) -> list[Parameter]:
        found: list[Parameter] = []
        for value in vars(self).values():
            if isinstance(value, Parameter):
                found.append(value)
            elif isinstance(value, Layer):
                found.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Layer):
                        found.extend(item.parameters())
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def n_parameters(self) -> int:
        return sum(parameter.size for parameter in self.parameters())


class Linear(Layer):
    """Affine projection ``y = x @ W + b`` over the last axis."""

    def __init__(self, name: str, fan_in: int, fan_out: int, rng: np.random.Generator, std: float | None = None, bias: bool = True):
        std = std if std is not None else 0.02
        self.weight = Parameter(f"{name}.weight", normal_init(rng, (fan_in, fan_out), std))
        self.bias = Parameter(f"{name}.bias", zeros_init((fan_out,))) if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.shape[-1] != self.weight.data.shape[0]:
            raise ShapeError(
                f"Linear {self.weight.name}: input dim {x.shape[-1]} != {self.weight.data.shape[0]}"
            )
        if training:
            self._input = x
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError(f"Linear {self.weight.name}: backward before forward")
        x = self._input
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_x.T @ flat_grad
        if self.bias is not None:
            self.bias.grad += flat_grad.sum(axis=0)
        grad_input = grad_output @ self.weight.data.T
        self._input = None
        return grad_input


class Embedding(Layer):
    """Token-id → vector lookup."""

    def __init__(self, name: str, n_embeddings: int, dim: int, rng: np.random.Generator, std: float = 0.02):
        self.weight = Parameter(f"{name}.weight", normal_init(rng, (n_embeddings, dim), std))
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray, training: bool = True) -> np.ndarray:
        if ids.max(initial=0) >= self.weight.data.shape[0]:
            raise ShapeError(
                f"Embedding {self.weight.name}: id {int(ids.max())} out of range "
                f"{self.weight.data.shape[0]}"
            )
        if training:
            self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> None:
        if self._ids is None:
            raise RuntimeError(f"Embedding {self.weight.name}: backward before forward")
        flat_ids = self._ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        self._ids = None


class LayerNorm(Layer):
    """Layer normalization over the last axis with learned scale and shift."""

    def __init__(self, name: str, dim: int, eps: float = 1e-5):
        self.gamma = Parameter(f"{name}.gamma", ones_init((dim,)))
        self.beta = Parameter(f"{name}.beta", zeros_init((dim,)))
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(variance + self.eps)
        normalized = centered * inv_std
        if training:
            self._cache = (normalized, inv_std, centered)
        return normalized * self.gamma.data + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"LayerNorm {self.gamma.name}: backward before forward")
        normalized, inv_std, _ = self._cache
        dim = normalized.shape[-1]
        flat_norm = normalized.reshape(-1, dim)
        flat_grad = grad_output.reshape(-1, dim)
        self.gamma.grad += (flat_grad * flat_norm).sum(axis=0)
        self.beta.grad += flat_grad.sum(axis=0)
        grad_normalized = grad_output * self.gamma.data
        # d/dx of (x - mean) * inv_std, standard layernorm backward.
        mean_grad = grad_normalized.mean(axis=-1, keepdims=True)
        mean_grad_norm = (grad_normalized * normalized).mean(axis=-1, keepdims=True)
        grad_input = (grad_normalized - mean_grad - normalized * mean_grad_norm) * inv_std
        self._cache = None
        return grad_input


_GELU_C = np.float32(np.sqrt(2.0 / np.pi))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as used by GPT-family models)."""
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x * x * x)))


def gelu_backward(x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
    """Gradient of :func:`gelu` with respect to its input."""
    inner = _GELU_C * (x + 0.044715 * x * x * x)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner * tanh_inner
    d_inner = _GELU_C * (1.0 + 3.0 * 0.044715 * x * x)
    return grad_output * (0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    return exped / exped.sum(axis=axis, keepdims=True)


def softmax_inplace(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax computed in ``x``'s own storage.

    Identical values to :func:`softmax` but zero temporaries proportional
    to ``x`` — the decode hot path calls this on a reused score scratch
    buffer every step.  Returns ``x``.
    """
    np.subtract(x, x.max(axis=axis, keepdims=True), out=x)
    np.exp(x, out=x)
    np.divide(x, x.sum(axis=axis, keepdims=True), out=x)
    return x


def cross_entropy(logits: np.ndarray, targets: np.ndarray, ignore_index: int = -1) -> tuple[float, np.ndarray]:
    """Mean token cross-entropy and its gradient w.r.t. logits.

    ``logits`` has shape (..., V); ``targets`` the matching index shape with
    ``ignore_index`` marking padding positions excluded from the mean.
    """
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    valid = flat_targets != ignore_index
    n_valid = int(valid.sum())
    probabilities = softmax(flat_logits, axis=-1)
    grad = probabilities.copy()
    if n_valid == 0:
        return 0.0, np.zeros_like(logits)
    rows = np.nonzero(valid)[0]
    cols = flat_targets[rows]
    picked = probabilities[rows, cols]
    loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
    grad[rows, cols] -= 1.0
    grad[~valid] = 0.0
    grad /= n_valid
    return loss, grad.reshape(logits.shape)
