"""Rotary position embeddings (RoPE), as used by the CodeGen architecture.

Positions enter the model by rotating query/key vectors in 2-D planes, one
plane per pair of head dimensions, with plane ``i`` rotating at frequency
``base ** (-2i/D)``.  Relative offsets then fall out of the dot product —
the property that lets a model trained at one context length degrade
gracefully at another.
"""

from __future__ import annotations

import numpy as np


def rotary_tables(n_positions: int, head_dim: int, base: float = 10000.0) -> tuple[np.ndarray, np.ndarray]:
    """Precompute cos/sin tables of shape (n_positions, head_dim // 2)."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for rotary embeddings, got {head_dim}")
    inverse_frequencies = base ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)
    angles = np.outer(np.arange(n_positions, dtype=np.float64), inverse_frequencies)
    return np.cos(angles).astype(np.float32), np.sin(angles).astype(np.float32)


_SHARED_TABLES: dict[tuple[int, int, float], tuple[np.ndarray, np.ndarray]] = {}
_SHARED_TABLES_LIMIT = 32


def shared_rotary_tables(
    n_positions: int, head_dim: int, base: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """Memoized, read-only cos/sin tables shared by every attention layer.

    The tables depend only on ``(n_positions, head_dim, base)``, so one
    copy serves all layers of all models in the process instead of each
    :class:`~repro.nn.attention.CausalSelfAttention` materialising its own.
    The arrays are marked non-writeable; callers needing a private mutable
    copy should use :func:`rotary_tables`.
    """
    key = (n_positions, head_dim, base)
    tables = _SHARED_TABLES.get(key)
    if tables is None:
        cos, sin = rotary_tables(n_positions, head_dim, base)
        cos.flags.writeable = False
        sin.flags.writeable = False
        if len(_SHARED_TABLES) >= _SHARED_TABLES_LIMIT:
            _SHARED_TABLES.clear()
        tables = _SHARED_TABLES[key] = (cos, sin)
    return tables


def apply_rotary(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate ``x`` of shape (B, H, T, D) using tables sliced to T rows.

    Even/odd dimension pairs form the rotation planes::

        out[2i]   = x[2i] * cos_i - x[2i+1] * sin_i
        out[2i+1] = x[2i] * sin_i + x[2i+1] * cos_i
    """
    even = x[..., 0::2]
    odd = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = even * cos - odd * sin
    out[..., 1::2] = even * sin + odd * cos
    return out


def apply_rotary_backward(grad_output: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Gradient of :func:`apply_rotary`: rotation by the opposite angle."""
    grad_even = grad_output[..., 0::2]
    grad_odd = grad_output[..., 1::2]
    grad_input = np.empty_like(grad_output)
    grad_input[..., 0::2] = grad_even * cos + grad_odd * sin
    grad_input[..., 1::2] = -grad_even * sin + grad_odd * cos
    return grad_input
