"""Numpy neural-network substrate: layers, transformer, optimizer, sampling."""

from repro.nn.attention import CausalSelfAttention, KVCache, causal_mask
from repro.nn.kv_arena import DenseKVCache, KVArena, SlabRef, default_arena
from repro.nn.layers import (
    Embedding,
    Layer,
    LayerNorm,
    Linear,
    cross_entropy,
    gelu,
    gelu_backward,
    softmax,
    softmax_inplace,
)
from repro.nn.optim import Adam, CosineSchedule, LinearSchedule, clip_grad_norm
from repro.nn.parameter import Parameter, numpy_rng
from repro.nn.rotary import apply_rotary, apply_rotary_backward, rotary_tables, shared_rotary_tables
from repro.nn.sampling import (
    GenerationResult,
    generate_beam,
    generate_greedy,
    generate_sampled,
    plan_prompt,
)
from repro.nn.transformer import Block, DecoderLM, Mlp, TransformerConfig

__all__ = [
    "CausalSelfAttention",
    "KVCache",
    "causal_mask",
    "DenseKVCache",
    "KVArena",
    "SlabRef",
    "default_arena",
    "Embedding",
    "Layer",
    "LayerNorm",
    "Linear",
    "cross_entropy",
    "gelu",
    "gelu_backward",
    "softmax",
    "softmax_inplace",
    "Adam",
    "CosineSchedule",
    "LinearSchedule",
    "clip_grad_norm",
    "Parameter",
    "numpy_rng",
    "apply_rotary",
    "apply_rotary_backward",
    "rotary_tables",
    "shared_rotary_tables",
    "GenerationResult",
    "generate_beam",
    "generate_greedy",
    "generate_sampled",
    "plan_prompt",
    "Block",
    "DecoderLM",
    "Mlp",
    "TransformerConfig",
]
