"""Paged KV-cache arena: preallocated block storage with copy-on-write sharing.

The decode hot path used to pay O(T) memory traffic per generated token per
layer just to *store* one new K/V column: ``np.concatenate`` reallocates and
copies the whole cache on every append, so a length-T generation moves
O(T^2) bytes per layer before attention reads a single key.  This module
replaces that with an arena of reusable storage slabs:

* :class:`KVArena` — the allocator.  It hands out :class:`ArenaSlab`
  objects whose capacity is rounded up to a whole number of fixed-size
  token *blocks* and pools released slabs for reuse, so steady-state
  serving recycles memory instead of churning the allocator.  One arena is
  shared by every layer and every request of an engine.
* :class:`ArenaSlab` — refcounted K/V storage for one sequence batch:
  ``k``/``v`` arrays of shape ``(B, H, capacity, D)`` plus an optional
  float32 score scratch buffer reused by the decode softmax.
* :class:`KVCache` — the per-layer cache handle the transformer decodes
  through.  ``append`` writes new columns **in place**; capacity grows
  geometrically (amortised O(1) copies per token); ``keys``/``values``
  are zero-copy views.
* :class:`SlabRef` — a read-only claim on a slab prefix, the currency of
  the prefix cache.  Sharing is **copy-on-write**: a continuation that
  appends right at the frozen high-water mark of an otherwise writer-free
  slab extends it in place (the dominant "playbook buffer grew by a few
  tokens" pattern costs zero copies); a continuation that would overwrite
  another claim's columns copies its own prefix out first.

Storage dtype is a knob: ``KVArena(dtype=np.float16)`` stores K/V in
half precision (halving resident cache bytes) while all attention math
stays float32 — reads convert on the fly, trading one O(T) upcast per
step for half the memory footprint.

:class:`DenseKVCache` preserves the pre-arena concatenate-on-append
behaviour for equivalence tests and benchmarks.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ShapeError
from repro.faults.inject import fire

DEFAULT_BLOCK_SIZE = 32

#: Storage dtypes the arena accepts; compute is always float32.
SUPPORTED_KV_DTYPES = (np.dtype(np.float32), np.dtype(np.float16))


class ArenaSlab:
    """Refcounted K/V storage for one sequence batch over ``capacity`` columns.

    ``refcount`` counts every live claim (cache handles and prefix-cache
    refs); ``writers`` counts handles allowed to append in place (at most
    one); ``frozen`` is the highest column claimed by any read-only
    sharer — in-place writes below it are forbidden.
    """

    __slots__ = ("arena", "k", "v", "scores", "capacity", "refcount", "writers", "frozen", "managed")

    def __init__(self) -> None:
        self.arena: "KVArena | None" = None
        self.k: np.ndarray | None = None
        self.v: np.ndarray | None = None
        self.scores: np.ndarray | None = None
        self.capacity = 0
        self.refcount = 0
        self.writers = 0
        self.frozen = 0
        self.managed = False

    @property
    def nbytes(self) -> int:
        total = 0
        if self.k is not None:
            total += self.k.nbytes
        if self.v is not None:
            total += self.v.nbytes
        return total

    def __del__(self) -> None:
        # A slab garbage-collected with live claims (its caches were
        # dropped without release()) must still surrender its byte
        # accounting, or ``bytes_in_use`` drifts upward forever.
        try:
            if self.managed and self.refcount > 0 and self.arena is not None:
                self.arena._forget(self)
        except Exception:
            pass  # interpreter shutdown


class SlabRef:
    """A read-only claim on the first ``length`` columns of a slab.

    What the prefix cache stores instead of K/V copies: holding a ref
    keeps the slab (and its first ``length`` columns) alive and immutable;
    :meth:`alias` mints :class:`KVCache` reader handles over the claim.
    """

    __slots__ = ("slab", "length", "_released")

    def __init__(self, slab: ArenaSlab, length: int):
        self.slab = slab
        self.length = length
        self._released = False

    def alias(self, length: int | None = None) -> "KVCache":
        """A fresh reader cache over the first ``length`` claimed columns."""
        if self._released:
            raise ShapeError("alias of a released SlabRef")
        use = self.length if length is None else length
        if use > self.length:
            raise ShapeError(f"alias length {use} exceeds claimed {self.length}")
        cache = KVCache.__new__(KVCache)
        cache._arena = self.slab.arena
        cache._slab = self.slab
        cache._length = use
        cache._writer = False
        cache.last_append_moved_bytes = 0
        self.slab.refcount += 1
        return cache

    def release(self) -> None:
        """Drop the claim; idempotent."""
        if not self._released:
            self._released = True
            self.slab.arena.release(self.slab)


class KVArena:
    """Block-granular slab allocator shared across layers and requests."""

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        dtype: np.dtype | str = np.float32,
        max_pooled: int = 64,
    ):
        if block_size < 1:
            raise ShapeError(f"block_size must be >= 1, got {block_size}")
        dtype = np.dtype(dtype)
        if dtype not in SUPPORTED_KV_DTYPES:
            raise ShapeError(f"kv dtype must be float32 or float16, got {dtype}")
        self.block_size = block_size
        self.dtype = dtype
        self._pool: dict[tuple[int, int, int, int], list[ArenaSlab]] = {}
        self._pooled = 0
        self._max_pooled = max_pooled
        self._lock = threading.Lock()
        # -- lifetime counters (monotonic) --
        self.slabs_allocated = 0
        self.slabs_reused = 0
        self.bytes_allocated = 0
        self.bytes_copied = 0  # growth + copy-on-write + batch reshape copies
        self.appends = 0
        self.grow_copies = 0
        self.cow_copies = 0
        # -- occupancy (approximate: slabs dropped by GC are reconciled lazily) --
        self.bytes_in_use = 0
        self.peak_bytes_in_use = 0

    def round_up(self, tokens: int) -> int:
        """Smallest whole-block capacity covering ``tokens`` columns."""
        blocks = (max(1, tokens) + self.block_size - 1) // self.block_size
        return blocks * self.block_size

    def acquire(self, batch: int, heads: int, head_dim: int, min_tokens: int) -> ArenaSlab:
        """A writable slab of at least ``min_tokens`` columns (block-rounded)."""
        # Fault seam: chaos schedules model allocation failure here (the
        # engine shields batch-reshape acquires; see repro.faults.inject).
        fire("kv_arena.acquire", batch=batch, min_tokens=min_tokens)
        capacity = self.round_up(min_tokens)
        key = (batch, heads, capacity, head_dim)
        slab: ArenaSlab | None = None
        with self._lock:
            stack = self._pool.get(key)
            if stack:
                slab = stack.pop()
                self._pooled -= 1
        if slab is not None:
            self.slabs_reused += 1
        else:
            slab = ArenaSlab()
            slab.arena = self
            slab.k = np.empty((batch, heads, capacity, head_dim), dtype=self.dtype)
            slab.v = np.empty((batch, heads, capacity, head_dim), dtype=self.dtype)
            slab.capacity = capacity
            slab.managed = True
            self.slabs_allocated += 1
            self.bytes_allocated += slab.nbytes
        slab.refcount = 1
        slab.writers = 1
        slab.frozen = 0
        self.bytes_in_use += slab.nbytes
        if self.bytes_in_use > self.peak_bytes_in_use:
            self.peak_bytes_in_use = self.bytes_in_use
        return slab

    def adopt(self) -> ArenaSlab:
        """An empty unmanaged slab wrapping caller-provided arrays.

        Used by the ``KVCache.keys``/``values`` setters; unmanaged slabs
        are never pooled and excluded from byte accounting.
        """
        slab = ArenaSlab()
        slab.arena = self
        slab.refcount = 1
        slab.writers = 1
        return slab

    def release(self, slab: ArenaSlab) -> None:
        """Drop one claim; pool the slab once the last claim is gone."""
        slab.refcount -= 1
        if slab.refcount > 0:
            return
        slab.writers = 0
        slab.frozen = 0
        if not slab.managed:
            return
        self.bytes_in_use -= slab.nbytes
        key = (slab.k.shape[0], slab.k.shape[1], slab.capacity, slab.k.shape[3])
        with self._lock:
            if self._pooled < self._max_pooled:
                self._pool.setdefault(key, []).append(slab)
                self._pooled += 1

    def _forget(self, slab: ArenaSlab) -> None:
        """Reconcile byte accounting for a slab dropped without release."""
        self.bytes_in_use -= slab.nbytes
        slab.refcount = 0

    def stats(self) -> dict:
        """JSON-ready allocator counters for engine/serving stats."""
        return {
            "block_size": self.block_size,
            "dtype": self.dtype.name,
            "slabs_allocated": self.slabs_allocated,
            "slabs_reused": self.slabs_reused,
            "slabs_pooled": self._pooled,
            "bytes_allocated": self.bytes_allocated,
            "bytes_in_use": self.bytes_in_use,
            "peak_bytes_in_use": self.peak_bytes_in_use,
            "bytes_copied": self.bytes_copied,
            "appends": self.appends,
            "grow_copies": self.grow_copies,
            "cow_copies": self.cow_copies,
        }


_DEFAULT_ARENA: KVArena | None = None


def default_arena() -> KVArena:
    """The process-wide arena used by caches constructed without one."""
    global _DEFAULT_ARENA
    if _DEFAULT_ARENA is None:
        _DEFAULT_ARENA = KVArena()
    return _DEFAULT_ARENA


class KVCache:
    """Per-layer accumulated keys/values for incremental decoding.

    A handle over arena-owned storage: ``append`` writes new columns in
    place (never ``np.concatenate``), growing capacity geometrically in
    whole blocks when exhausted, and honouring copy-on-write when the
    underlying slab is shared with the prefix cache or a sibling request.
    ``keys``/``values`` keep the historical array-attribute interface:
    reading yields views (copies when that is the only way to stay
    isolated from sharers), assigning adopts the array as fresh exclusive
    storage.
    """

    __slots__ = ("_arena", "_slab", "_length", "_writer", "last_append_moved_bytes")

    def __init__(self, arena: KVArena | None = None) -> None:
        self._arena = arena if arena is not None else default_arena()
        self._slab: ArenaSlab | None = None
        self._length = 0
        self._writer = False
        #: Bytes physically moved (read+write) by the most recent append —
        #: O(new columns) in place, O(length) when growth or COW copied.
        self.last_append_moved_bytes = 0

    # -- introspection -------------------------------------------------------

    @property
    def length(self) -> int:
        return self._length

    @property
    def batch_size(self) -> int:
        return 0 if self._slab is None or self._slab.k is None else self._slab.k.shape[0]

    @property
    def capacity(self) -> int:
        return 0 if self._slab is None else self._slab.capacity

    @property
    def is_shared(self) -> bool:
        return self._slab is not None and self._slab.refcount > 1

    def _exclusive(self) -> bool:
        return self._writer and self._slab is not None and self._slab.refcount == 1

    # -- array-attribute compatibility ---------------------------------------

    def _read(self, array: np.ndarray | None) -> np.ndarray | None:
        if array is None:
            return None
        view = array[:, :, : self._length]
        if view.dtype != np.float32:
            return view.astype(np.float32)
        if not self._exclusive():
            return view.copy()  # isolate sharers from caller mutation
        return view

    @property
    def keys(self) -> np.ndarray | None:
        return None if self._slab is None else self._read(self._slab.k)

    @property
    def values(self) -> np.ndarray | None:
        return None if self._slab is None else self._read(self._slab.v)

    def _adopt_slot(self, array: np.ndarray, slot: str) -> None:
        if array.ndim != 4:
            raise ShapeError(f"cache arrays must be (B, H, T, D), got shape {array.shape}")
        array = np.ascontiguousarray(array, dtype=self._arena.dtype)
        slab = self._slab
        if slab is None or slab.managed or not self._exclusive():
            self.release()
            slab = self._slab = self._arena.adopt()
            self._writer = True
        setattr(slab, slot, array)
        slab.capacity = array.shape[2]
        slab.scores = None
        self._length = array.shape[2]

    @keys.setter
    def keys(self, array: np.ndarray | None) -> None:
        if array is None:
            self.release()
        else:
            self._adopt_slot(array, "k")

    @values.setter
    def values(self, array: np.ndarray | None) -> None:
        if array is None:
            self.release()
        else:
            self._adopt_slot(array, "v")

    # -- the hot path --------------------------------------------------------

    def view(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Zero-copy ``(keys, values)`` views over the live columns.

        In float16 storage mode the views are upcast to float32 for
        compute (one O(T) conversion — the documented fp16 tradeoff).
        """
        slab = self._slab
        if slab is None or slab.k is None:
            return None, None
        k = slab.k[:, :, : self._length]
        v = slab.v[:, :, : self._length]
        if k.dtype != np.float32:
            k = k.astype(np.float32)
            v = v.astype(np.float32)
        return k, v

    def append(self, keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Write ``keys``/``values`` columns in place; return full views.

        In-place unless capacity is exhausted (geometric growth, amortised
        O(1) copies per token) or the slab is shared in a way that makes
        the write unsafe (copy-on-write: the cache copies its own prefix
        to a fresh slab, leaving every sharer's view intact).  A reader
        whose view already spans the slab's frozen columns promotes to the
        writer when the seat is free — the extend-the-prompt serving
        pattern appends with zero copies.
        """
        if keys.ndim != 4 or keys.shape != values.shape:
            raise ShapeError(f"append shapes {keys.shape} vs {values.shape} must match (B, H, T, D)")
        batch, heads, new, head_dim = keys.shape
        arena = self._arena
        slab = self._slab
        length = self._length
        needed = length + new
        moved = 0
        if slab is not None and slab.k is not None and slab.k.shape[0] != batch:
            raise ShapeError(f"append batch {batch} != cache batch {slab.k.shape[0]}")
        if slab is None:
            slab = self._slab = arena.acquire(batch, heads, head_dim, needed)
            self._writer = True
        else:
            in_place = needed <= slab.capacity
            if in_place and not self._writer:
                if slab.writers == 0 and length >= slab.frozen:
                    slab.writers = 1
                    self._writer = True
                else:
                    in_place = False
            if not in_place:
                if slab.refcount > 1 and not self._writer:
                    target = max(needed, slab.capacity)
                    arena.cow_copies += 1
                else:
                    target = max(needed, 2 * slab.capacity)
                    arena.grow_copies += 1
                grown = arena.acquire(batch, heads, head_dim, target)
                if length:
                    grown.k[:, :, :length] = slab.k[:, :, :length]
                    grown.v[:, :, :length] = slab.v[:, :, :length]
                    copied = 2 * length * batch * heads * head_dim * grown.k.itemsize
                    arena.bytes_copied += copied
                    moved += 2 * copied
                if self._writer:
                    slab.writers -= 1
                arena.release(slab)
                slab = self._slab = grown
                self._writer = True
        slab.k[:, :, length:needed] = keys
        slab.v[:, :, length:needed] = values
        self._length = needed
        arena.appends += 1
        moved += 4 * new * batch * heads * head_dim * slab.k.itemsize  # read+write, K and V
        self.last_append_moved_bytes = moved
        return self.view()

    def decode_scores(self, heads: int) -> np.ndarray | None:
        """Reusable float32 score buffer of shape (B, H, 1, length).

        Backs the allocation-free single-token attention step: the score
        matmul writes here via ``out=`` and the softmax runs in place.
        """
        slab = self._slab
        if slab is None or slab.k is None:
            return None
        batch = slab.k.shape[0]
        scores = slab.scores
        if scores is None or scores.shape[0] != batch or scores.shape[1] != heads:
            scores = slab.scores = np.empty((batch, heads, 1, slab.capacity), dtype=np.float32)
        return scores[:, :, :, : self._length]

    # -- sharing (prefix cache) ----------------------------------------------

    def share(self, length: int) -> SlabRef:
        """A read-only claim on the first ``length`` columns — zero copies.

        Freezes those columns: any sharer (including this cache) may keep
        appending *beyond* them in place, but a write below the frozen
        mark forces copy-on-write.
        """
        slab = self._slab
        if slab is None or length > self._length:
            raise ShapeError(f"cannot share {length} columns of a length-{self._length} cache")
        slab.refcount += 1
        if length > slab.frozen:
            slab.frozen = length
        return SlabRef(slab, length)

    # -- batch layout (engine) -----------------------------------------------

    def take_from(self, other: "KVCache") -> None:
        """Steal ``other``'s storage (zero copy); ``other`` is left empty."""
        self.release()
        self._slab = other._slab
        self._length = other._length
        self._writer = other._writer
        other._slab = None
        other._length = 0
        other._writer = False

    def merge_row(self, own: "KVCache", width: int) -> None:
        """Admit batch-1 ``own`` as a new bottom row, right-aligned at ``width``.

        Copies both operands into a fresh ``(B+1, ...)`` slab (one copy per
        admission event, never per decode step) with zeroed padding columns.
        """
        slab = self._slab
        if slab is None or own._slab is None:
            raise ShapeError("merge_row requires both caches to hold storage")
        if own.batch_size != 1:
            raise ShapeError(f"merge_row admits batch-1 rows, got batch {own.batch_size}")
        batch = slab.k.shape[0]
        heads, head_dim = slab.k.shape[1], slab.k.shape[3]
        length = self._length
        own_length = own._length
        arena = self._arena
        grown = arena.acquire(batch + 1, heads, head_dim, width)
        pad_old = width - length
        pad_new = width - own_length
        if pad_old:
            grown.k[:batch, :, :pad_old] = 0
            grown.v[:batch, :, :pad_old] = 0
        grown.k[:batch, :, pad_old:width] = slab.k[:, :, :length]
        grown.v[:batch, :, pad_old:width] = slab.v[:, :, :length]
        if pad_new:
            grown.k[batch, :, :pad_new] = 0
            grown.v[batch, :, :pad_new] = 0
        grown.k[batch, :, pad_new:width] = own._slab.k[0, :, :own_length]
        grown.v[batch, :, pad_new:width] = own._slab.v[0, :, :own_length]
        arena.bytes_copied += 2 * (batch * length + own_length) * heads * head_dim * grown.k.itemsize
        if self._writer:
            slab.writers -= 1
        arena.release(slab)
        self._slab = grown
        self._length = width
        self._writer = True

    def select_rows(self, keep: list[int], trim: int) -> None:
        """Retain ``keep`` rows and drop ``trim`` leading (all-pad) columns."""
        slab = self._slab
        if slab is None:
            raise ShapeError("select_rows on an empty cache")
        heads, head_dim = slab.k.shape[1], slab.k.shape[3]
        new_length = self._length - trim
        arena = self._arena
        grown = arena.acquire(len(keep), heads, head_dim, new_length)
        for row, source in enumerate(keep):
            grown.k[row, :, :new_length] = slab.k[source, :, trim : self._length]
            grown.v[row, :, :new_length] = slab.v[source, :, trim : self._length]
        arena.bytes_copied += 2 * len(keep) * new_length * heads * head_dim * grown.k.itemsize
        if self._writer:
            slab.writers -= 1
        arena.release(slab)
        self._slab = grown
        self._length = new_length
        self._writer = True

    # -- speculative rollback (engine) ---------------------------------------

    def truncate(self, length: int) -> None:
        """Roll the live window back to ``length`` columns — zero copies.

        The speculative-decode rollback: verified-and-rejected columns are
        simply forgotten (the next append overwrites them).  COW safety:
        truncating *below* the slab's frozen mark while sharers hold claims
        on those columns relinquishes the writer seat, so a later append —
        which would otherwise write over frozen, shared columns — takes the
        copy-on-write path instead of corrupting the sharers' view.  With
        an exclusive claim the frozen mark is stale (every sharer already
        released) and is clamped so in-place appends resume.
        """
        if length < 0 or length > self._length:
            raise ShapeError(f"cannot truncate length-{self._length} cache to {length}")
        if length == self._length:
            return
        self._length = length
        slab = self._slab
        if slab is None:
            return
        if slab.refcount == 1:
            if slab.frozen > length:
                slab.frozen = length
        elif self._writer and slab.frozen > length:
            slab.writers -= 1
            self._writer = False

    def realign_rows(self, spans: list[tuple[int, int]]) -> None:
        """Re-pack each row's span right-aligned at ``max(count)`` columns.

        ``spans[b] = (start, count)`` names row *b*'s live columns in the
        current layout.  Restores the engine's left-padded invariant after
        a speculative step accepted different lengths per row: every row
        keeps its own accepted columns, padding is zeroed, and the copy
        lands in a fresh slab (COW-safe by construction — sharers of the
        old slab are untouched).  One O(batch x length) copy per
        mixed-acceptance step, never per token.
        """
        slab = self._slab
        if slab is None:
            raise ShapeError("realign_rows on an empty cache")
        batch = slab.k.shape[0]
        if len(spans) != batch:
            raise ShapeError(f"realign_rows got {len(spans)} spans for batch {batch}")
        heads, head_dim = slab.k.shape[1], slab.k.shape[3]
        new_length = max(count for _, count in spans)
        arena = self._arena
        grown = arena.acquire(batch, heads, head_dim, new_length)
        copied_columns = 0
        for row, (start, count) in enumerate(spans):
            if start < 0 or count < 1 or start + count > self._length:
                raise ShapeError(
                    f"span ({start}, {count}) outside length-{self._length} cache"
                )
            pad = new_length - count
            if pad:
                grown.k[row, :, :pad] = 0
                grown.v[row, :, :pad] = 0
            grown.k[row, :, pad:new_length] = slab.k[row, :, start : start + count]
            grown.v[row, :, pad:new_length] = slab.v[row, :, start : start + count]
            copied_columns += count
        arena.bytes_copied += 2 * copied_columns * heads * head_dim * grown.k.itemsize
        if self._writer:
            slab.writers -= 1
        arena.release(slab)
        self._slab = grown
        self._length = new_length
        self._writer = True

    def release(self) -> None:
        """Return the storage claim to the arena; the cache becomes empty."""
        slab = self._slab
        if slab is None:
            return
        if self._writer:
            slab.writers -= 1
        self._slab = None
        self._length = 0
        self._writer = False
        self._arena.release(slab)


class DenseKVCache:
    """The pre-arena concatenate-on-append cache, kept as the reference path.

    Every append reallocates and copies the whole accumulated K/V — O(T)
    traffic per decode step, O(T^2) per generated sequence.  Equivalence
    tests decode through both implementations and compare token-for-token;
    ``benchmarks/test_kv_arena.py`` measures the speedup of retiring it.
    """

    def __init__(self) -> None:
        self.keys: np.ndarray | None = None
        self.values: np.ndarray | None = None
        self.last_append_moved_bytes = 0

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]

    def view(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        return self.keys, self.values

    def append(self, keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.keys is None:
            self.keys, self.values = keys, values
        else:
            self.keys = np.concatenate([self.keys, keys], axis=2)
            self.values = np.concatenate([self.values, values], axis=2)
        # The concatenate read and wrote every accumulated element.
        self.last_append_moved_bytes = 2 * (self.keys.nbytes + self.values.nbytes)
        return self.keys, self.values

    def truncate(self, length: int) -> None:
        """Reference rollback: slice the accumulated arrays."""
        if length < 0 or length > self.length:
            raise ShapeError(f"cannot truncate length-{self.length} cache to {length}")
        if self.keys is not None:
            self.keys = self.keys[:, :, :length]
            self.values = self.values[:, :, :length]
