"""Causal multi-head self-attention with rotary position embeddings.

Matches the attention used by the CodeGen family: rotary-embedded queries
and keys, scaled dot product, causal mask, learned output projection.  The
layer supports an inference-time key/value cache so generation costs
O(T) per new token instead of O(T^2).

The decode hot path is allocation-free by design: K/V columns append in
place into arena slabs (:mod:`repro.nn.kv_arena`), causal masks come from
a memoized table keyed by ``(new_length, total, diagonal)``, rotary
cos/sin tables are shared process-wide, the score matmul writes into a
per-slab scratch buffer and masking + softmax run in place on it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.kv_arena import DenseKVCache, KVArena, KVCache, default_arena  # noqa: F401 — re-exported
from repro.nn.layers import Layer, Linear, softmax, softmax_inplace
from repro.nn.rotary import apply_rotary, apply_rotary_backward, shared_rotary_tables

NEG_INF = np.float32(-1e9)

_MASK_CACHE: dict[tuple[int, int, int], np.ndarray | None] = {}
_MASK_CACHE_LIMIT = 512


def causal_mask(new_length: int, total: int, diagonal: int) -> np.ndarray | None:
    """Memoized boolean mask: True where query ``i`` must not see key ``j``.

    Equivalent to ``np.triu(np.ones((new_length, total), bool), k=diagonal)``
    but built once per shape instead of once per forward call.  Returns
    ``None`` when the mask would be all-False (every single-token decode
    step: ``diagonal == total``), letting callers skip masking entirely.
    The cached arrays are read-only.
    """
    key = (new_length, total, diagonal)
    try:
        return _MASK_CACHE[key]
    except KeyError:
        pass
    mask = np.triu(np.ones((new_length, total), dtype=bool), k=diagonal)
    entry: np.ndarray | None = mask if mask.any() else None
    if entry is not None:
        entry.flags.writeable = False
    if len(_MASK_CACHE) >= _MASK_CACHE_LIMIT:
        _MASK_CACHE.clear()
    _MASK_CACHE[key] = entry
    return entry


class CausalSelfAttention(Layer):
    """Multi-head causal self-attention block."""

    def __init__(self, name: str, dim: int, n_heads: int, n_positions: int, rng: np.random.Generator, std: float = 0.02):
        if dim % n_heads != 0:
            raise ShapeError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.n_positions = n_positions
        self.query_proj = Linear(f"{name}.q", dim, dim, rng, std=std, bias=False)
        self.key_proj = Linear(f"{name}.k", dim, dim, rng, std=std, bias=False)
        self.value_proj = Linear(f"{name}.v", dim, dim, rng, std=std, bias=False)
        self.out_proj = Linear(f"{name}.o", dim, dim, rng, std=std)
        self._cos, self._sin = shared_rotary_tables(n_positions, self.head_dim)
        self._cache: dict[str, np.ndarray] | None = None

    # -- shape helpers -----------------------------------------------------

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

    # -- training path -----------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        batch, length, _ = x.shape
        if length > self.n_positions:
            raise ShapeError(f"sequence length {length} exceeds n_positions {self.n_positions}")
        queries = self._split_heads(self.query_proj.forward(x, training))
        keys = self._split_heads(self.key_proj.forward(x, training))
        values = self._split_heads(self.value_proj.forward(x, training))

        cos = self._cos[:length][None, None]
        sin = self._sin[:length][None, None]
        rotated_queries = apply_rotary(queries, cos, sin)
        rotated_keys = apply_rotary(keys, cos, sin)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (rotated_queries @ rotated_keys.transpose(0, 1, 3, 2)) * scale
        causal = causal_mask(length, length, 1)
        if causal is not None:
            np.copyto(scores, NEG_INF, where=causal)
        weights = softmax(scores, axis=-1)
        context = weights @ values
        merged = self._merge_heads(context)
        out = self.out_proj.forward(merged, training)
        if training:
            self._cache = {
                "rotated_queries": rotated_queries,
                "rotated_keys": rotated_keys,
                "values": values,
                "weights": weights,
                "cos": cos,
                "sin": sin,
            }
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("attention backward before forward")
        cache = self._cache
        grad_merged = self.out_proj.backward(grad_output)
        batch, length, _ = grad_merged.shape
        grad_context = grad_merged.reshape(batch, length, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

        weights = cache["weights"]
        grad_weights = grad_context @ cache["values"].transpose(0, 1, 3, 2)
        grad_values = weights.transpose(0, 1, 3, 2) @ grad_context

        # softmax backward (per row)
        weighted = (grad_weights * weights).sum(axis=-1, keepdims=True)
        grad_scores = weights * (grad_weights - weighted)
        scale = 1.0 / np.sqrt(self.head_dim)
        grad_scores *= scale

        grad_rotated_queries = grad_scores @ cache["rotated_keys"]
        grad_rotated_keys = grad_scores.transpose(0, 1, 3, 2) @ cache["rotated_queries"]

        grad_queries = apply_rotary_backward(grad_rotated_queries, cache["cos"], cache["sin"])
        grad_keys = apply_rotary_backward(grad_rotated_keys, cache["cos"], cache["sin"])

        grad_input = self.query_proj.backward(self._merge_heads(grad_queries))
        grad_input += self.key_proj.backward(self._merge_heads(grad_keys))
        grad_input += self.value_proj.backward(self._merge_heads(grad_values))
        self._cache = None
        return grad_input

    # -- inference path -----------------------------------------------------

    def forward_incremental(
        self,
        x: np.ndarray,
        kv_cache: KVCache,
        positions: np.ndarray | None = None,
        key_padding_mask: np.ndarray | None = None,
        rope: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Inference forward for the new suffix ``x``, reusing cached K/V.

        ``x`` holds only positions not yet in the cache; returns the
        attention output for those positions.

        Batched decoding over rows with *different* real lengths uses a
        left-padded cache layout: every row's valid keys are right-aligned
        in the cache, padding columns sit on the left.  Two optional
        arguments support that layout:

        * ``positions`` — int array of shape ``(batch, new_length)`` giving
          each new token's rotary position (its index within its own row's
          real, unpadded sequence).  Defaults to the shared cache offsets
          ``offset .. offset + new_length``.
        * ``key_padding_mask`` — bool array of shape ``(batch, total)``
          over the post-append cache columns; ``True`` marks padding
          columns that no query may attend to.

        ``rope`` optionally passes pre-gathered ``(cos, sin)`` slices so a
        multi-layer model pays the rotary table gather once per step
        instead of once per layer (:meth:`DecoderLM.forward_incremental`
        does this); when given, it overrides ``positions`` for the rotary
        math.

        Padding columns receive weight exactly 0.0 after the softmax (the
        ``NEG_INF`` score underflows), so a padded batched forward is
        numerically equivalent to per-row unpadded forwards up to float
        summation order.

        Single-token steps through an arena-backed :class:`KVCache` are
        allocation-free: scores target the slab's scratch buffer, the
        causal mask is vacuous and skipped, masked fill and softmax run in
        place.
        """
        batch, new_length, _ = x.shape
        offset = kv_cache.length
        total = offset + new_length
        if total > self.n_positions:
            raise ShapeError(
                f"cache {offset} + new {new_length} exceeds n_positions {self.n_positions}"
            )
        queries = self._split_heads(self.query_proj.forward(x, training=False))
        keys = self._split_heads(self.key_proj.forward(x, training=False))
        values = self._split_heads(self.value_proj.forward(x, training=False))

        if rope is not None:
            cos_new, sin_new = rope
        elif positions is None:
            cos_new = self._cos[offset:total][None, None]
            sin_new = self._sin[offset:total][None, None]
        else:
            positions = np.asarray(positions, dtype=np.int64)
            if positions.shape != (batch, new_length):
                raise ShapeError(
                    f"positions shape {positions.shape} != (batch, new) {(batch, new_length)}"
                )
            if positions.size and int(positions.max()) >= self.n_positions:
                raise ShapeError(
                    f"position {int(positions.max())} exceeds n_positions {self.n_positions}"
                )
            cos_new = self._cos[positions][:, None]  # (B, 1, T_new, rot)
            sin_new = self._sin[positions][:, None]
        rotated_queries = apply_rotary(queries, cos_new, sin_new)
        rotated_keys = apply_rotary(keys, cos_new, sin_new)

        all_keys, all_values = kv_cache.append(rotated_keys, values)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = None
        if new_length == 1:
            scratch = getattr(kv_cache, "decode_scores", None)
            if scratch is not None:
                scores = scratch(self.n_heads)
        if scores is not None:
            np.matmul(rotated_queries, all_keys.transpose(0, 1, 3, 2), out=scores)
            scores *= scale
        else:
            scores = (rotated_queries @ all_keys.transpose(0, 1, 3, 2)) * scale
        causal = causal_mask(new_length, total, offset + 1)
        if causal is not None:
            np.copyto(scores, NEG_INF, where=causal)
        if key_padding_mask is not None:
            key_padding_mask = np.asarray(key_padding_mask, dtype=bool)
            if key_padding_mask.shape != (batch, total):
                raise ShapeError(
                    f"key_padding_mask shape {key_padding_mask.shape} != (batch, total) {(batch, total)}"
                )
            np.copyto(scores, NEG_INF, where=key_padding_mask[:, None, None, :])
        weights = softmax_inplace(scores)
        context = weights @ all_values
        return self.out_proj.forward(self._merge_heads(context), training=False)
