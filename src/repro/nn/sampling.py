"""Decoding strategies over a :class:`repro.nn.transformer.DecoderLM`.

The paper evaluates with greedy decoding ("all results presented thereafter
were obtained using greedy decoding.  We would expect some improvement by
using random sampling or beam search"); greedy, temperature/top-k sampling,
and beam search are all provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GenerationError
from repro.nn.transformer import DecoderLM
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class GenerationResult:
    """Token ids produced after the prompt, plus the stop reason.

    ``effective_budget`` is the number of tokens the decode loop could
    actually produce once the (possibly truncated) prompt claimed its share
    of the context window — ``min(max_new_tokens, n_positions - len(prompt))``.
    When it is smaller than the requested ``max_new_tokens`` the generation
    ends with ``context_full`` rather than ``max_tokens``.
    """

    token_ids: list[int]
    stop_reason: str  # "stop_token" | "max_tokens" | "context_full"
    effective_budget: int = 0


def plan_prompt(window: int, prompt_ids: list[int], max_new_tokens: int) -> tuple[list[int], int]:
    """Left-truncate a prompt into ``window`` while reserving decode room.

    The paper's inference setup left-truncates long prompts; a naive
    truncation to ``window - 1`` leaves room for exactly one new token, so
    a long prompt with a large ``max_new_tokens`` silently stopped with
    ``context_full`` after a single token.  Instead we reserve
    ``min(max_new_tokens, window // 2)`` positions for generation — the
    full requested budget when it fits, never more than half the window so
    a greedy budget cannot erase the prompt context.

    Returns the truncated prompt and the effective token budget.
    """
    if max_new_tokens < 1:
        raise GenerationError(f"max_new_tokens must be >= 1, got {max_new_tokens}")
    reserved = min(max_new_tokens, max(1, window // 2))
    keep = window - reserved
    if len(prompt_ids) > keep:
        # Left truncation, as in the paper's inference setup.
        prompt_ids = prompt_ids[len(prompt_ids) - keep:]
    if not prompt_ids:
        raise GenerationError("prompt is empty after truncation")
    effective_budget = min(max_new_tokens, window - len(prompt_ids))
    return list(prompt_ids), effective_budget


def _prepare_prompt(model: DecoderLM, prompt_ids: list[int], max_new_tokens: int) -> tuple[list[int], int]:
    return plan_prompt(model.config.n_positions, prompt_ids, max_new_tokens)


def generate_greedy(
    model: DecoderLM,
    prompt_ids: list[int],
    max_new_tokens: int,
    stop_ids: frozenset[int] | set[int] = frozenset(),
    tracer: Tracer | None = None,
) -> GenerationResult:
    """Greedy decoding with KV cache; stops at a stop token, the token
    budget, or a full context window.

    ``tracer`` (optional, default-off) records ``sampling.greedy`` with
    ``sampling.prefill`` / ``sampling.decode`` children; tracing only
    reads the monotonic clock, so the produced tokens are identical with
    or without it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    prompt, budget = _prepare_prompt(model, prompt_ids, max_new_tokens)
    with tracer.span("sampling.greedy", prompt_tokens=len(prompt)) as span:
        with tracer.span("sampling.prefill", tokens=len(prompt)):
            caches = model.new_cache()
            logits = model.forward_incremental(np.array([prompt], dtype=np.int64), caches)
        generated: list[int] = []
        window = model.config.n_positions
        with tracer.span("sampling.decode"):
            result = None
            for _ in range(max_new_tokens):
                next_id = int(logits[0, -1].argmax())
                if next_id in stop_ids:
                    result = GenerationResult(generated, "stop_token", budget)
                    break
                generated.append(next_id)
                if len(generated) >= max_new_tokens:
                    result = GenerationResult(generated, "max_tokens", budget)
                    break
                # Budget checked first, so context_full always means a
                # shortfall: the window ended generation before the
                # requested budget.
                if len(prompt) + len(generated) >= window:
                    result = GenerationResult(generated, "context_full", budget)
                    break
                logits = model.forward_incremental(np.array([[next_id]], dtype=np.int64), caches)
            if result is None:
                result = GenerationResult(generated, "max_tokens", budget)
        span.set(tokens=len(result.token_ids), stop_reason=result.stop_reason)
        return result


def generate_sampled(
    model: DecoderLM,
    prompt_ids: list[int],
    max_new_tokens: int,
    rng: np.random.Generator,
    temperature: float = 1.0,
    top_k: int = 0,
    stop_ids: frozenset[int] | set[int] = frozenset(),
    tracer: Tracer | None = None,
) -> GenerationResult:
    """Temperature / top-k sampling with KV cache."""
    if temperature <= 0.0:
        raise GenerationError("temperature must be positive; use generate_greedy for argmax")
    tracer = tracer if tracer is not None else NULL_TRACER
    prompt, budget = _prepare_prompt(model, prompt_ids, max_new_tokens)
    with tracer.span("sampling.sampled", prompt_tokens=len(prompt)) as span:
        with tracer.span("sampling.prefill", tokens=len(prompt)):
            caches = model.new_cache()
            logits = model.forward_incremental(np.array([prompt], dtype=np.int64), caches)
        generated: list[int] = []
        window = model.config.n_positions
        with tracer.span("sampling.decode"):
            result = None
            for _ in range(max_new_tokens):
                scores = logits[0, -1].astype(np.float64) / temperature
                if top_k > 0 and top_k < scores.shape[0]:
                    cutoff = np.partition(scores, -top_k)[-top_k]
                    scores = np.where(scores < cutoff, -np.inf, scores)
                scores -= scores.max()
                probabilities = np.exp(scores)
                probabilities /= probabilities.sum()
                next_id = int(rng.choice(scores.shape[0], p=probabilities))
                if next_id in stop_ids:
                    result = GenerationResult(generated, "stop_token", budget)
                    break
                generated.append(next_id)
                if len(generated) >= max_new_tokens:
                    result = GenerationResult(generated, "max_tokens", budget)
                    break
                if len(prompt) + len(generated) >= window:
                    result = GenerationResult(generated, "context_full", budget)
                    break
                logits = model.forward_incremental(np.array([[next_id]], dtype=np.int64), caches)
            if result is None:
                result = GenerationResult(generated, "max_tokens", budget)
        span.set(tokens=len(result.token_ids), stop_reason=result.stop_reason)
        return result


def generate_beam(
    model: DecoderLM,
    prompt_ids: list[int],
    max_new_tokens: int,
    beam_width: int = 3,
    stop_ids: frozenset[int] | set[int] = frozenset(),
    length_penalty: float = 0.0,
) -> GenerationResult:
    """Beam search (no cache sharing across beams; intended for small beams).

    Scores are mean-adjusted by ``length_penalty`` (0 = pure log-prob sum).
    """
    prompt, budget = _prepare_prompt(model, prompt_ids, max_new_tokens)
    window = model.config.n_positions
    beams: list[tuple[float, list[int], bool]] = [(0.0, [], False)]
    for _ in range(max_new_tokens):
        candidates: list[tuple[float, list[int], bool]] = []
        for score, tokens, finished in beams:
            if finished:
                candidates.append((score, tokens, True))
                continue
            sequence = prompt + tokens
            if len(sequence) >= window:
                candidates.append((score, tokens, True))
                continue
            logits = model.forward(np.array([sequence], dtype=np.int64), training=False)
            row = logits[0, -1].astype(np.float64)
            row -= row.max()
            log_probabilities = row - np.log(np.exp(row).sum())
            top = np.argsort(log_probabilities)[::-1][:beam_width]
            for token_id in top:
                token_id = int(token_id)
                new_score = score + float(log_probabilities[token_id])
                if token_id in stop_ids:
                    candidates.append((new_score, tokens, True))
                else:
                    candidates.append((new_score, tokens + [token_id], False))
        def adjusted(entry: tuple[float, list[int], bool]) -> float:
            score, tokens, _ = entry
            denominator = max(1, len(tokens)) ** length_penalty
            return score / denominator
        candidates.sort(key=adjusted, reverse=True)
        beams = candidates[:beam_width]
        if all(finished for _, _, finished in beams):
            break
    best_score, best_tokens, best_finished = beams[0]
    del best_score
    reason = "stop_token" if best_finished else "max_tokens"
    return GenerationResult(best_tokens, reason, budget)
