"""Decoder-only transformer language model (the CodeGen architecture).

Matches CodeGen's block structure: a single layer norm feeding *parallel*
attention and MLP branches whose outputs add into the residual stream
(``x = x + attn(ln(x)) + mlp(ln(x))``), rotary position embeddings inside
attention, a final layer norm, and an untied LM head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.nn.attention import CausalSelfAttention, KVCache
from repro.nn.kv_arena import DenseKVCache, KVArena
from repro.nn.layers import Embedding, Layer, LayerNorm, Linear, cross_entropy, gelu, gelu_backward
from repro.nn.rotary import shared_rotary_tables


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters.

    ``n_positions`` is the context window — the quantity the paper ablates
    at 512/1024/2048 in Table 4.
    """

    vocab_size: int
    n_positions: int = 256
    dim: int = 64
    n_layers: int = 2
    n_heads: int = 4
    mlp_ratio: int = 4
    init_std: float = 0.02

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ShapeError(f"dim {self.dim} must be divisible by n_heads {self.n_heads}")
        if self.dim % 2 != 0:
            raise ShapeError("dim must be even (rotary embeddings pair dimensions)")

    @property
    def mlp_dim(self) -> int:
        return self.dim * self.mlp_ratio


class Mlp(Layer):
    """Two-layer feed-forward with GELU."""

    def __init__(self, name: str, config: TransformerConfig, rng: np.random.Generator):
        self.up = Linear(f"{name}.up", config.dim, config.mlp_dim, rng, std=config.init_std)
        self.down = Linear(f"{name}.down", config.mlp_dim, config.dim, rng, std=config.init_std)
        self._pre_activation: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        hidden = self.up.forward(x, training)
        if training:
            self._pre_activation = hidden
        return self.down.forward(gelu(hidden), training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._pre_activation is None:
            raise RuntimeError("Mlp backward before forward")
        grad_hidden = self.down.backward(grad_output)
        grad_hidden = gelu_backward(self._pre_activation, grad_hidden)
        self._pre_activation = None
        return self.up.backward(grad_hidden)


class Block(Layer):
    """One CodeGen-style transformer block with parallel residual branches."""

    def __init__(self, name: str, config: TransformerConfig, rng: np.random.Generator):
        self.norm = LayerNorm(f"{name}.ln", config.dim)
        self.attention = CausalSelfAttention(
            f"{name}.attn", config.dim, config.n_heads, config.n_positions, rng, std=config.init_std
        )
        self.mlp = Mlp(f"{name}.mlp", config, rng)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        normalized = self.norm.forward(x, training)
        return x + self.attention.forward(normalized, training) + self.mlp.forward(normalized, training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_normalized = self.attention.backward(grad_output) + self.mlp.backward(grad_output)
        return grad_output + self.norm.backward(grad_normalized)

    def forward_incremental(
        self,
        x: np.ndarray,
        kv_cache: KVCache,
        positions: np.ndarray | None = None,
        key_padding_mask: np.ndarray | None = None,
        rope: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        normalized = self.norm.forward(x, training=False)
        return (
            x
            + self.attention.forward_incremental(
                normalized, kv_cache, positions, key_padding_mask, rope=rope
            )
            + self.mlp.forward(normalized, training=False)
        )


class DecoderLM(Layer):
    """The full language model: embeddings, blocks, final norm, LM head."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        self.config = config
        self.token_embedding = Embedding("wte", config.vocab_size, config.dim, rng, std=config.init_std)
        self.blocks = [Block(f"h{i}", config, rng) for i in range(config.n_layers)]
        self.final_norm = LayerNorm("ln_f", config.dim)
        self.lm_head = Linear("lm_head", config.dim, config.vocab_size, rng, std=config.init_std)
        # One rotary table for the whole model (and, being memoized, the
        # whole process); each layer's attention holds the same arrays.
        self._rotary = shared_rotary_tables(config.n_positions, config.dim // config.n_heads)

    # -- training -----------------------------------------------------------

    def forward(self, ids: np.ndarray, training: bool = True) -> np.ndarray:
        """Logits of shape (B, T, V) for input ids of shape (B, T)."""
        if ids.ndim != 2:
            raise ShapeError(f"ids must be 2-D (batch, time), got shape {ids.shape}")
        hidden = self.token_embedding.forward(ids, training)
        for block in self.blocks:
            hidden = block.forward(hidden, training)
        hidden = self.final_norm.forward(hidden, training)
        return self.lm_head.forward(hidden, training)

    def loss_and_backward(self, ids: np.ndarray, targets: np.ndarray, ignore_index: int = -1) -> float:
        """One full training step's loss + gradient accumulation.

        ``targets`` is ``ids`` shifted left by one (next-token prediction),
        with ``ignore_index`` at positions excluded from the loss.
        """
        logits = self.forward(ids, training=True)
        loss, grad_logits = cross_entropy(logits, targets, ignore_index)
        grad_hidden = self.lm_head.backward(grad_logits)
        grad_hidden = self.final_norm.backward(grad_hidden)
        for block in reversed(self.blocks):
            grad_hidden = block.backward(grad_hidden)
        self.token_embedding.backward(grad_hidden)
        return loss

    def evaluate_loss(self, ids: np.ndarray, targets: np.ndarray, ignore_index: int = -1) -> float:
        """Loss without gradient accumulation (validation)."""
        logits = self.forward(ids, training=False)
        loss, _ = cross_entropy(logits, targets, ignore_index)
        return loss

    # -- inference -----------------------------------------------------------

    def new_cache(self, arena: KVArena | None = None) -> list[KVCache]:
        """Fresh per-layer arena-backed caches (default: the process arena)."""
        return [KVCache(arena) for _ in self.blocks]

    def new_dense_cache(self) -> list[DenseKVCache]:
        """The legacy concatenate-on-append caches, for comparison runs."""
        return [DenseKVCache() for _ in self.blocks]

    def _rope_slices(
        self, offset: int, batch: int, new_length: int, positions: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather rotary cos/sin for this step once, shared by every layer."""
        cos, sin = self._rotary
        if positions is None:
            return cos[offset : offset + new_length][None, None], sin[offset : offset + new_length][None, None]
        positions = np.asarray(positions, dtype=np.int64)
        if positions.shape != (batch, new_length):
            raise ShapeError(
                f"positions shape {positions.shape} != (batch, new) {(batch, new_length)}"
            )
        if positions.size and int(positions.max()) >= self.config.n_positions:
            raise ShapeError(
                f"position {int(positions.max())} exceeds n_positions {self.config.n_positions}"
            )
        return cos[positions][:, None], sin[positions][:, None]

    def forward_incremental(
        self,
        ids: np.ndarray,
        caches: list[KVCache],
        positions: np.ndarray | None = None,
        key_padding_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Logits for the new suffix ``ids`` (B, T_new) given warm caches.

        ``positions``/``key_padding_mask`` enable batched decoding over a
        left-padded cache layout; see
        :meth:`repro.nn.attention.CausalSelfAttention.forward_incremental`.
        """
        batch, new_length = ids.shape
        rope = self._rope_slices(caches[0].length if caches else 0, batch, new_length, positions)
        hidden = self.token_embedding.forward(ids, training=False)
        for block, cache in zip(self.blocks, caches):
            hidden = block.forward_incremental(hidden, cache, positions, key_padding_mask, rope=rope)
        hidden = self.final_norm.forward(hidden, training=False)
        return self.lm_head.forward(hidden, training=False)

    # -- state ---------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {parameter.name: parameter.data for parameter in self.parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = {parameter.name: parameter for parameter in self.parameters()}
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ShapeError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            if parameter.data.shape != state[name].shape:
                raise ShapeError(
                    f"parameter {name}: shape {parameter.data.shape} != checkpoint {state[name].shape}"
                )
            parameter.data = state[name].astype(np.float32).copy()
