"""Parameter container and initializers for the numpy neural network."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeededRng


class Parameter:
    """A trainable array with its accumulated gradient.

    Layers own Parameters; the optimizer iterates over them.  ``grad`` is
    lazily allocated and zeroed by :meth:`zero_grad`.
    """

    def __init__(self, name: str, data: np.ndarray):
        self.name = name
        self.data = data.astype(np.float32)
        self.grad = np.zeros_like(self.data)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.data.shape})"


def normal_init(rng: np.random.Generator, shape: tuple[int, ...], std: float) -> np.ndarray:
    """Gaussian init with the given standard deviation."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones_init(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def numpy_rng(seed_source: SeededRng | int) -> np.random.Generator:
    """Build a numpy Generator from a SeededRng or plain int seed."""
    if isinstance(seed_source, SeededRng):
        return np.random.default_rng(seed_source.seed)
    return np.random.default_rng(int(seed_source))
