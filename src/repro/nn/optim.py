"""Optimizers and learning-rate schedules.

The paper trains with Adam-style optimization at lr 5e-5, a *linear*
decreasing schedule for pre-training and a *cosine* decreasing schedule for
fine-tuning; both schedules are provided.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.parameter import Parameter


class Adam:
    """Adam with optional decoupled weight decay (AdamW when decay > 0)."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 5e-5,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self, learning_rate: float | None = None) -> None:
        """Apply one update using accumulated gradients."""
        lr = self.learning_rate if learning_rate is None else learning_rate
        self.step_count += 1
        bias1 = 1.0 - self.beta1 ** self.step_count
        bias2 = 1.0 - self.beta2 ** self.step_count
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad
            m = self._first_moment[index]
            v = self._second_moment[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay > 0.0:
                update = update + self.weight_decay * parameter.data
            parameter.data -= lr * update

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    total = 0.0
    for parameter in parameters:
        total += float((parameter.grad * parameter.grad).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for parameter in parameters:
            parameter.grad *= scale
    return norm


class LinearSchedule:
    """Linear warmup then linear decay to ``final_fraction`` of peak lr."""

    def __init__(self, peak_lr: float, total_steps: int, warmup_steps: int = 0, final_fraction: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.peak_lr = peak_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.final_fraction = final_fraction

    def lr_at(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps))
        return self.peak_lr * (1.0 - (1.0 - self.final_fraction) * progress)


class CosineSchedule:
    """Linear warmup then cosine decay to ``final_fraction`` of peak lr."""

    def __init__(self, peak_lr: float, total_steps: int, warmup_steps: int = 0, final_fraction: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.peak_lr = peak_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.final_fraction = final_fraction

    def lr_at(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps))
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.peak_lr * (self.final_fraction + (1.0 - self.final_fraction) * cosine)
