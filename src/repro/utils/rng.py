"""Deterministic randomness helpers.

Every stochastic component of the library (corpus synthesis, data splits,
weight initialisation, sampling) draws from a :class:`SeededRng` so that runs
are exactly reproducible.  Independent components derive child seeds with
:func:`derive_seed` so that changing one component's draw count does not
perturb another's stream.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: str | int) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    The derivation hashes the label path, so streams for different labels are
    statistically independent and insensitive to call ordering.

    >>> derive_seed(7, "corpus", "galaxy") == derive_seed(7, "corpus", "galaxy")
    True
    >>> derive_seed(7, "a") != derive_seed(7, "b")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class SeededRng:
    """A thin, explicit wrapper over :class:`random.Random`.

    Exists so call sites never touch the global :mod:`random` state and so
    derived generators are easy to create (:meth:`child`).
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def child(self, *labels: str | int) -> "SeededRng":
        """Return an independent generator for a labelled sub-component."""
        return SeededRng(derive_seed(self.seed, *labels))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Pick one element uniformly."""
        return self._random.choice(options)

    def choices(self, options: Sequence[T], weights: Sequence[float] | None = None, k: int = 1) -> list[T]:
        """Pick ``k`` elements with replacement, optionally weighted."""
        return self._random.choices(options, weights=weights, k=k)

    def sample(self, options: Sequence[T], k: int) -> list[T]:
        """Pick ``k`` distinct elements."""
        return self._random.sample(options, k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Shuffle ``items`` in place and return it for chaining."""
        self._random.shuffle(items)
        return items

    def shuffled(self, items: Iterable[T]) -> list[T]:
        """Return a new shuffled list, leaving the input untouched."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    def gauss(self, mean: float, sigma: float) -> float:
        """Normal variate."""
        return self._random.gauss(mean, sigma)

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        return self._random.random() < probability

    def poisson_like_count(self, mean: float, maximum: int) -> int:
        """A small non-negative count with the given mean, capped at ``maximum``.

        Used for sampling e.g. the number of tasks in a synthetic playbook.
        Implemented as a geometric-ish accumulation to avoid a scipy
        dependency in the core package.
        """
        if mean <= 0:
            return 0
        count = 0
        # Each trial succeeds with p = mean / (mean + 1); expected successes
        # before first failure equals `mean` for a geometric distribution.
        success_probability = mean / (mean + 1.0)
        while count < maximum and self._random.random() < success_probability:
            count += 1
        return count
