"""Small text-manipulation helpers used across the library."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9_.\-]+")


def normalize_newlines(text: str) -> str:
    """Convert CRLF / CR line endings to LF."""
    return text.replace("\r\n", "\n").replace("\r", "\n")


def indent_block(text: str, spaces: int) -> str:
    """Indent every non-empty line of ``text`` by ``spaces`` spaces."""
    pad = " " * spaces
    return "\n".join(pad + line if line.strip() else line for line in text.split("\n"))


def dedent_block(text: str) -> str:
    """Remove the common leading whitespace of all non-empty lines."""
    lines = text.split("\n")
    margins = [len(line) - len(line.lstrip(" ")) for line in lines if line.strip()]
    if not margins:
        return text
    margin = min(margins)
    return "\n".join(line[margin:] if line.strip() else line for line in lines)


def split_words(text: str) -> list[str]:
    """Split text into simple word tokens (letters, digits, ``_.-``)."""
    return _WORD_RE.findall(text)


def truncate_left(tokens: list[int], limit: int) -> list[int]:
    """Keep the rightmost ``limit`` tokens.

    This mirrors the paper's inference-time behaviour: when the prompt plus
    context exceeds the model's context window, the input is *left*-truncated
    so the most recent context (and the natural-language prompt, which sits at
    the end) is preserved.
    """
    if limit < 0:
        raise ValueError(f"limit must be non-negative, got {limit}")
    if len(tokens) <= limit:
        return list(tokens)
    return list(tokens[len(tokens) - limit:])


def stable_hash(text: str) -> str:
    """A short stable content hash used for exact-match deduplication."""
    import hashlib

    return hashlib.sha1(text.encode("utf-8")).hexdigest()
