"""Shared utilities: seeded randomness, text helpers, tables, timing."""

from repro.utils.rng import SeededRng, derive_seed
from repro.utils.tables import format_table
from repro.utils.text import (
    dedent_block,
    indent_block,
    normalize_newlines,
    split_words,
    stable_hash,
    truncate_left,
)
from repro.utils.timing import Stopwatch

__all__ = [
    "SeededRng",
    "derive_seed",
    "format_table",
    "dedent_block",
    "indent_block",
    "normalize_newlines",
    "split_words",
    "stable_hash",
    "truncate_left",
    "Stopwatch",
]
