"""Wall-clock timing helper used by throughput benchmarks and the server."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        """Mean duration of recorded laps (0.0 when no laps exist)."""
        if not self.laps:
            return 0.0
        return sum(self.laps) / len(self.laps)
