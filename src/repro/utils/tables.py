"""ASCII table rendering for benchmark and report output.

The benchmark harness prints the same rows as the paper's tables; this module
provides the single formatting helper all of them use, so output stays
uniform.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Floats are formatted with ``precision`` decimal places; every other value
    is rendered with :func:`str`.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    formatted_rows = [[_cell(value, precision) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(headers))
    lines.append(separator)
    lines.extend(render_line(row) for row in formatted_rows)
    return "\n".join(lines)
