"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the library can catch one type.  Sub-hierarchies mirror the
package layout: YAML engine errors, Ansible model errors, dataset pipeline
errors, tokenizer errors, and model/training errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class YamlError(ReproError):
    """Base class for errors raised by the YAML engine (:mod:`repro.yamlio`)."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class YamlScanError(YamlError):
    """Lexical problem: bad indentation, unterminated quote, invalid escape."""


class YamlParseError(YamlError):
    """Structural problem: mixed node kinds, duplicate keys, bad nesting."""


class YamlEmitError(YamlError):
    """The value graph cannot be represented by the emitter."""


class AnsibleError(ReproError):
    """Base class for Ansible data-model errors (:mod:`repro.ansible`)."""


class AnsibleSchemaError(AnsibleError):
    """A playbook or task violates the strict Ansible schema.

    Carries the list of individual violation messages in :attr:`violations`.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        self.violations = list(violations or [])


class UnknownModuleError(AnsibleError):
    """A task references a module absent from the module catalog."""

    def __init__(self, module_name: str):
        super().__init__(f"unknown Ansible module: {module_name!r}")
        self.module_name = module_name


class FreeFormParseError(AnsibleError):
    """The legacy ``k1=v1 k2=v2`` module-argument string cannot be parsed."""


class DatasetError(ReproError):
    """Base class for dataset-pipeline errors (:mod:`repro.dataset`)."""


class EmptyCorpusError(DatasetError):
    """An operation that requires documents was given an empty corpus."""


class TokenizerError(ReproError):
    """Base class for tokenizer errors (:mod:`repro.tokenizer`)."""


class VocabularyError(TokenizerError):
    """A token id or token string is not present in the vocabulary."""


class ModelError(ReproError):
    """Base class for neural-network / model errors."""


class ShapeError(ModelError):
    """A tensor operation received operands with incompatible shapes."""


class CheckpointError(ModelError):
    """A model checkpoint could not be saved or restored."""


class GenerationError(ModelError):
    """Text generation failed (e.g. empty prompt after truncation)."""


class ServingError(ReproError):
    """Base class for serving-layer errors (:mod:`repro.serving`)."""


class ServiceOverloadedError(ServingError):
    """The service shed this request: its admission queue is full.

    Maps to an HTTP 503.  :attr:`retry_after_s` is the server's hint for
    how long a well-behaved client should back off before retrying; the
    REST layer mirrors it in a ``Retry-After`` header.
    """

    def __init__(self, message: str = "service overloaded", retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class SessionNotFoundError(ServingError):
    """A session id names no live session (expired, evicted, or never created).

    Maps to an HTTP 404.  The editor-plugin contract on receiving it is
    to fall back to creating a fresh session from the full buffer —
    eviction costs one re-prefill, never correctness.
    """

    def __init__(self, session_id: str):
        super().__init__(f"unknown session: {session_id!r}")
        self.session_id = session_id


class DeadlineExceededError(ReproError):
    """A request's deadline elapsed before generation completed (HTTP 504)."""


class RequestCancelledError(ReproError):
    """A request was cancelled by its client before completing."""


class InjectedFault(ReproError):
    """An error raised on purpose by the fault-injection harness.

    Carries the seam name and the per-seam call index at which the fault
    fired, so failures in chaos tests are attributable and replayable.
    """

    def __init__(self, message: str, seam: str | None = None, call: int | None = None):
        super().__init__(message)
        self.seam = seam
        self.call = call


class EngineError(ReproError):
    """Base class for inference-engine errors (:mod:`repro.engine`)."""


class FleetError(ReproError):
    """Base class for fleet/router errors (:mod:`repro.fleet`)."""


class WorkerUnavailableError(FleetError):
    """A replica cannot be reached (dead process, refused connection, crash).

    The router treats this as a membership event: the worker is marked
    dead, its affinity buckets rebalance onto the survivors and the
    request that observed the failure is re-dispatched.  Carries the
    worker id so failovers are attributable in stats and chaos logs.
    """

    def __init__(self, message: str, worker_id: str | None = None):
        super().__init__(message)
        self.worker_id = worker_id


class WorkerCrashed(FleetError):
    """A replica died mid-request (the injectable crash fault).

    Raised *inside* a worker — deliberately not an
    :class:`InjectedFault`, so the engine's transient decode-step retry
    does not absorb it and the crash propagates out of the decode loop
    exactly the way a dying process would drop a connection.
    """


class ObservabilityError(ReproError):
    """Base class for tracing/metrics errors (:mod:`repro.obs`)."""
