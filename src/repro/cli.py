"""Command-line interface.

Mirrors the workflows a user of the released system would run::

    python -m repro.cli train --out /tmp/wisdom --seed 7
    python -m repro.cli generate --model /tmp/wisdom --prompt "Install nginx"
    python -m repro.cli evaluate --model /tmp/wisdom --samples 20
    python -m repro.cli serve --model /tmp/wisdom --port 8181
    python -m repro.cli score --reference ref.yml --prediction pred.yml
    python -m repro.cli obs --url http://127.0.0.1:8181
    python -m repro.cli obs --spans /tmp/trace.jsonl
    python -m repro.cli obs --runlog /tmp/run.jsonl [--compare /tmp/run2.jsonl]
    python -m repro.cli profile --size 350M --mode generate --trace /tmp/prof.json

Every subcommand is a thin shell over the library API; all heavy lifting
stays importable and testable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.utils.rng import SeededRng


def _cmd_train(args: argparse.Namespace) -> int:
    from repro import quickstart_model
    from repro.model import save_checkpoint

    print(f"training (seed={args.seed}, galaxy_scale={args.galaxy_scale}, epochs={args.epochs})")
    model, dataset = quickstart_model(
        seed=args.seed, galaxy_scale=args.galaxy_scale, finetune_epochs=args.epochs
    )
    path = save_checkpoint(model, args.out)
    print(f"checkpoint written to {path}")
    print(f"dataset sizes: {dataset.sizes()}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.model import load_checkpoint

    model = load_checkpoint(args.model)
    prompt = args.prompt
    if not prompt.startswith("- name:"):
        prompt = f"- name: {prompt}"
    if not prompt.endswith("\n"):
        prompt += "\n"
    completion = model.complete(prompt, max_new_tokens=args.max_new_tokens)
    sys.stdout.write(prompt + completion)
    if not completion.endswith("\n"):
        sys.stdout.write("\n")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.dataset import build_finetune_dataset, build_galaxy_corpus, split_corpus
    from repro.eval import evaluate
    from repro.metrics import EvalReport
    from repro.model import load_checkpoint
    from repro.utils.tables import format_table

    model = load_checkpoint(args.model)
    rng = SeededRng(args.seed)
    galaxy = build_galaxy_corpus(rng.child("galaxy"), scale=args.galaxy_scale)
    splits = split_corpus(galaxy, rng.child("split"))
    dataset = build_finetune_dataset(splits.train, splits.validation, splits.test)
    report = evaluate(model, dataset.test, max_samples=args.samples)
    print(format_table(list(EvalReport.ROW_HEADERS), [report.as_row()], title="Evaluation"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.model import load_checkpoint
    from repro.serving import PredictionService, RestServer

    model = load_checkpoint(args.model)
    service = PredictionService(model, max_new_tokens=args.max_new_tokens, engine=model.engine())
    server = RestServer(service, host=args.host, port=args.port).start()
    print(f"serving {model.name} at {server.url} (ctrl-c to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    from repro.metrics import ansible_aware, exact_match, is_schema_correct, sentence_bleu

    reference = Path(args.reference).read_text()
    prediction = Path(args.prediction).read_text()
    result = {
        "exact_match": exact_match(reference, prediction),
        "bleu": round(sentence_bleu(reference, prediction), 2),
        "ansible_aware": round(ansible_aware(reference, prediction), 2),
        "schema_correct": is_schema_correct(prediction),
    }
    print(json.dumps(result, indent=2))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import read_spans_jsonl
    from repro.obs.report import format_metrics_snapshot, format_span_tree
    from repro.obs.runlog import compare_runlogs, format_runlog, load_runlog

    if args.compare and not args.runlog:
        print("--compare requires --runlog", file=sys.stderr)
        return 2
    if args.runlog:
        primary = load_runlog(args.runlog)
        if args.json:
            print(json.dumps(primary.summary(), indent=2))
            return 0
        if args.compare:
            print(compare_runlogs(primary, load_runlog(args.compare)))
        else:
            print(format_runlog(primary))
        return 0
    if args.url:
        from repro.serving.client import PredictionClient

        payload = PredictionClient(args.url).metrics()
        if args.json:
            print(json.dumps(payload, indent=2))
            return 0
        print(format_metrics_snapshot(payload.get("metrics", {})))
        tracing = payload.get("tracing", {})
        print()
        print(
            f"tracing: enabled={tracing.get('enabled')} "
            f"buffered={tracing.get('spans_buffered')} "
            f"recorded={tracing.get('spans_recorded')}"
        )
        engine = payload.get("engine")
        if engine:
            print()
            print(json.dumps({"engine": engine}, indent=2))
        return 0
    spans, skipped = read_spans_jsonl(args.spans)
    if skipped:
        print(f"warning: skipped {skipped} corrupt line(s) in {args.spans}", file=sys.stderr)
    if args.json:
        print(json.dumps([span.to_dict() for span in spans], indent=2))
        return 0
    print(format_span_tree(spans))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.model.config import SIZE_PRESETS, transformer_config
    from repro.nn.parameter import numpy_rng
    from repro.nn.sampling import generate_greedy
    from repro.nn.transformer import DecoderLM
    from repro.obs import OpProfiler, Tracer
    from repro.obs.export import export_chrome_trace
    from repro.obs.report import format_op_table

    config = transformer_config(args.vocab, SIZE_PRESETS[args.size], args.context)
    network = DecoderLM(config, numpy_rng(args.seed))
    profiler = OpProfiler(track_memory=args.track_memory).attach(network)
    tracer = Tracer(capacity=8192)
    rng = np.random.default_rng(args.seed)
    seq = min(args.seq, config.n_positions - 1)
    ids = rng.integers(0, config.vocab_size, size=(args.batch, seq)).astype(np.int64)
    if args.track_memory:
        profiler.start_memory_tracking()
    if args.mode == "forward":
        network.forward(ids, training=False)
    elif args.mode == "backward":
        targets = np.roll(ids, -1, axis=1)
        targets[:, -1] = -1
        network.loss_and_backward(ids, targets)
    else:  # generate: prefill + short greedy decode through the KV cache
        prompt = [int(token) for token in ids[0]]
        generate_greedy(network, prompt, max_new_tokens=args.new_tokens, tracer=tracer)
    if args.track_memory:
        profiler.stop_memory_tracking()
    stats = profiler.stats()
    if args.json:
        print(json.dumps(profiler.snapshot(), indent=2))
    else:
        title = (
            f"Hot ops: {args.size} / context {args.context} / {args.mode} "
            f"(batch {args.batch if args.mode != 'generate' else 1})"
        )
        print(format_op_table(stats, top=args.top, title=title))
        total_flops = sum(stat.flops for stat in stats)
        total_self = sum(stat.self_s for stat in stats)
        print()
        print(
            f"total: {total_flops / 1e9:.3f} GFLOP in {total_self * 1e3:.1f}ms self time "
            f"({total_flops / total_self / 1e9:.2f} GFLOP/s)"
            if total_self > 0
            else f"total: {total_flops / 1e9:.3f} GFLOP"
        )
        print(f"tensor high-water mark: {profiler.alloc_high_water_bytes / 1e6:.2f} MB (analytic)")
        if profiler.tracemalloc_peak_bytes:
            print(f"process peak (tracemalloc): {profiler.tracemalloc_peak_bytes / 1e6:.2f} MB")
    if args.trace:
        spans = tracer.spans() if args.mode == "generate" else []
        written = export_chrome_trace(args.trace, spans=spans, op_events=profiler.events())
        print(f"chrome trace ({written} events) written to {args.trace}", file=sys.stderr)
    profiler.detach()
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro import yamlio
    from repro.dataset import AnsibleSynthesizer

    synthesizer = AnsibleSynthesizer(SeededRng(args.seed))
    for _ in range(args.count):
        generated = synthesizer.playbook() if args.kind == "playbook" else synthesizer.task_list()
        sys.stdout.write(yamlio.dumps(generated.data))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Replay a seeded fault schedule against the engine; emit the event log.

    Runs a tiny random-weight model through the continuous batcher under a
    fake clock with deadlines, scheduled cancellations and injected
    slab-allocation / decode-step faults.  Everything — model weights,
    prompts, fault schedule, clock — derives from ``--seed``, so the JSONL
    written to ``--out`` is byte-identical across runs of the same seed:
    diff two runs (or pass ``--verify`` to do it in one invocation) to
    verify a failure reproduction, or bisect a seed range to hunt for
    schedules that violate engine invariants.  ``--speculative-k`` runs
    the same schedule with draft-then-verify decoding: the drafter is
    warmed on the model's own greedy continuations before the injector
    arms, and because drafts are pure functions of the context, faulted
    steps recompute them identically on retry — the log stays
    byte-identical across replays with speculation enabled.
    """
    from collections import deque

    from repro.engine.batcher import ContinuousBatcher
    from repro.engine.prefix_cache import PrefixCache
    from repro.engine.request import GenerationRequest
    from repro.engine.speculative import RetrievalSuffixDraft
    from repro.faults import FakeClock, FaultInjector, use
    from repro.nn.kv_arena import KVArena
    from repro.nn.parameter import numpy_rng
    from repro.nn.sampling import generate_greedy, plan_prompt
    from repro.nn.transformer import DecoderLM, TransformerConfig

    def run_stream(rng, network, fake, injector, plans, draft) -> tuple[str, int, int]:
        """The ``--stream`` run shape: the same fault schedule pointed at
        :meth:`~repro.engine.engine.InferenceEngine.stream_ids`, with a
        seeded fraction of streams abandoned mid-decode (generator close —
        the client-disconnect path).  Its extra rng draws happen *after*
        every draw the non-stream shape makes, so ``--stream`` cannot
        perturb the schedules non-stream seeds already recorded."""
        from repro.engine import InferenceEngine

        abandons = [
            rng.randint(1, 5) if rng.bernoulli(0.3) else None for _ in range(len(plans))
        ]
        with use(fake), injector:
            engine = InferenceEngine(
                network,
                max_batch_size=args.max_batch,
                prefix_cache_capacity=8,
                default_max_new_tokens=8,
            )
            if draft is not None:
                engine.enable_speculative(draft, args.speculative_k)
            records = []
            disconnects = 0
            for index, ((planned, _effective, deadline), abandon) in enumerate(
                zip(plans, abandons)
            ):
                handle: list = []
                tokens = 0
                disconnected = False
                stream_gen = engine.stream_ids(planned, 8, deadline_s=deadline, handle=handle)
                try:
                    for burst in stream_gen:
                        tokens += len(burst)
                        if abandon is not None and tokens >= abandon:
                            disconnected = True
                            break
                finally:
                    stream_gen.close()
                disconnects += disconnected
                request = handle[0]
                records.append(
                    {
                        "kind": "stream",
                        "id": index,
                        "outcome": request.outcome,
                        "stop_reason": request.stop_reason,
                        "tokens": tokens,
                        "generated": len(request.generated),
                        "disconnected": disconnected,
                    }
                )
                fake.advance(0.05)
            engine.prefix_cache.clear()
            leaked = engine.kv_arena.stats()["bytes_in_use"]
            events = [dict(event, kind="fault") for event in injector.events()]
        events.extend(records)
        stats = engine.batcher.stats()
        summary = {
            "kind": "summary",
            "seed": args.seed,
            "stream": True,
            "streams": len(plans),
            "disconnects": disconnects,
            "completed": stats["completed_requests"],
            "cancelled": stats["cancelled_requests"],
            "deadline_expired": stats["deadline_expired_requests"],
            "shed": stats["shed_requests"],
            "decode_faults": stats["decode_faults"],
            "fault_events": len(injector.events()),
            "arena_bytes_in_use": leaked,
        }
        if args.speculative_k:
            speculative = stats["speculative"]
            summary["speculative_k"] = speculative["k"]
            summary["draft_proposed"] = speculative["proposed_tokens"]
            summary["draft_accepted"] = speculative["accepted_tokens"]
        events.append(summary)
        body = "".join(json.dumps(event, sort_keys=True) + "\n" for event in events)
        return body, leaked, len(events)

    def run_once() -> tuple[str, int, int]:
        rng = SeededRng(args.seed).child("chaos")
        config = TransformerConfig(vocab_size=32, n_positions=48, dim=16, n_layers=2, n_heads=4)
        network = DecoderLM(config, numpy_rng(args.seed))
        fake = FakeClock()
        injector = FaultInjector(seed=args.seed)
        injector.on("kv_arena.acquire", probability=args.alloc_fault_rate, max_fires=4)
        injector.on("engine.decode_step", probability=args.decode_fault_rate, max_fires=4)
        injector.on(
            "engine.decode_step",
            probability=args.slow_step_rate,
            error=None,
            delay_s=0.25,
            max_fires=4,
        )

        # Draw every random decision up front (the rng call order is the
        # replay contract), so the optional drafter warm-up below cannot
        # perturb the schedule non-speculative runs produced.
        plans: list[tuple[list[int], int, float | None]] = []
        for _ in range(args.requests):
            prompt = [rng.randint(1, config.vocab_size - 1) for _ in range(rng.randint(3, 12))]
            planned, effective = plan_prompt(config.n_positions, prompt, 8)
            deadline = rng.uniform(0.3, 2.0) if rng.bernoulli(0.4) else None
            plans.append((planned, effective, deadline))
        cancel_steps = [
            rng.randint(1, 15) if rng.bernoulli(0.2) else None for _ in range(args.requests)
        ]

        draft = None
        if args.speculative_k:
            # Warm the drafter on the model's own greedy continuations —
            # outside the injector, so warm-up forwards never consume the
            # fault schedule.  Deterministic: numpy only, no rng.
            draft = RetrievalSuffixDraft()
            for planned, _, _ in plans:
                result = generate_greedy(network, list(planned), 8)
                draft.observe(list(planned) + list(result.token_ids))

        if args.stream:
            return run_stream(rng, network, fake, injector, plans, draft)

        with use(fake), injector:
            arena = KVArena()
            batcher = ContinuousBatcher(
                network,
                max_batch_size=args.max_batch,
                prefix_cache=PrefixCache(8),
                arena=arena,
                speculative_k=args.speculative_k,
                draft_model=draft,
            )
            requests: list[GenerationRequest] = []
            for index, (planned, effective, deadline) in enumerate(plans):
                requests.append(
                    GenerationRequest(
                        request_id=index,
                        prompt_ids=planned,
                        max_new_tokens=8,
                        effective_budget=effective,
                        deadline_s=deadline,
                    )
                )
            cancel_at: dict[int, list[GenerationRequest]] = {}
            for request, cancel_step in zip(requests, cancel_steps):
                if cancel_step is not None:
                    cancel_at.setdefault(cancel_step, []).append(request)
            arrivals = deque(requests)
            step_index = 0
            while True:
                for _ in range(2):  # staggered arrival: two submissions per step
                    if arrivals:
                        batcher.submit(arrivals.popleft())
                for request in cancel_at.get(step_index, ()):
                    request.cancel()
                more = batcher.step()
                fake.advance(0.05)
                step_index += 1
                if not more and not arrivals:
                    break
                if step_index > 10_000:  # max_fires caps make schedules finite; belt and braces
                    raise RuntimeError("chaos run failed to terminate")
            batcher.prefix_cache.clear()
            leaked = arena.stats()["bytes_in_use"]
            events = [dict(event, kind="fault") for event in injector.events()]

        for request in requests:
            events.append(
                {
                    "kind": "request",
                    "id": request.request_id,
                    "outcome": request.outcome,
                    "stop_reason": request.stop_reason,
                    "generated": len(request.generated),
                    "prefix_reused": request.prefix_reused,
                }
            )
        stats = batcher.stats()
        summary = {
            "kind": "summary",
            "seed": args.seed,
            "steps": step_index,
            "completed": stats["completed_requests"],
            "cancelled": stats["cancelled_requests"],
            "deadline_expired": stats["deadline_expired_requests"],
            "shed": stats["shed_requests"],
            "decode_faults": stats["decode_faults"],
            "fault_events": len(injector.events()),
            "arena_bytes_in_use": leaked,
        }
        if args.speculative_k:
            speculative = stats["speculative"]
            summary["speculative_k"] = speculative["k"]
            summary["speculative_steps"] = speculative["steps"]
            summary["draft_proposed"] = speculative["proposed_tokens"]
            summary["draft_accepted"] = speculative["accepted_tokens"]
        events.append(summary)
        body = "".join(json.dumps(event, sort_keys=True) + "\n" for event in events)
        return body, leaked, len(events)

    body, leaked, event_count = run_once()
    if args.out:
        Path(args.out).write_text(body, encoding="utf-8")
        print(f"{event_count} events written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(body)
    status = 0 if leaked == 0 else 1
    if args.verify:
        replay_body, _, _ = run_once()
        if replay_body == body:
            print("replay: byte-identical", file=sys.stderr)
        else:
            print("replay: DIVERGED", file=sys.stderr)
            status = 1
    return status


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    """Front N replica processes with one prefix-affinity router endpoint."""
    from repro.fleet import FleetRouter, ProcessWorker, WorkerSpec
    from repro.serving import RestServer

    spec = WorkerSpec(
        seed=args.seed,
        checkpoint=args.model,
        max_new_tokens=args.max_new_tokens,
        max_queue_depth=args.max_queue_depth,
    )
    print(f"spawning {args.workers} replica(s)...")
    workers = [ProcessWorker(f"w{index}", spec).start() for index in range(args.workers)]
    router = FleetRouter(
        workers,
        policy=args.policy,
        heartbeat_timeout_s=args.heartbeat_timeout_s,
        spawner=lambda worker_id: ProcessWorker(worker_id, spec).start(),
    )
    router.start_heartbeats(interval_s=args.heartbeat_timeout_s / 2.0)
    server = RestServer(router, host=args.host, port=args.port).start()
    replicas = ", ".join(f"{worker.worker_id}={worker.url}" for worker in workers)
    print(f"fleet router ({args.policy}) at {server.url} over [{replicas}] (ctrl-c to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        router.stop()
    return 0


def _cmd_fleet_chaos(args: argparse.Namespace) -> int:
    """Seeded fleet-scale chaos: kill a replica mid-decode, log everything.

    The fleet sibling of ``repro chaos``: N in-process replicas behind the
    prefix-affinity router, a fake clock, and a seeded fault schedule that
    crashes one replica while its batcher holds live rows.  Exit status is
    0 only when the run upholds the invariants (all four-outcome, zero KV
    bytes leaked); ``--verify`` additionally reruns the seed and diffs the
    two logs byte-for-byte.  ``--trace-out`` writes the merged multi-process
    Chrome trace (router + every polled replica, flow arrows across the
    process boundary) for ``chrome://tracing`` / Perfetto.
    """
    from repro.fleet import OUTCOMES, run_fleet_chaos

    kwargs = dict(
        seed=args.seed,
        n_workers=args.workers,
        n_requests=args.requests,
        kill_decode_call=args.kill_decode_call if args.kill_decode_call >= 0 else None,
        profile=args.profile,
        tracing=bool(args.trace_out) or args.verify,
        stream=args.stream,
    )
    result = run_fleet_chaos(**kwargs)
    if args.out:
        Path(args.out).write_text(result["log"], encoding="utf-8")
        print(f"{len(result['events'])} events written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(result["log"])
    if args.trace_out:
        from repro.obs.distributed import write_fleet_chrome_trace

        written = write_fleet_chrome_trace(args.trace_out, result["chrome_trace"])
        print(f"merged chrome trace ({written} spans) written to {args.trace_out}", file=sys.stderr)
    leaked = sum(result["leaked_bytes"].values())
    bad_outcomes = [o for o in result["outcomes"].values() if o not in OUTCOMES]
    orphaned = sum(result.get("orphaned_sessions", {}).values())
    status = 0
    if leaked or bad_outcomes or orphaned:
        print(
            f"INVARIANT VIOLATED: leaked={leaked} bad_outcomes={bad_outcomes} "
            f"orphaned_sessions={orphaned}",
            file=sys.stderr,
        )
        status = 1
    if args.verify:
        replay = run_fleet_chaos(**kwargs)
        identical = replay["log"] == result["log"] and replay.get("chrome_trace_json") == result.get(
            "chrome_trace_json"
        )
        if identical:
            print("replay: byte-identical (log + merged trace)", file=sys.stderr)
        else:
            print("replay: DIVERGED", file=sys.stderr)
            status = 1
    return status


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate burn-rate SLOs over a seeded fleet chaos run.

    Feeds every request of a :func:`repro.fleet.run_fleet_chaos` run into
    an :class:`repro.obs.slo.SloMonitor` and prints the verdict table —
    per-SLO compliance against target, plus multi-window burn-rate alerts.
    Deterministic: the same seed prints the same report byte-for-byte
    (``--json`` emits the canonical sorted-key serialization).  Exit
    status is 0 when every SLO is met and nothing is alerting, 1 when an
    SLO is violated or burning.
    """
    from repro.fleet import run_fleet_chaos

    result = run_fleet_chaos(
        seed=args.seed,
        n_workers=args.workers,
        n_requests=args.requests,
        profile=args.profile,
    )
    report = result["slo"]
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(f"SLO report (seed={args.seed}, {report['total_observed']} requests)")
        for slo in report["slos"]:
            windows = " ".join(
                f"burn[{window['long_s']:.0f}s/{window['short_s']:.0f}s]="
                f"{window['burn_long']:.2f}/{window['burn_short']:.2f}"
                f"{'!' if window['alerting'] else ''}"
                for window in slo["burn_windows"]
            )
            verdict = "MET" if slo["met"] else "VIOLATED"
            alert = " ALERTING" if slo["alerting"] else ""
            print(
                f"  {slo['name']:<12} {slo['signal']:<8} "
                f"compliance={slo['compliance']:.4f} target={slo['target']:.4f} "
                f"{verdict}{alert}  {windows}"
            )
        print(f"all_met={report['all_met']} any_alerting={report['any_alerting']}")
    return 0 if report["all_met"] and not report["any_alerting"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n")[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="pretrain + finetune a Wisdom model")
    train.add_argument("--out", required=True, help="checkpoint output directory")
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--galaxy-scale", type=float, default=0.001, dest="galaxy_scale")
    train.add_argument("--epochs", type=int, default=8)
    train.set_defaults(handler=_cmd_train)

    generate = subparsers.add_parser("generate", help="complete a natural-language prompt")
    generate.add_argument("--model", required=True, help="checkpoint directory")
    generate.add_argument("--prompt", required=True)
    generate.add_argument("--max-new-tokens", type=int, default=96, dest="max_new_tokens")
    generate.set_defaults(handler=_cmd_generate)

    evaluate_cmd = subparsers.add_parser("evaluate", help="score a model on a fresh test split")
    evaluate_cmd.add_argument("--model", required=True)
    evaluate_cmd.add_argument("--samples", type=int, default=20)
    evaluate_cmd.add_argument("--seed", type=int, default=7)
    evaluate_cmd.add_argument("--galaxy-scale", type=float, default=0.001, dest="galaxy_scale")
    evaluate_cmd.set_defaults(handler=_cmd_evaluate)

    serve = subparsers.add_parser("serve", help="start the REST prediction service")
    serve.add_argument("--model", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8181)
    serve.add_argument("--max-new-tokens", type=int, default=96, dest="max_new_tokens")
    serve.set_defaults(handler=_cmd_serve)

    score = subparsers.add_parser("score", help="score a prediction file against a reference")
    score.add_argument("--reference", required=True)
    score.add_argument("--prediction", required=True)
    score.set_defaults(handler=_cmd_score)

    obs = subparsers.add_parser(
        "obs", help="pretty-print a /v1/metrics snapshot, a JSONL span dump or a training run log"
    )
    source = obs.add_mutually_exclusive_group(required=True)
    source.add_argument("--url", help="base URL of a running repro serve instance")
    source.add_argument("--spans", help="path to a Tracer.export_jsonl dump")
    source.add_argument("--runlog", help="path to a RunLog JSONL training record")
    obs.add_argument("--compare", help="second run log to diff against --runlog")
    obs.add_argument("--json", action="store_true", help="emit raw JSON instead of tables")
    obs.set_defaults(handler=_cmd_obs)

    profile = subparsers.add_parser(
        "profile",
        help="op-level FLOPs/roofline profile of a forward/backward or a short generation",
    )
    profile.add_argument("--size", choices=("350M", "2.7B", "6B"), default="350M")
    profile.add_argument(
        "--context", type=int, default=1024, help="paper-scale context window (512/1024/2048)"
    )
    profile.add_argument("--vocab", type=int, default=512, help="vocabulary size")
    profile.add_argument("--mode", choices=("forward", "backward", "generate"), default="generate")
    profile.add_argument("--batch", type=int, default=2)
    profile.add_argument("--seq", type=int, default=32, help="prompt/sequence length in tokens")
    profile.add_argument("--new-tokens", type=int, default=16, dest="new_tokens")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--top", type=int, default=12, help="rows in the hot-op table")
    profile.add_argument("--trace", help="write a Chrome trace-event JSON file here")
    profile.add_argument(
        "--track-memory", action="store_true", dest="track_memory",
        help="also sample tracemalloc for the true process peak",
    )
    profile.add_argument("--json", action="store_true", help="emit the raw profiler snapshot")
    profile.set_defaults(handler=_cmd_profile)

    synthesize = subparsers.add_parser("synthesize", help="emit synthetic Ansible YAML")
    synthesize.add_argument("--count", type=int, default=1)
    synthesize.add_argument("--kind", choices=("playbook", "tasks"), default="tasks")
    synthesize.add_argument("--seed", type=int, default=0)
    synthesize.set_defaults(handler=_cmd_synthesize)

    chaos = subparsers.add_parser(
        "chaos",
        help="replay a seeded fault schedule against the engine (JSONL event log)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--requests", type=int, default=12)
    chaos.add_argument("--out", help="write the JSONL event log here (default: stdout)")
    chaos.add_argument("--max-batch", type=int, default=4, dest="max_batch")
    chaos.add_argument(
        "--alloc-fault-rate", type=float, default=0.15, dest="alloc_fault_rate",
        help="per-call probability of an injected KV slab allocation failure",
    )
    chaos.add_argument(
        "--decode-fault-rate", type=float, default=0.1, dest="decode_fault_rate",
        help="per-step probability of a failed (retried) decode step",
    )
    chaos.add_argument(
        "--slow-step-rate", type=float, default=0.1, dest="slow_step_rate",
        help="per-step probability of a 250ms (fake-clock) slow decode step",
    )
    chaos.add_argument(
        "--speculative-k", type=int, default=0, dest="speculative_k",
        help="draft-then-verify with k drafted tokens per step (0 disables)",
    )
    chaos.add_argument(
        "--stream", action="store_true",
        help="drive the schedule through token streaming, abandoning a seeded "
        "fraction of streams mid-decode (the client-disconnect path)",
    )
    chaos.add_argument(
        "--verify", action="store_true",
        help="re-run the schedule and fail unless the replay is byte-identical",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    fleet = subparsers.add_parser(
        "fleet", help="multi-replica router: serve N replicas or run fleet-scale chaos"
    )
    fleet_modes = fleet.add_subparsers(dest="fleet_mode", required=True)

    fleet_serve = fleet_modes.add_parser(
        "serve", help="spawn N replica processes behind a prefix-affinity router"
    )
    fleet_serve.add_argument("--model", help="checkpoint directory (omit for random weights)")
    fleet_serve.add_argument("--workers", type=int, default=2)
    fleet_serve.add_argument("--policy", choices=("affinity", "round_robin"), default="affinity")
    fleet_serve.add_argument("--host", default="127.0.0.1")
    fleet_serve.add_argument("--port", type=int, default=8181)
    fleet_serve.add_argument("--seed", type=int, default=0)
    fleet_serve.add_argument("--max-new-tokens", type=int, default=96, dest="max_new_tokens")
    fleet_serve.add_argument("--max-queue-depth", type=int, default=8, dest="max_queue_depth")
    fleet_serve.add_argument(
        "--heartbeat-timeout-s", type=float, default=5.0, dest="heartbeat_timeout_s",
        help="declare a replica dead after this long without a heartbeat",
    )
    fleet_serve.set_defaults(handler=_cmd_fleet_serve)

    fleet_chaos = fleet_modes.add_parser(
        "chaos", help="seeded replica-kill chaos run against an in-process fleet"
    )
    fleet_chaos.add_argument("--seed", type=int, default=0)
    fleet_chaos.add_argument("--workers", type=int, default=3)
    fleet_chaos.add_argument("--requests", type=int, default=24)
    fleet_chaos.add_argument(
        "--profile", choices=("shared_prefix", "uniform", "keystroke", "mixed"),
        default="shared_prefix", help="request-mix load profile",
    )
    fleet_chaos.add_argument(
        "--kill-decode-call", type=int, default=30, dest="kill_decode_call",
        help="global decode-step call at which a replica crashes (-1 disables)",
    )
    fleet_chaos.add_argument(
        "--stream", action="store_true",
        help="streamed run shape: SSE-style token streams with seeded client "
        "disconnects plus keystroke-session create/extend exchanges",
    )
    fleet_chaos.add_argument("--out", help="write the JSONL event log here (default: stdout)")
    fleet_chaos.add_argument(
        "--trace-out", dest="trace_out",
        help="write the merged multi-process Chrome trace (Perfetto) here",
    )
    fleet_chaos.add_argument(
        "--verify", action="store_true",
        help="rerun the seed and diff log + merged trace byte-for-byte",
    )
    fleet_chaos.set_defaults(handler=_cmd_fleet_chaos)

    slo = subparsers.add_parser(
        "slo", help="evaluate burn-rate SLOs over a seeded fleet chaos run"
    )
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--workers", type=int, default=3)
    slo.add_argument("--requests", type=int, default=24)
    slo.add_argument(
        "--profile", choices=("shared_prefix", "uniform", "keystroke", "mixed"),
        default="shared_prefix", help="request-mix load profile",
    )
    slo.add_argument("--json", action="store_true", help="emit the canonical JSON report")
    slo.set_defaults(handler=_cmd_slo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
