"""Command-line interface.

Mirrors the workflows a user of the released system would run::

    python -m repro.cli train --out /tmp/wisdom --seed 7
    python -m repro.cli generate --model /tmp/wisdom --prompt "Install nginx"
    python -m repro.cli evaluate --model /tmp/wisdom --samples 20
    python -m repro.cli serve --model /tmp/wisdom --port 8181
    python -m repro.cli score --reference ref.yml --prediction pred.yml
    python -m repro.cli obs --url http://127.0.0.1:8181
    python -m repro.cli obs --spans /tmp/trace.jsonl

Every subcommand is a thin shell over the library API; all heavy lifting
stays importable and testable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.utils.rng import SeededRng


def _cmd_train(args: argparse.Namespace) -> int:
    from repro import quickstart_model
    from repro.model import save_checkpoint

    print(f"training (seed={args.seed}, galaxy_scale={args.galaxy_scale}, epochs={args.epochs})")
    model, dataset = quickstart_model(
        seed=args.seed, galaxy_scale=args.galaxy_scale, finetune_epochs=args.epochs
    )
    path = save_checkpoint(model, args.out)
    print(f"checkpoint written to {path}")
    print(f"dataset sizes: {dataset.sizes()}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.model import load_checkpoint

    model = load_checkpoint(args.model)
    prompt = args.prompt
    if not prompt.startswith("- name:"):
        prompt = f"- name: {prompt}"
    if not prompt.endswith("\n"):
        prompt += "\n"
    completion = model.complete(prompt, max_new_tokens=args.max_new_tokens)
    sys.stdout.write(prompt + completion)
    if not completion.endswith("\n"):
        sys.stdout.write("\n")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.dataset import build_finetune_dataset, build_galaxy_corpus, split_corpus
    from repro.eval import evaluate
    from repro.metrics import EvalReport
    from repro.model import load_checkpoint
    from repro.utils.tables import format_table

    model = load_checkpoint(args.model)
    rng = SeededRng(args.seed)
    galaxy = build_galaxy_corpus(rng.child("galaxy"), scale=args.galaxy_scale)
    splits = split_corpus(galaxy, rng.child("split"))
    dataset = build_finetune_dataset(splits.train, splits.validation, splits.test)
    report = evaluate(model, dataset.test, max_samples=args.samples)
    print(format_table(list(EvalReport.ROW_HEADERS), [report.as_row()], title="Evaluation"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.model import load_checkpoint
    from repro.serving import PredictionService, RestServer

    model = load_checkpoint(args.model)
    service = PredictionService(model, max_new_tokens=args.max_new_tokens, engine=model.engine())
    server = RestServer(service, host=args.host, port=args.port).start()
    print(f"serving {model.name} at {server.url} (ctrl-c to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    from repro.metrics import ansible_aware, exact_match, is_schema_correct, sentence_bleu

    reference = Path(args.reference).read_text()
    prediction = Path(args.prediction).read_text()
    result = {
        "exact_match": exact_match(reference, prediction),
        "bleu": round(sentence_bleu(reference, prediction), 2),
        "ansible_aware": round(ansible_aware(reference, prediction), 2),
        "schema_correct": is_schema_correct(prediction),
    }
    print(json.dumps(result, indent=2))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_spans_jsonl
    from repro.obs.report import format_metrics_snapshot, format_span_tree

    if args.url:
        from repro.serving.client import PredictionClient

        payload = PredictionClient(args.url).metrics()
        if args.json:
            print(json.dumps(payload, indent=2))
            return 0
        print(format_metrics_snapshot(payload.get("metrics", {})))
        tracing = payload.get("tracing", {})
        print()
        print(
            f"tracing: enabled={tracing.get('enabled')} "
            f"buffered={tracing.get('spans_buffered')} "
            f"recorded={tracing.get('spans_recorded')}"
        )
        engine = payload.get("engine")
        if engine:
            print()
            print(json.dumps({"engine": engine}, indent=2))
        return 0
    spans = load_spans_jsonl(args.spans)
    if args.json:
        print(json.dumps([span.to_dict() for span in spans], indent=2))
        return 0
    print(format_span_tree(spans))
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro import yamlio
    from repro.dataset import AnsibleSynthesizer

    synthesizer = AnsibleSynthesizer(SeededRng(args.seed))
    for _ in range(args.count):
        generated = synthesizer.playbook() if args.kind == "playbook" else synthesizer.task_list()
        sys.stdout.write(yamlio.dumps(generated.data))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n")[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="pretrain + finetune a Wisdom model")
    train.add_argument("--out", required=True, help="checkpoint output directory")
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--galaxy-scale", type=float, default=0.001, dest="galaxy_scale")
    train.add_argument("--epochs", type=int, default=8)
    train.set_defaults(handler=_cmd_train)

    generate = subparsers.add_parser("generate", help="complete a natural-language prompt")
    generate.add_argument("--model", required=True, help="checkpoint directory")
    generate.add_argument("--prompt", required=True)
    generate.add_argument("--max-new-tokens", type=int, default=96, dest="max_new_tokens")
    generate.set_defaults(handler=_cmd_generate)

    evaluate_cmd = subparsers.add_parser("evaluate", help="score a model on a fresh test split")
    evaluate_cmd.add_argument("--model", required=True)
    evaluate_cmd.add_argument("--samples", type=int, default=20)
    evaluate_cmd.add_argument("--seed", type=int, default=7)
    evaluate_cmd.add_argument("--galaxy-scale", type=float, default=0.001, dest="galaxy_scale")
    evaluate_cmd.set_defaults(handler=_cmd_evaluate)

    serve = subparsers.add_parser("serve", help="start the REST prediction service")
    serve.add_argument("--model", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8181)
    serve.add_argument("--max-new-tokens", type=int, default=96, dest="max_new_tokens")
    serve.set_defaults(handler=_cmd_serve)

    score = subparsers.add_parser("score", help="score a prediction file against a reference")
    score.add_argument("--reference", required=True)
    score.add_argument("--prediction", required=True)
    score.set_defaults(handler=_cmd_score)

    obs = subparsers.add_parser(
        "obs", help="pretty-print a /v1/metrics snapshot or a JSONL span dump"
    )
    source = obs.add_mutually_exclusive_group(required=True)
    source.add_argument("--url", help="base URL of a running repro serve instance")
    source.add_argument("--spans", help="path to a Tracer.export_jsonl dump")
    obs.add_argument("--json", action="store_true", help="emit raw JSON instead of tables")
    obs.set_defaults(handler=_cmd_obs)

    synthesize = subparsers.add_parser("synthesize", help="emit synthetic Ansible YAML")
    synthesize.add_argument("--count", type=int, default=1)
    synthesize.add_argument("--kind", choices=("playbook", "tasks"), default="tasks")
    synthesize.add_argument("--seed", type=int, default=0)
    synthesize.set_defaults(handler=_cmd_synthesize)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
