"""Deterministic fault injection and the swappable clock behind it.

The robustness layer's test harness: :mod:`repro.faults.inject` installs
seed-driven fault schedules against named seams in the engine, KV arena,
tokenizer and checkpoint loader; :mod:`repro.faults.clock` is the
monotonic clock every deadline, timing and backoff reads, swappable for a
:class:`FakeClock` so failure timing is exact and replays are
byte-identical.  Driven by ``tests/test_faults.py`` and the ``repro
chaos`` CLI subcommand; see DESIGN.md §Failure model.
"""

from __future__ import annotations

from repro.faults.clock import FakeClock, SystemClock, get_clock, now, set_clock, sleep, use
from repro.faults.inject import (
    KNOWN_SEAMS,
    FaultInjector,
    FaultSpec,
    active,
    fire,
    shield,
)

__all__ = [
    "FakeClock",
    "SystemClock",
    "get_clock",
    "set_clock",
    "now",
    "sleep",
    "use",
    "KNOWN_SEAMS",
    "FaultInjector",
    "FaultSpec",
    "active",
    "fire",
    "shield",
]
