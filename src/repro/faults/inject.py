"""Deterministic, seed-driven fault injection with named seams.

The production code is instrumented with *seams*: named call sites that
consult the currently installed :class:`FaultInjector` (a module global,
``None`` in normal operation — the check is one attribute load).  A seam
fires :func:`fire` with its name; the injector counts the call and, if a
registered :class:`FaultSpec` matches that call, injects the fault —
raising a typed error, sleeping on the shared clock, or both.

Seams instrumented across the stack:

=====================  ====================================================
``kv_arena.acquire``   slab allocation in :class:`~repro.nn.kv_arena.KVArena`
                       (fires at request-admission allocations; batch
                       reshapes run under :func:`shield` — see below)
``engine.decode_step`` one batched decode step in
                       :class:`~repro.engine.batcher.ContinuousBatcher`
                       (raise = failed step, retried; delay = slow step;
                       fires before draft proposal too, and because draft
                       models are pure the retried step recomputes the
                       identical drafts — speculative chaos runs replay
                       byte-identically without shielding the drafter)
``tokenizer.encode``   :meth:`~repro.tokenizer.bpe.BpeTokenizer.encode`
``checkpoint.read``    :func:`~repro.model.checkpoints.load_checkpoint`
``fleet.spawn``        replica spawn in :class:`~repro.fleet.router.FleetRouter`
                       (raise = the replacement process never came up)
``fleet.heartbeat``    one heartbeat probe from the router to a replica
                       (raise = probe lost; enough in a row marks it dead)
``fleet.dispatch``     one request dispatch from router to replica (raise =
                       the connection died mid-request; the router fails
                       the request over to the next replica on the ring)
=====================  ====================================================

Two properties make schedules *replayable*:

* **Determinism** — a spec either lists explicit per-seam call indices
  (``at_calls``) or draws per call from its own :class:`SeededRng` stream,
  derived from the injector seed and the spec's registration order.  The
  same seed against the same code path produces the same schedule.
* **An event log** — every injected fault appends one event (seam, call
  index, action); :meth:`FaultInjector.event_log` renders them as
  canonical sorted-key JSONL, which is what ``repro chaos`` compares
  across replays.

:func:`shield` suspends injection for a block.  The engine shields the
multi-cache batch reshapes (admit/retire/step compaction in
:class:`~repro.engine.batched_decode.DecodingBatch`): a fault in the
middle of reshaping one layer of a shared batch would leave layers
disagreeing about batch shape — not a failure mode real allocators
produce, just corruption.  Allocation faults instead surface at request
admission (prefill), where exactly one request is chargeable and the
batcher can shed it cleanly.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager

from repro.errors import InjectedFault
from repro.faults import clock
from repro.utils.rng import SeededRng

#: The seams the shipped code is instrumented with (others may be added ad hoc).
KNOWN_SEAMS = (
    "kv_arena.acquire",
    "engine.decode_step",
    "tokenizer.encode",
    "checkpoint.read",
    "fleet.spawn",
    "fleet.heartbeat",
    "fleet.dispatch",
)


class FaultSpec:
    """One registered fault: where it fires, when, and what it does.

    ``at_calls`` (explicit 1-based call indices) and ``probability`` (an
    independent per-call draw from the spec's seeded stream) are the two
    scheduling modes; ``max_fires`` caps total firings so any schedule is
    finite — which is what guarantees chaos runs terminate.
    """

    __slots__ = ("seam", "probability", "at_calls", "error", "delay_s", "max_fires", "fires", "rng")

    def __init__(
        self,
        seam: str,
        probability: float = 0.0,
        at_calls: frozenset[int] | None = None,
        error: type[Exception] | None = InjectedFault,
        delay_s: float = 0.0,
        max_fires: int | None = None,
        rng: SeededRng | None = None,
    ):
        if at_calls is None and not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.seam = seam
        self.probability = probability
        self.at_calls = at_calls
        self.error = error
        self.delay_s = delay_s
        self.max_fires = max_fires
        self.fires = 0
        self.rng = rng if rng is not None else SeededRng(0)

    def matches(self, call: int) -> bool:
        """Deterministically decide whether this spec fires at ``call``.

        The probability draw happens on every call (even once exhausted)
        so the spec's random stream advances identically on replay.
        """
        if self.at_calls is not None:
            hit = call in self.at_calls
        else:
            hit = self.rng.random() < self.probability
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        return hit


class FaultInjector:
    """A seeded schedule of faults, installable as a context manager.

    >>> injector = FaultInjector(seed=7)
    >>> _ = injector.on("engine.decode_step", at_calls=[2], delay_s=0.5, error=None)
    >>> with injector:
    ...     pass  # engine work here sees the schedule
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._seed_rng = SeededRng(seed)
        self._specs: dict[str, list[FaultSpec]] = {}
        self._spec_count = 0
        self._calls: dict[str, int] = {}
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._shield = threading.local()
        self._previous: "FaultInjector | None" = None

    # -- schedule construction ----------------------------------------------

    def on(
        self,
        seam: str,
        *,
        probability: float = 0.0,
        at_calls=None,
        error: type[Exception] | None = InjectedFault,
        delay_s: float = 0.0,
        max_fires: int | None = None,
    ) -> "FaultInjector":
        """Register a fault at ``seam``; chainable.

        ``error=None`` makes a pure-delay (slow path) fault; ``delay_s``
        with an error sleeps first, then raises.
        """
        spec = FaultSpec(
            seam,
            probability=probability,
            at_calls=frozenset(at_calls) if at_calls is not None else None,
            error=error,
            delay_s=delay_s,
            max_fires=max_fires,
            rng=self._seed_rng.child("spec", self._spec_count, seam),
        )
        self._spec_count += 1
        self._specs.setdefault(seam, []).append(spec)
        return self

    # -- firing --------------------------------------------------------------

    def calls(self, seam: str) -> int:
        """How many times ``seam`` has been reached (shielded calls excluded)."""
        with self._lock:
            return self._calls.get(seam, 0)

    def _fire(self, seam: str, context: dict) -> None:
        if getattr(self._shield, "depth", 0):
            return
        with self._lock:
            call = self._calls.get(seam, 0) + 1
            self._calls[seam] = call
            matched: FaultSpec | None = None
            for spec in self._specs.get(seam, ()):
                # Every spec's stream advances on every call (replay
                # stability); the first match wins.
                if spec.matches(call) and matched is None:
                    matched = spec
            if matched is None:
                return
            matched.fires += 1
            action = "raise" if matched.error is not None else "delay"
            event = {"seam": seam, "call": call, "action": action, "t": round(clock.now(), 6)}
            if matched.delay_s:
                event["delay_s"] = matched.delay_s
            if matched.error is not None:
                event["error"] = matched.error.__name__
            self._events.append(event)
        if matched.delay_s:
            clock.sleep(matched.delay_s)
        if matched.error is not None:
            if matched.error is InjectedFault or issubclass(matched.error, InjectedFault):
                raise matched.error(f"injected fault at {seam} (call {call})", seam=seam, call=call)
            raise matched.error(f"injected fault at {seam} (call {call})")

    @contextmanager
    def shielded(self):
        """Suspend injection on this thread for the duration of the block."""
        depth = getattr(self._shield, "depth", 0)
        self._shield.depth = depth + 1
        try:
            yield
        finally:
            self._shield.depth = depth

    # -- event log -----------------------------------------------------------

    def events(self) -> list[dict]:
        with self._lock:
            return [dict(event) for event in self._events]

    def event_log(self) -> str:
        """Canonical JSONL rendering of the fired faults (sorted keys)."""
        return "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in self.events()
        )

    def export_jsonl(self, path) -> int:
        """Write the event log to ``path``; returns the number of events."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    # -- installation --------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None


_ACTIVE: FaultInjector | None = None


def active() -> FaultInjector | None:
    """The installed injector, or None outside chaos scopes."""
    return _ACTIVE


def fire(seam: str, **context) -> None:
    """Seam entry point: a no-op unless an injector is installed."""
    injector = _ACTIVE
    if injector is not None:
        injector._fire(seam, context)


@contextmanager
def shield():
    """Suspend injection for the block (no-op when no injector is active).

    Used around multi-cache batch reshapes whose mid-flight failure would
    corrupt shared state rather than model a real fault.
    """
    injector = _ACTIVE
    if injector is None:
        yield
        return
    with injector.shielded():
        yield
