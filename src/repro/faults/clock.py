"""A swappable monotonic clock shared by the engine and serving layers.

Deadlines, request timings and retry backoff all read time through this
module instead of calling :func:`time.perf_counter` / :func:`time.sleep`
directly.  In production the default :class:`SystemClock` delegates to the
real clock; in tests and in the ``repro chaos`` harness a
:class:`FakeClock` is installed instead, which makes three things possible
that wall-clock time forbids:

* deadline expiry can be tested *exactly* — advance the clock past the
  deadline and assert, no sleeping, no flaky margins;
* injected "slow step" faults take zero real time — a fault's
  ``delay_s`` advances the fake clock rather than blocking the test;
* chaos runs are byte-identical across replays — every timestamp in the
  event log derives from the deterministic fake clock.

Install a clock for a scope with :func:`use`::

    with use(FakeClock()) as fake:
        request = GenerationRequest(...)   # submitted_at == fake.now()
        fake.advance(5.0)                  # the deadline is now in the past
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class SystemClock:
    """The real thing: monotonic now, blocking sleep."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """A manually advanced clock; ``sleep`` advances instead of blocking."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += seconds
        return self._now


_clock: SystemClock | FakeClock = SystemClock()


def get_clock() -> SystemClock | FakeClock:
    return _clock


def set_clock(clock: SystemClock | FakeClock) -> None:
    global _clock
    _clock = clock


def now() -> float:
    """Monotonic seconds from the currently installed clock."""
    return _clock.now()


def sleep(seconds: float) -> None:
    """Sleep on the currently installed clock (fake clocks just advance)."""
    _clock.sleep(seconds)


@contextmanager
def use(clock: SystemClock | FakeClock):
    """Install ``clock`` for the duration of the block, then restore."""
    global _clock
    previous = _clock
    _clock = clock
    try:
        yield clock
    finally:
        _clock = previous
