"""The model zoo: Table 2's seven pretrained models.

Each :class:`ModelCard` records which pretraining sets a model saw — The
Pile, BigQuery, BigPython, Ansible YAML, Generic YAML — exactly as the
paper's Table 2 lays them out.  :func:`build_zoo` trains them all, reusing
the CodeGen-Multi weights as the warm start for the two ``*-Multi`` Wisdom
models ("initialized with the weights of CodeGen-Multi and we extended the
pre-training").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.corpus import Corpus
from repro.model.checkpoints import restore_weights, snapshot_weights
from repro.model.config import SIZE_350M, SizePreset, transformer_config
from repro.model.lm import WisdomModel
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM
from repro.tokenizer.bpe import BpeTokenizer
from repro.training.pretrain import pretrain
from repro.utils.rng import SeededRng, derive_seed

PILE = "pile"
BIGQUERY = "bigquery"
BIGPYTHON = "bigpython"
ANSIBLE_YAML = "ansible_yaml"
GENERIC_YAML = "generic_yaml"

DATASET_COLUMNS = (PILE, BIGQUERY, BIGPYTHON, ANSIBLE_YAML, GENERIC_YAML)


@dataclass(frozen=True)
class ModelCard:
    """One row of Table 2."""

    name: str
    datasets: tuple[str, ...]
    initialized_from: str | None = None
    size: SizePreset = SIZE_350M
    context_window: int = 1024

    def uses(self, dataset: str) -> bool:
        return dataset in self.datasets


MODEL_CARDS: tuple[ModelCard, ...] = (
    ModelCard("CodeGen-NL", (PILE,), context_window=2048),
    ModelCard("CodeGen-Multi", (PILE, BIGQUERY), context_window=2048),
    ModelCard("CodeGen-Mono", (PILE, BIGQUERY, BIGPYTHON), context_window=2048),
    ModelCard("Wisdom-Ansible", (ANSIBLE_YAML,)),
    ModelCard("Wisdom-Yaml", (ANSIBLE_YAML, GENERIC_YAML)),
    ModelCard("Wisdom-Ansible-Multi", (PILE, BIGQUERY, ANSIBLE_YAML), initialized_from="CodeGen-Multi"),
    ModelCard("Wisdom-Yaml-Multi", (PILE, BIGQUERY, ANSIBLE_YAML, GENERIC_YAML), initialized_from="CodeGen-Multi"),
)

CARDS_BY_NAME: dict[str, ModelCard] = {card.name: card for card in MODEL_CARDS}


def table2_rows() -> list[list[str]]:
    """Rows shaped like the paper's Table 2 (check marks per dataset)."""
    rows = []
    for card in MODEL_CARDS:
        rows.append(
            [card.name]
            + [("x" if card.uses(dataset) else "") for dataset in DATASET_COLUMNS]
        )
    return rows


@dataclass
class PretrainingCorpora:
    """The five pretraining sets, already built by :mod:`repro.dataset`."""

    pile: Corpus
    bigquery: Corpus
    bigpython: Corpus
    ansible: Corpus
    generic: Corpus

    def for_card(self, card: ModelCard, warm_start: bool) -> Corpus:
        """The merged corpus a card trains on.

        Warm-started cards only see the *extension* data (their base model
        already covered the rest).
        """
        parts: list[Corpus] = []
        selected = card.datasets
        if warm_start and card.initialized_from is not None:
            base = CARDS_BY_NAME[card.initialized_from]
            selected = tuple(dataset for dataset in card.datasets if dataset not in base.datasets)
        mapping = {
            PILE: self.pile,
            BIGQUERY: self.bigquery,
            BIGPYTHON: self.bigpython,
            ANSIBLE_YAML: self.ansible,
            GENERIC_YAML: self.generic,
        }
        for dataset in selected:
            parts.append(mapping[dataset])
        merged = Corpus(name=f"pretrain-{card.name}")
        for part in parts:
            merged.extend(part.documents)
        return merged.require_nonempty()


def build_tokenizer(corpora: PretrainingCorpora, vocab_size: int = 2048, max_texts: int = 1500) -> BpeTokenizer:
    """One shared BPE tokenizer over a sample of every pretraining set.

    (The paper reuses the CodeGen tokenizer for all models; one shared
    vocabulary keeps the zoo comparable.)
    """
    texts: list[str] = []
    # Ansible-YAML gets the largest share so its idioms compress well —
    # the CodeGen tokenizer similarly over-represents code.
    texts.extend(corpora.ansible.texts()[: max_texts // 2])
    for corpus in (corpora.pile, corpora.bigquery, corpora.bigpython, corpora.generic):
        texts.extend(corpus.texts()[: max_texts // 8])
    return BpeTokenizer.train(texts, vocab_size=vocab_size)


def build_model(
    card: ModelCard,
    corpora: PretrainingCorpora,
    tokenizer: BpeTokenizer,
    seed: int = 0,
    epochs: int = 2,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    max_batches_per_epoch: int | None = 120,
    base_model: WisdomModel | None = None,
) -> WisdomModel:
    """Pretrain one zoo model.

    Pass ``base_model`` (the already-trained CodeGen-Multi) for the
    warm-started Wisdom cards; its weights are copied, never mutated.
    """
    config = transformer_config(tokenizer.vocab_size, card.size, card.context_window)
    network = DecoderLM(config, numpy_rng(derive_seed(seed, "init", card.name)))
    if base_model is not None:
        restore_weights(network, snapshot_weights(base_model.network))
    corpus = corpora.for_card(card, warm_start=base_model is not None)
    pretrain(
        network,
        corpus,
        tokenizer,
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=learning_rate,
        seed=derive_seed(seed, "pretrain", card.name),
        max_batches_per_epoch=max_batches_per_epoch,
    )
    return WisdomModel(
        name=card.name,
        tokenizer=tokenizer,
        network=network,
        size_label=card.size.label,
        context_window_label=card.context_window,
    )


def build_zoo(
    corpora: PretrainingCorpora,
    tokenizer: BpeTokenizer | None = None,
    cards: tuple[ModelCard, ...] = MODEL_CARDS,
    seed: int = 0,
    epochs: int = 2,
    max_batches_per_epoch: int | None = 120,
) -> dict[str, WisdomModel]:
    """Train every requested card, warm-starting where Table 2 says so."""
    tokenizer = tokenizer or build_tokenizer(corpora)
    zoo: dict[str, WisdomModel] = {}
    for card in cards:
        base = zoo.get(card.initialized_from) if card.initialized_from else None
        if card.initialized_from and base is None:
            base = build_model(
                CARDS_BY_NAME[card.initialized_from],
                corpora,
                tokenizer,
                seed=seed,
                epochs=epochs,
                max_batches_per_epoch=max_batches_per_epoch,
            )
            zoo[card.initialized_from] = base
        zoo[card.name] = build_model(
            card,
            corpora,
            tokenizer,
            seed=seed,
            epochs=epochs,
            max_batches_per_epoch=max_batches_per_epoch,
            base_model=base,
        )
    return zoo


def build_default_corpora(rng: SeededRng, scale: float = 0.0003) -> PretrainingCorpora:
    """Convenience: the five pretraining corpora at a given scale."""
    from repro.dataset.sources import (
        build_ansible_pretraining_corpus,
        build_bigpython_corpus,
        build_bigquery_code_corpus,
        build_generic_pretraining_corpus,
        build_pile_corpus,
    )

    return PretrainingCorpora(
        pile=build_pile_corpus(rng.child("pile"), n_documents=max(120, int(1_200_000 * scale))),
        bigquery=build_bigquery_code_corpus(rng.child("bigquery"), n_documents=max(80, int(800_000 * scale))),
        bigpython=build_bigpython_corpus(rng.child("bigpython"), n_documents=max(60, int(500_000 * scale))),
        ansible=build_ansible_pretraining_corpus(rng.child("ansible"), scale=scale),
        generic=build_generic_pretraining_corpus(rng.child("generic"), scale=scale),
    )
