"""Model size and context-window presets.

The paper's models are CodeGen 350M / 2.7B / 6B with context windows 512 /
1024 / 2048.  At laptop scale we keep the *ratios* between sizes and windows
while shrinking absolute numbers; each preset records the paper-scale label
it stands in for, so benchmark tables can print the paper's nomenclature.

The context windows shrink by the same factor as the typical sample length:
our synthetic tasks are several times shorter in tokens than real Galaxy
tasks, so 512/1024/2048 become 96/192/384 — preserving which fraction of
samples each window truncates, which is what drives the Table 4 context
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.transformer import TransformerConfig


@dataclass(frozen=True)
class SizePreset:
    """Architecture scale standing in for one of the paper's model sizes."""

    label: str  # the paper-scale name, e.g. "350M"
    dim: int
    n_layers: int
    n_heads: int


SIZE_350M = SizePreset(label="350M", dim=64, n_layers=2, n_heads=4)
SIZE_2_7B = SizePreset(label="2.7B", dim=96, n_layers=3, n_heads=6)
SIZE_6B = SizePreset(label="6B", dim=128, n_layers=4, n_heads=8)

SIZE_PRESETS: dict[str, SizePreset] = {
    preset.label: preset for preset in (SIZE_350M, SIZE_2_7B, SIZE_6B)
}

# Paper-scale context windows mapped to laptop-scale token counts.
CONTEXT_WINDOWS: dict[int, int] = {512: 96, 1024: 192, 2048: 384}


def transformer_config(
    vocab_size: int,
    size: str | SizePreset = SIZE_350M,
    context_window: int = 1024,
) -> TransformerConfig:
    """Build a :class:`TransformerConfig` from paper-scale names.

    ``context_window`` takes the paper-scale value (512/1024/2048) and is
    mapped to the laptop-scale window; other values are used verbatim.
    """
    preset = SIZE_PRESETS[size] if isinstance(size, str) else size
    n_positions = CONTEXT_WINDOWS.get(context_window, context_window)
    return TransformerConfig(
        vocab_size=vocab_size,
        n_positions=n_positions,
        dim=preset.dim,
        n_layers=preset.n_layers,
        n_heads=preset.n_heads,
    )
