"""Checkpoint persistence: save/restore a :class:`WisdomModel` directory.

Layout of a checkpoint directory::

    config.json      architecture + labels
    weights.npz      parameter arrays keyed by parameter name
    vocab.json       tokenizer merges and special tokens

The fine-tuning loop's "best checkpoint by validation BLEU" logic keeps
in-memory snapshots via :func:`snapshot_weights` / :func:`restore_weights`
to avoid disk churn.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.faults.inject import fire
from repro.model.lm import WisdomModel
from repro.nn.parameter import numpy_rng
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.tokenizer.bpe import BpeTokenizer


def save_checkpoint(model: WisdomModel, directory: str | Path) -> Path:
    """Write a checkpoint directory; returns its path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    config = model.config
    metadata = {
        "name": model.name,
        "size_label": model.size_label,
        "context_window_label": model.context_window_label,
        "architecture": {
            "vocab_size": config.vocab_size,
            "n_positions": config.n_positions,
            "dim": config.dim,
            "n_layers": config.n_layers,
            "n_heads": config.n_heads,
            "mlp_ratio": config.mlp_ratio,
        },
    }
    (path / "config.json").write_text(json.dumps(metadata, indent=2))
    (path / "vocab.json").write_text(model.tokenizer.to_json())
    np.savez(path / "weights.npz", **model.network.state_dict())
    return path


def load_checkpoint(directory: str | Path) -> WisdomModel:
    """Restore a :class:`WisdomModel` from a checkpoint directory."""
    fire("checkpoint.read", path=str(directory))
    path = Path(directory)
    config_file = path / "config.json"
    if not config_file.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    metadata = json.loads(config_file.read_text())
    architecture = metadata["architecture"]
    config = TransformerConfig(
        vocab_size=architecture["vocab_size"],
        n_positions=architecture["n_positions"],
        dim=architecture["dim"],
        n_layers=architecture["n_layers"],
        n_heads=architecture["n_heads"],
        mlp_ratio=architecture.get("mlp_ratio", 4),
    )
    network = DecoderLM(config, numpy_rng(0))
    with np.load(path / "weights.npz") as archive:
        network.load_state_dict({name: archive[name] for name in archive.files})
    tokenizer = BpeTokenizer.from_json((path / "vocab.json").read_text())
    return WisdomModel(
        name=metadata["name"],
        tokenizer=tokenizer,
        network=network,
        size_label=metadata.get("size_label", "350M"),
        context_window_label=metadata.get("context_window_label", 1024),
    )


def snapshot_weights(network: DecoderLM) -> dict[str, np.ndarray]:
    """Deep-copy the parameter arrays (for best-checkpoint tracking)."""
    return {name: array.copy() for name, array in network.state_dict().items()}


def restore_weights(network: DecoderLM, snapshot: dict[str, np.ndarray]) -> None:
    """Load a snapshot produced by :func:`snapshot_weights`."""
    network.load_state_dict(snapshot)
