"""Model layer: presets, text-level LM, checkpoints, zoo, throughput."""

from repro.model.checkpoints import (
    load_checkpoint,
    restore_weights,
    save_checkpoint,
    snapshot_weights,
)
from repro.model.config import (
    CONTEXT_WINDOWS,
    SIZE_2_7B,
    SIZE_350M,
    SIZE_6B,
    SIZE_PRESETS,
    SizePreset,
    transformer_config,
)
from repro.model.lm import WisdomModel
from repro.model.throughput import ThroughputResult, measure_throughput, speedup
from repro.model.zoo import (
    ANSIBLE_YAML,
    BIGPYTHON,
    BIGQUERY,
    CARDS_BY_NAME,
    DATASET_COLUMNS,
    GENERIC_YAML,
    MODEL_CARDS,
    ModelCard,
    PILE,
    PretrainingCorpora,
    build_default_corpora,
    build_model,
    build_tokenizer,
    build_zoo,
    table2_rows,
)

__all__ = [
    "load_checkpoint",
    "restore_weights",
    "save_checkpoint",
    "snapshot_weights",
    "CONTEXT_WINDOWS",
    "SIZE_2_7B",
    "SIZE_350M",
    "SIZE_6B",
    "SIZE_PRESETS",
    "SizePreset",
    "transformer_config",
    "WisdomModel",
    "ThroughputResult",
    "measure_throughput",
    "speedup",
    "ANSIBLE_YAML",
    "BIGPYTHON",
    "BIGQUERY",
    "CARDS_BY_NAME",
    "DATASET_COLUMNS",
    "GENERIC_YAML",
    "MODEL_CARDS",
    "ModelCard",
    "PILE",
    "PretrainingCorpora",
    "build_default_corpora",
    "build_model",
    "build_tokenizer",
    "build_zoo",
    "table2_rows",
]
