"""Text-level language model: tokenizer + transformer + decoding policy.

:class:`WisdomModel` is what the rest of the system (training loops,
evaluation harness, serving layer) talks to — it accepts and returns *text*,
hiding token ids, left-truncation and stop handling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerationError
from repro.nn.sampling import generate_greedy, generate_sampled
from repro.nn.transformer import DecoderLM, TransformerConfig
from repro.obs import NULL_PROFILER, Observability, OpProfiler, Tracer
from repro.tokenizer.bpe import BpeTokenizer


class WisdomModel:
    """A named, decodable language model over text.

    Attributes:
        name: display name used in reports ("Wisdom-Ansible-Multi", ...).
        tokenizer: the byte-level BPE tokenizer.
        network: the underlying transformer.
        context_window_label: the paper-scale window this model stands in
            for (512/1024/2048), carried for table rendering.
        size_label: paper-scale parameter-count label ("350M", ...).
    """

    def __init__(
        self,
        name: str,
        tokenizer: BpeTokenizer,
        network: DecoderLM,
        size_label: str = "350M",
        context_window_label: int = 1024,
    ):
        self.name = name
        self.tokenizer = tokenizer
        self.network = network
        self.size_label = size_label
        self.context_window_label = context_window_label
        self._engine = None
        self._obs: Observability | None = None

    # -- observability ---------------------------------------------------------

    @property
    def obs(self) -> Observability | None:
        return self._obs

    def attach_observability(self, obs: Observability) -> "WisdomModel":
        """Route this model's spans and metrics through ``obs``.

        Attach *before* the first :meth:`engine` call so the engine shares
        the registry; attached later, only the tracer propagates (the
        engine caches its metric handles at construction).
        """
        self._obs = obs
        if self._engine is not None:
            self._engine.attach_tracer(obs.tracer)
        return self

    def attach_tracer(self, tracer: Tracer) -> "WisdomModel":
        """Capture sampling and engine request spans with ``tracer``."""
        if self._obs is None:
            self._obs = Observability(tracer=tracer)
        else:
            self._obs.attach_tracer(tracer)
        if self._engine is not None:
            self._engine.attach_tracer(tracer)
        return self

    def attach_profiler(self, profiler: OpProfiler) -> "WisdomModel":
        """Hook every layer op in the network to record into ``profiler``.

        Wraps each layer instance's forward/backward, so every subsequent
        :meth:`complete`, :meth:`complete_batch`, training step or raw
        network call feeds the profiler's per-op FLOPs/roofline
        aggregates.  Call :meth:`detach_profiler` to unhook; a disabled
        profiler left attached costs one attribute check per op call.
        """
        if self._obs is None:
            self._obs = Observability()
        self._obs.attach_profiler(profiler)
        profiler.attach(self.network)
        return self

    def detach_profiler(self) -> "WisdomModel":
        """Remove profiler hooks and restore the null profiler."""
        if self._obs is not None and self._obs.profiler is not NULL_PROFILER:
            self._obs.profiler.detach()
            self._obs.profiler = NULL_PROFILER
        return self

    @property
    def _tracer(self) -> Tracer | None:
        return self._obs.tracer if self._obs is not None else None

    @property
    def config(self) -> TransformerConfig:
        return self.network.config

    @property
    def n_parameters(self) -> int:
        return self.network.n_parameters()

    # -- generation -----------------------------------------------------------

    def complete(
        self,
        prompt: str,
        max_new_tokens: int = 96,
        temperature: float | None = None,
        top_k: int = 0,
        seed: int = 0,
    ) -> str:
        """Continue ``prompt``; greedy when ``temperature`` is None.

        The prompt is left-truncated to the context window (paper: "when the
        input to the model is larger than the context window, it is
        left-truncated"); the decoding layer reserves room for
        ``max_new_tokens`` so a long prompt cannot silently exhaust the
        budget.  Generation stops at the end-of-text token.
        """
        prompt_ids = self.tokenizer.encode(prompt)
        if not prompt_ids:
            raise GenerationError("prompt is empty")
        stop_ids = frozenset({self.tokenizer.end_of_text_id, self.tokenizer.separator_id})
        if temperature is None:
            result = generate_greedy(
                self.network, prompt_ids, max_new_tokens, stop_ids=stop_ids, tracer=self._tracer
            )
        else:
            result = generate_sampled(
                self.network,
                prompt_ids,
                max_new_tokens,
                rng=np.random.default_rng(seed),
                temperature=temperature,
                top_k=top_k,
                stop_ids=stop_ids,
                tracer=self._tracer,
            )
        return self.tokenizer.decode(result.token_ids)

    # -- batched generation ----------------------------------------------------

    def engine(self, **kwargs):
        """This model's :class:`~repro.engine.engine.InferenceEngine`.

        Built lazily on first use (pass kwargs then to size the batcher
        and the KV arena — e.g. ``kv_block_size=64`` for coarser slabs or
        ``kv_dtype="float16"`` to halve resident KV-cache bytes); the
        instance — and with it the prefix cache and the paged KV arena —
        persists across calls, which is what makes repeated
        playbook-buffer completions skip redundant prefill.
        """
        if self._engine is None:
            from repro.engine import InferenceEngine

            if self._obs is not None:
                kwargs.setdefault("obs", self._obs)
            self._engine = InferenceEngine.from_model(self, **kwargs)
        elif kwargs:
            raise GenerationError("engine already built; kwargs only apply to the first call")
        return self._engine

    def complete_batch(self, prompts: list[str], max_new_tokens: int = 96) -> list[str]:
        """Greedy-complete several prompts through the batching engine.

        Token-identical to calling :meth:`complete` per prompt, but decoded
        together: one continuous batch amortises the per-step overhead and
        shared prompt prefixes skip prefill via the engine's prefix cache.
        """
        return self.engine().complete_batch(prompts, max_new_tokens=max_new_tokens)

    # -- scoring ---------------------------------------------------------------

    def loss_on_text(self, text: str) -> float:
        """Mean next-token cross-entropy of ``text`` (right-truncated to fit)."""
        ids = self.tokenizer.encode(text)[: self.config.n_positions]
        if len(ids) < 2:
            raise GenerationError("text too short to score")
        array = np.array([ids], dtype=np.int64)
        targets = np.roll(array, -1, axis=1)
        targets[:, -1] = -1
        return self.network.evaluate_loss(array, targets)

    def perplexity(self, text: str) -> float:
        """exp(loss) on the text."""
        return float(np.exp(self.loss_on_text(text)))
