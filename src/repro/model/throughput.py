"""Generation-throughput measurement.

The paper motivates the 350M architecture by latency: "We benchmarked the
generation throughput on single GPU for both models and found that the 350M
model was ~1.9x faster than the 2.7B."  :func:`measure_throughput` produces
the tokens-per-second number behind that comparison, on our substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.sampling import generate_greedy
from repro.nn.transformer import DecoderLM
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class ThroughputResult:
    """Tokens/second over a number of timed generation runs."""

    tokens_per_second: float
    total_tokens: int
    total_seconds: float
    runs: int


def measure_throughput(
    network: DecoderLM,
    prompt_length: int = 16,
    new_tokens: int = 32,
    runs: int = 3,
    warmup_runs: int = 1,
    seed: int = 0,
) -> ThroughputResult:
    """Time greedy generation of ``new_tokens`` tokens, ``runs`` times."""
    rng = np.random.default_rng(seed)
    vocab = network.config.vocab_size
    prompt = [int(token) for token in rng.integers(0, vocab, size=prompt_length)]
    for _ in range(warmup_runs):
        generate_greedy(network, prompt, max_new_tokens=new_tokens)
    watch = Stopwatch()
    produced = 0
    for _ in range(runs):
        with watch:
            result = generate_greedy(network, prompt, max_new_tokens=new_tokens)
        produced += max(1, len(result.token_ids))
    return ThroughputResult(
        tokens_per_second=produced / watch.elapsed if watch.elapsed > 0 else float("inf"),
        total_tokens=produced,
        total_seconds=watch.elapsed,
        runs=runs,
    )


def measure_engine_throughput(
    network: DecoderLM,
    batch_size: int = 4,
    prompt_length: int = 16,
    new_tokens: int = 32,
    runs: int = 3,
    warmup_runs: int = 1,
    seed: int = 0,
    max_batch_size: int | None = None,
    obs=None,
    engine_kwargs: dict | None = None,
) -> ThroughputResult:
    """Time the continuous-batching engine on ``batch_size`` distinct prompts.

    ``obs`` (an :class:`repro.obs.Observability`, optional) is forwarded
    to the engine — how ``benchmarks/test_obs_overhead.py`` compares the
    traced and untraced decode paths on otherwise identical engines.
    ``engine_kwargs`` passes extra :class:`InferenceEngine` knobs through —
    e.g. ``{"kv_dtype": "float16"}`` or ``{"kv_block_size": 64}`` to
    benchmark KV-arena configurations.

    The batched counterpart of :func:`measure_throughput`: each timed run
    decodes ``batch_size`` prompts of ``prompt_length`` random tokens (all
    distinct, so the prefix cache cannot shortcut the comparison) for up to
    ``new_tokens`` tokens each.  Tokens/second counts generated tokens
    across the whole batch, so the ratio against the sequential baseline is
    the batching speedup.
    """
    from repro.engine import InferenceEngine

    rng = np.random.default_rng(seed)
    vocab = network.config.vocab_size
    prompts = [
        [int(token) for token in rng.integers(0, vocab, size=prompt_length)]
        for _ in range(batch_size)
    ]
    engine = InferenceEngine(
        network,
        max_batch_size=max_batch_size or batch_size,
        prefix_cache_capacity=0,
        obs=obs,
        **(engine_kwargs or {}),
    )
    for _ in range(warmup_runs):
        engine.generate_batch(prompts, max_new_tokens=new_tokens)
    watch = Stopwatch()
    produced = 0
    for _ in range(runs):
        with watch:
            results = engine.generate_batch(prompts, max_new_tokens=new_tokens)
        produced += max(1, sum(len(result.token_ids) for result in results))
    return ThroughputResult(
        tokens_per_second=produced / watch.elapsed if watch.elapsed > 0 else float("inf"),
        total_tokens=produced,
        total_seconds=watch.elapsed,
        runs=runs,
    )


def speedup(small: ThroughputResult, large: ThroughputResult) -> float:
    """How many times faster the small model generates than the large one."""
    if large.tokens_per_second == 0:
        return float("inf")
    return small.tokens_per_second / large.tokens_per_second
