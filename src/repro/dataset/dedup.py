"""Exact-match deduplication, at file level and at sample level.

The paper: "We de-duplicated the dataset using a simple exact match
criterion" (pretraining, file level) and "Exact match deduplication is
performed at both the file and sample level across all splits"
(fine-tuning).  Cross-split sample dedup removes train/test leakage, which
is what keeps the fine-tuned EM numbers honest.
"""

from __future__ import annotations

from repro.dataset.corpus import Corpus, Document
from repro.utils.text import stable_hash


def dedup_documents(corpus: Corpus) -> Corpus:
    """Keep the first occurrence of each distinct content string."""
    seen: set[str] = set()
    kept: list[Document] = []
    for document in corpus.documents:
        digest = document.content_hash
        if digest in seen:
            continue
        seen.add(digest)
        kept.append(document)
    return Corpus(name=corpus.name, documents=kept)


def dedup_samples(samples: list, key=lambda sample: sample.target_text) -> list:
    """Keep the first sample per distinct key (default: the target text)."""
    seen: set[str] = set()
    kept = []
    for sample in samples:
        digest = stable_hash(key(sample))
        if digest in seen:
            continue
        seen.add(digest)
        kept.append(sample)
    return kept


def dedup_samples_across_splits(splits: dict[str, list], key=lambda sample: sample.target_text) -> dict[str, list]:
    """Dedup samples across all splits, preferring earlier splits.

    Call with splits ordered test → validation → train to guarantee that a
    sample appearing in several splits is *kept in the evaluation split* and
    dropped from training (no leakage into train).
    """
    seen: set[str] = set()
    result: dict[str, list] = {}
    for split_name, samples in splits.items():
        kept = []
        for sample in samples:
            digest = stable_hash(key(sample))
            if digest in seen:
                continue
            seen.add(digest)
            kept.append(sample)
        result[split_name] = kept
    return result
